// Package policy defines the access control policy model used throughout
// the repository, following the Author-X design [5] the paper describes in
// §3.2: policies are specified over graph-structured XML at "a wide
// spectrum of access granularity levels, ranging from sets of documents, to
// single documents, to specific portions within a document", support "both
// content-dependent and content-independent" protection, and qualify
// subjects "by means of credentials" as well as identities and roles.
//
// A policy is (subject spec, object spec, privilege, sign, propagation).
// Conflicts are resolved by the standard Author-X rules: the policy with
// the more specific object wins; at equal specificity denials take
// precedence; in the absence of any applicable policy the system is closed
// (deny).
package policy

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"

	"webdbsec/internal/credential"
	"webdbsec/internal/wal"
	"webdbsec/internal/xmldoc"
)

// Privilege is the kind of access a policy grants or denies.
type Privilege string

// Privileges. Browse reveals document structure only (element names);
// Read additionally reveals content; Write permits modification and
// subsumes nothing (writing does not imply reading).
const (
	Browse Privilege = "browse"
	Read   Privilege = "read"
	Write  Privilege = "write"
)

// Sign marks a policy as a permission or a prohibition.
type Sign int

// Signs.
const (
	Deny Sign = iota
	Permit
)

func (s Sign) String() string {
	if s == Permit {
		return "permit"
	}
	return "deny"
}

// Propagation controls how far down the document tree an authorization on
// an element extends.
type Propagation int

// Propagation options (Author-X: NO_PROP, FIRST_LEVEL, CASCADE).
const (
	// NoProp applies to the matched node only (plus its attributes and
	// text, which have no independent protection granularity below their
	// element for browse, but are matched individually for read).
	NoProp Propagation = iota
	// FirstLevel extends to the matched element's direct children.
	FirstLevel
	// Cascade extends to the whole subtree.
	Cascade
)

func (p Propagation) String() string {
	switch p {
	case NoProp:
		return "no-prop"
	case FirstLevel:
		return "first-level"
	case Cascade:
		return "cascade"
	}
	return fmt.Sprintf("Propagation(%d)", int(p))
}

// Subject is the access-requesting context a policy's subject spec is
// matched against: an identity, the subject's active roles, and a wallet
// of credentials.
type Subject struct {
	ID     string
	Roles  []string
	Wallet *credential.Wallet
}

// HasRole reports whether the subject has the role active.
func (s *Subject) HasRole(role string) bool {
	for _, r := range s.Roles {
		if r == role {
			return true
		}
	}
	return false
}

// Fingerprint returns a canonical digest of everything policy evaluation
// can observe about the subject: its identity, its active roles (order-
// insensitive) and its credential wallet (order-insensitive, signatures
// included). Two subjects with equal fingerprints receive identical
// decisions from any policy base, which is what makes the fingerprint a
// sound cache key. The fingerprint is recomputed on every call — it is the
// caller's job not to mutate a subject mid-request.
func (s *Subject) Fingerprint() string {
	roles := make([]string, len(s.Roles))
	copy(roles, s.Roles)
	sort.Strings(roles)
	h := sha256.New()
	fmt.Fprintf(h, "subject|%s|", s.ID)
	for _, r := range roles {
		fmt.Fprintf(h, "r=%s|", r)
	}
	wfp := s.Wallet.Fingerprint()
	h.Write(wfp[:])
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}

// SubjectSpec qualifies the subjects a policy applies to. A spec matches if
// ANY of its non-empty positive qualifiers matches — the subject's identity
// is listed in IDs, one of the subject's roles is listed in Roles, or the
// credential expression evaluates to true over the subject's wallet — AND
// none of the exceptions applies (the subject holds no role in NotRoles).
// The special ID "*" matches every subject (public policies). A spec with
// only exceptions matches every subject the exceptions do not exclude,
// which is how "deny X to everyone but partners" is written.
type SubjectSpec struct {
	IDs      []string
	Roles    []string
	CredExpr *credential.Expr
	// NotRoles excludes subjects holding any of the listed roles.
	NotRoles []string
}

// Matches evaluates the spec. verifier may be nil to skip credential
// signature verification.
func (ss *SubjectSpec) Matches(s *Subject, verifier *credential.Verifier) bool {
	for _, r := range ss.NotRoles {
		if s.HasRole(r) {
			return false
		}
	}
	if len(ss.IDs) == 0 && len(ss.Roles) == 0 && ss.CredExpr == nil {
		// Exception-only spec: matches everyone not excluded above.
		return len(ss.NotRoles) > 0
	}
	for _, id := range ss.IDs {
		if id == "*" || id == s.ID {
			return true
		}
	}
	for _, r := range ss.Roles {
		if s.HasRole(r) {
			return true
		}
	}
	if ss.CredExpr != nil && ss.CredExpr.EvalWallet(s.Wallet, verifier) {
		return true
	}
	return false
}

// ObjectSpec designates the protected objects at one of three granularity
// levels. Exactly one of Set or Doc should be non-empty; Path further
// narrows a Doc (or every doc of a Set) to the matched portions. Doc "*"
// matches every document in the store.
type ObjectSpec struct {
	// Set names a document set registered in the store.
	Set string
	// Doc names a single document, or "*" for all.
	Doc string
	// Path, when non-empty, selects portions within the matched documents.
	Path string

	compiled *xmldoc.PathExpr
}

// specificity ranks object specs for conflict resolution: a path-level spec
// beats a document-level spec beats a set-level spec beats a wildcard;
// among path-level specs, longer (deeper) node matches are resolved by the
// engine using node depth, not here.
func (os *ObjectSpec) specificity() int {
	s := 0
	switch {
	case os.Doc != "" && os.Doc != "*":
		s = 2
	case os.Set != "":
		s = 1
	}
	if os.Path != "" && os.Path != "/" {
		s += 2
	}
	return s
}

// AppliesToDoc reports whether the spec covers the named document of the
// store (ignoring Path).
func (os *ObjectSpec) AppliesToDoc(store *xmldoc.Store, doc string) bool {
	if os.Doc == "*" {
		return true
	}
	if os.Doc != "" {
		return os.Doc == doc
	}
	if os.Set != "" {
		return store.SetContains(os.Set, doc)
	}
	return false
}

// Policy is one access control rule.
type Policy struct {
	// Name identifies the policy in audit records and error messages.
	Name    string
	Subject SubjectSpec
	Object  ObjectSpec
	Priv    Privilege
	Sign    Sign
	Prop    Propagation
}

// Validate compiles the object path and checks well-formedness.
func (p *Policy) Validate() error {
	if p.Priv == "" {
		return fmt.Errorf("policy %q: missing privilege", p.Name)
	}
	if p.Object.Doc == "" && p.Object.Set == "" {
		return fmt.Errorf("policy %q: object spec needs Doc or Set", p.Name)
	}
	if p.Object.Doc != "" && p.Object.Set != "" {
		return fmt.Errorf("policy %q: object spec cannot have both Doc and Set", p.Name)
	}
	if len(p.Subject.IDs) == 0 && len(p.Subject.Roles) == 0 &&
		p.Subject.CredExpr == nil && len(p.Subject.NotRoles) == 0 {
		return fmt.Errorf("policy %q: empty subject spec", p.Name)
	}
	if p.Object.Path != "" {
		pe, err := xmldoc.CompilePath(p.Object.Path)
		if err != nil {
			return fmt.Errorf("policy %q: %w", p.Name, err)
		}
		p.Object.compiled = pe
	}
	return nil
}

// PathExpr returns the compiled object path, or nil when the policy covers
// whole documents.
func (p *Policy) PathExpr() *xmldoc.PathExpr { return p.Object.compiled }

// objKey anchors an index bucket: the object spec's document or set name
// paired with the policy's privilege.
type objKey struct {
	name string
	priv Privilege
}

// Base is a policy base: the set of policies governing a document store.
// All methods are safe for concurrent use — readers (Applicable, All,
// Generation) take a shared lock, Add/Remove an exclusive one — so the
// base can be administered while it serves decisions. A *Policy handed to
// Add is owned by the base afterwards and must not be mutated.
//
// Internally the base maintains an index over the object specs, keyed by
// (document name | set name | wildcard) × privilege, so Applicable touches
// only the policies that can possibly cover the requested document instead
// of scanning the whole base. A monotonic generation counter, bumped on
// every mutation, lets decision caches (internal/decisioncache) key cached
// artifacts to an exact policy state.
type Base struct {
	mu       sync.RWMutex
	policies []*Policy
	verifier *credential.Verifier
	gen      uint64
	nextSeq  uint64
	// seqOf records insertion order so index-merged candidates can be
	// replayed in the exact order a linear scan would have produced.
	seqOf map[*Policy]uint64
	// byDoc indexes policies naming a single document; bySet those naming
	// a document set; wild the Doc=="*" policies, by privilege.
	byDoc map[objKey][]*Policy
	bySet map[objKey][]*Policy
	wild  map[Privilege][]*Policy
	// w, when set, receives a journal entry for every mutation (see
	// persist.go); err is the sticky journal failure.
	w   *wal.WAL
	err error
}

// NewBase returns an empty policy base. verifier may be nil to skip
// credential signature verification (policies then trust presented
// credentials, which is only appropriate in tests).
func NewBase(verifier *credential.Verifier) *Base {
	return &Base{
		verifier: verifier,
		seqOf:    make(map[*Policy]uint64),
		byDoc:    make(map[objKey][]*Policy),
		bySet:    make(map[objKey][]*Policy),
		wild:     make(map[Privilege][]*Policy),
	}
}

// addToIndex inserts p into its bucket. Write lock held.
func (b *Base) addToIndex(p *Policy) {
	switch {
	case p.Object.Doc == "*":
		b.wild[p.Priv] = append(b.wild[p.Priv], p)
	case p.Object.Doc != "":
		k := objKey{p.Object.Doc, p.Priv}
		b.byDoc[k] = append(b.byDoc[k], p)
	case p.Object.Set != "":
		k := objKey{p.Object.Set, p.Priv}
		b.bySet[k] = append(b.bySet[k], p)
	}
}

// removeFromIndex deletes p from its bucket. Write lock held.
func (b *Base) removeFromIndex(p *Policy) {
	filter := func(s []*Policy) []*Policy {
		for i, q := range s {
			if q == p {
				return append(s[:i], s[i+1:]...)
			}
		}
		return s
	}
	switch {
	case p.Object.Doc == "*":
		b.wild[p.Priv] = filter(b.wild[p.Priv])
	case p.Object.Doc != "":
		k := objKey{p.Object.Doc, p.Priv}
		b.byDoc[k] = filter(b.byDoc[k])
	case p.Object.Set != "":
		k := objKey{p.Object.Set, p.Priv}
		b.bySet[k] = filter(b.bySet[k])
	}
}

// installLocked places a validated policy into the list and index without
// advancing the generation or journaling. Write lock held (or exclusive
// ownership during recovery).
func (b *Base) installLocked(p *Policy) {
	b.policies = append(b.policies, p)
	b.seqOf[p] = b.nextSeq
	b.nextSeq++
	b.addToIndex(p)
}

// uninstallLocked removes the named policy without advancing the
// generation or journaling; it reports whether the policy existed.
func (b *Base) uninstallLocked(name string) bool {
	for i, p := range b.policies {
		if p.Name == name {
			b.policies = append(b.policies[:i], b.policies[i+1:]...)
			b.removeFromIndex(p)
			delete(b.seqOf, p)
			return true
		}
	}
	return false
}

// Add validates and installs a policy. The generation counter advances, so
// decisions cached against the previous state can no longer be served.
func (b *Base) Add(p *Policy) error {
	if err := p.Validate(); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.installLocked(p)
	b.gen++
	b.journalLocked(&baseJournal{Op: "add", Gen: b.gen, Policy: persistPolicy(p)})
	return nil
}

// MustAdd is Add that panics on error; for tests and examples.
func (b *Base) MustAdd(p *Policy) {
	if err := b.Add(p); err != nil {
		panic(err)
	}
}

// Remove deletes the named policy and reports whether it existed. A
// removal advances the generation counter.
func (b *Base) Remove(name string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.uninstallLocked(name) {
		return false
	}
	b.gen++
	b.journalLocked(&baseJournal{Op: "remove", Gen: b.gen, Name: name})
	return true
}

// Len returns the number of installed policies.
func (b *Base) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.policies)
}

// Generation returns the mutation counter: it advances on every Add and
// successful Remove, never repeats, and therefore names an exact policy
// state. Caches key decisions on it for precise invalidation.
func (b *Base) Generation() uint64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.gen
}

// Verifier returns the credential verifier used for subject matching.
func (b *Base) Verifier() *credential.Verifier { return b.verifier }

// Applicable returns the policies whose subject spec matches s, whose
// privilege equals priv, and whose object spec covers the named document,
// in installation order (identical to what a full scan would return).
// Instead of scanning the base it merges the index buckets that can cover
// the document: the bucket named after it, the buckets of the sets the
// store places it in, and the wildcard bucket.
func (b *Base) Applicable(store *xmldoc.Store, doc string, s *Subject, priv Privilege) []*Policy {
	b.mu.RLock()
	defer b.mu.RUnlock()
	cands := make([]*Policy, 0, 8)
	cands = append(cands, b.byDoc[objKey{doc, priv}]...)
	cands = append(cands, b.wild[priv]...)
	if store != nil {
		for _, set := range store.SetsOf(doc) {
			cands = append(cands, b.bySet[objKey{set, priv}]...)
		}
	}
	sort.Slice(cands, func(i, j int) bool { return b.seqOf[cands[i]] < b.seqOf[cands[j]] })
	var out []*Policy
	for _, p := range cands {
		if p.Subject.Matches(s, b.verifier) {
			out = append(out, p)
		}
	}
	return out
}

// All returns a copy of the installed policy list, so callers can never
// reorder or splice the base's own slice behind the lock. The *Policy
// values are shared and must be treated as read-only.
func (b *Base) All() []*Policy {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]*Policy, len(b.policies))
	copy(out, b.policies)
	return out
}
