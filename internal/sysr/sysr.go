// Package sysr implements the System R access control model — discretionary
// GRANT/REVOKE with the grant option and recursive revocation — which the
// paper (§3.1) notes "most of the commercial DBMSs rely on" and uses as the
// baseline that web-scale subject qualification must go beyond.
//
// The semantics follow Griffiths–Wade: every grant is timestamped and
// records its grantor; REVOKE removes the grant and then recursively
// revokes any grant that could only have been made thanks to it (i.e. the
// grantee no longer holds the privilege with grant option from a grant
// older than the one being cascaded).
package sysr

import (
	"fmt"
	"sort"
	"sync"
)

// Privilege names an operation on a table, e.g. SELECT, INSERT.
type Privilege string

// Common privileges.
const (
	Select Privilege = "SELECT"
	Insert Privilege = "INSERT"
	Update Privilege = "UPDATE"
	Delete Privilege = "DELETE"
)

// Grant is one edge of the grant graph.
type Grant struct {
	Grantor     string
	Grantee     string
	Priv        Privilege
	Object      string
	GrantOption bool
	// TS is a logical timestamp (monotone counter) used for recursive
	// revocation semantics.
	TS int64
}

// Catalog is the grant graph for a set of objects. The owner of each object
// implicitly holds every privilege on it with grant option.
type Catalog struct {
	mu     sync.RWMutex
	owners map[string]string // object -> owner
	grants []Grant
	clock  int64
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{owners: make(map[string]string)}
}

// CreateObject registers an object with its owner.
func (c *Catalog) CreateObject(object, owner string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.owners[object]; ok {
		return fmt.Errorf("sysr: object %q already exists", object)
	}
	c.owners[object] = owner
	return nil
}

// Owner returns the owner of an object.
func (c *Catalog) Owner(object string) (string, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	o, ok := c.owners[object]
	return o, ok
}

// Grant records grantor granting priv on object to grantee. The grantor
// must be the owner or hold the privilege with grant option at some
// earlier timestamp.
func (c *Catalog) Grant(grantor, grantee string, priv Privilege, object string, withGrantOption bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.owners[object]; !ok {
		return fmt.Errorf("sysr: unknown object %q", object)
	}
	if grantor == grantee {
		return fmt.Errorf("sysr: %s cannot grant to itself", grantor)
	}
	c.clock++
	if !c.canGrantLocked(grantor, priv, object, c.clock) {
		c.clock--
		return fmt.Errorf("sysr: %s lacks %s on %s with grant option", grantor, priv, object)
	}
	c.grants = append(c.grants, Grant{
		Grantor: grantor, Grantee: grantee, Priv: priv, Object: object,
		GrantOption: withGrantOption, TS: c.clock,
	})
	return nil
}

// canGrantLocked reports whether subject can act as grantor of priv on
// object at timestamp ts: it is the owner, or holds a grant-option grant
// with TS < ts.
func (c *Catalog) canGrantLocked(subject string, priv Privilege, object string, ts int64) bool {
	if c.owners[object] == subject {
		return true
	}
	for _, g := range c.grants {
		if g.Grantee == subject && g.Priv == priv && g.Object == object && g.GrantOption && g.TS < ts {
			return true
		}
	}
	return false
}

// HasPrivilege reports whether the subject currently holds the privilege
// (as owner or grantee of any live grant).
func (c *Catalog) HasPrivilege(subject string, priv Privilege, object string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.owners[object] == subject {
		return true
	}
	for _, g := range c.grants {
		if g.Grantee == subject && g.Priv == priv && g.Object == object {
			return true
		}
	}
	return false
}

// Revoke removes every grant of priv on object from revoker to revokee and
// then performs Griffiths–Wade recursive revocation: grants made by the
// revokee that are no longer supported by a strictly older grant-option
// grant (or ownership) are revoked too, transitively.
func (c *Catalog) Revoke(revoker, revokee string, priv Privilege, object string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	found := false
	kept := c.grants[:0]
	for _, g := range c.grants {
		if g.Grantor == revoker && g.Grantee == revokee && g.Priv == priv && g.Object == object {
			found = true
			continue
		}
		kept = append(kept, g)
	}
	c.grants = kept
	if !found {
		return fmt.Errorf("sysr: no grant of %s on %s from %s to %s", priv, object, revoker, revokee)
	}
	c.cascadeLocked(priv, object)
	return nil
}

// cascadeLocked repeatedly removes grants whose grantor can no longer
// justify them, until a fixed point.
func (c *Catalog) cascadeLocked(priv Privilege, object string) {
	for {
		removed := false
		kept := c.grants[:0]
		for _, g := range c.grants {
			if g.Priv == priv && g.Object == object && !c.supportedLocked(g) {
				removed = true
				continue
			}
			kept = append(kept, g)
		}
		c.grants = kept
		if !removed {
			return
		}
	}
}

// supportedLocked reports whether grant g could still have been made: its
// grantor is the owner or holds a grant-option grant strictly older than g.
func (c *Catalog) supportedLocked(g Grant) bool {
	if c.owners[g.Object] == g.Grantor {
		return true
	}
	for _, h := range c.grants {
		if h.Grantee == g.Grantor && h.Priv == g.Priv && h.Object == g.Object && h.GrantOption && h.TS < g.TS {
			return true
		}
	}
	return false
}

// GrantsOn returns the live grants on an object, sorted by timestamp.
func (c *Catalog) GrantsOn(object string) []Grant {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []Grant
	for _, g := range c.grants {
		if g.Object == object {
			out = append(out, g)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

// Subjects returns every subject that currently holds priv on object,
// sorted, including the owner.
func (c *Catalog) Subjects(priv Privilege, object string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	set := map[string]bool{}
	if o, ok := c.owners[object]; ok {
		set[o] = true
	}
	for _, g := range c.grants {
		if g.Priv == priv && g.Object == object {
			set[g.Grantee] = true
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
