package sysr

import "testing"

func newCat(t *testing.T) *Catalog {
	t.Helper()
	c := NewCatalog()
	if err := c.CreateObject("emp", "owner"); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestOwnerImplicitPrivileges(t *testing.T) {
	c := newCat(t)
	if !c.HasPrivilege("owner", Select, "emp") {
		t.Error("owner lacks SELECT")
	}
	if !c.HasPrivilege("owner", Delete, "emp") {
		t.Error("owner lacks DELETE")
	}
	if c.HasPrivilege("alice", Select, "emp") {
		t.Error("stranger holds SELECT")
	}
}

func TestGrantChain(t *testing.T) {
	c := newCat(t)
	must(t, c.Grant("owner", "alice", Select, "emp", true))
	must(t, c.Grant("alice", "bob", Select, "emp", false))
	if !c.HasPrivilege("bob", Select, "emp") {
		t.Error("bob lacks SELECT after chain grant")
	}
	// bob has no grant option.
	if err := c.Grant("bob", "carol", Select, "emp", false); err == nil {
		t.Error("grant without grant option accepted")
	}
}

func TestGrantRequiresPrivilege(t *testing.T) {
	c := newCat(t)
	if err := c.Grant("mallory", "bob", Select, "emp", false); err == nil {
		t.Error("grant from non-holder accepted")
	}
	if err := c.Grant("owner", "bob", Select, "ghost", false); err == nil {
		t.Error("grant on unknown object accepted")
	}
	if err := c.Grant("owner", "owner", Select, "emp", false); err == nil {
		t.Error("self-grant accepted")
	}
}

func TestSimpleRevoke(t *testing.T) {
	c := newCat(t)
	must(t, c.Grant("owner", "alice", Select, "emp", false))
	must(t, c.Revoke("owner", "alice", Select, "emp"))
	if c.HasPrivilege("alice", Select, "emp") {
		t.Error("privilege survives revoke")
	}
	if err := c.Revoke("owner", "alice", Select, "emp"); err == nil {
		t.Error("revoking nonexistent grant accepted")
	}
}

func TestRecursiveRevoke(t *testing.T) {
	c := newCat(t)
	// owner -> alice(go) -> bob(go) -> carol
	must(t, c.Grant("owner", "alice", Select, "emp", true))
	must(t, c.Grant("alice", "bob", Select, "emp", true))
	must(t, c.Grant("bob", "carol", Select, "emp", false))
	must(t, c.Revoke("owner", "alice", Select, "emp"))
	for _, u := range []string{"alice", "bob", "carol"} {
		if c.HasPrivilege(u, Select, "emp") {
			t.Errorf("%s retains SELECT after recursive revoke", u)
		}
	}
}

func TestRevokeKeepsIndependentlySupportedGrants(t *testing.T) {
	c := newCat(t)
	// Two independent grant-option paths to bob; revoke one, bob's regrant
	// to carol survives because the other path is older or equal support.
	must(t, c.Grant("owner", "alice", Select, "emp", true)) // ts1
	must(t, c.Grant("owner", "bob", Select, "emp", true))   // ts2
	must(t, c.Grant("alice", "bob", Select, "emp", true))   // ts3
	must(t, c.Grant("bob", "carol", Select, "emp", false))  // ts4
	must(t, c.Revoke("alice", "bob", Select, "emp"))
	if !c.HasPrivilege("bob", Select, "emp") {
		t.Error("bob lost privilege despite direct owner grant")
	}
	if !c.HasPrivilege("carol", Select, "emp") {
		t.Error("carol lost privilege though bob still has older grant option")
	}
}

func TestGriffithsWadeTimestampSemantics(t *testing.T) {
	c := newCat(t)
	// bob is granted WITH GRANT OPTION at ts3, *after* he granted nothing.
	// Sequence: owner->alice(go) ts1; alice->bob(go) ts2; bob->carol ts3;
	// owner->bob(go) ts4. Revoking alice->bob must revoke carol because
	// bob's surviving grant (ts4) is NOT older than his grant to carol (ts3).
	must(t, c.Grant("owner", "alice", Select, "emp", true)) // ts1
	must(t, c.Grant("alice", "bob", Select, "emp", true))   // ts2
	must(t, c.Grant("bob", "carol", Select, "emp", false))  // ts3
	must(t, c.Grant("owner", "bob", Select, "emp", true))   // ts4
	must(t, c.Revoke("alice", "bob", Select, "emp"))
	if !c.HasPrivilege("bob", Select, "emp") {
		t.Error("bob should retain privilege from ts4 grant")
	}
	if c.HasPrivilege("carol", Select, "emp") {
		t.Error("carol's grant should cascade: bob's remaining support is newer")
	}
}

func TestRevokeScopedToPrivilege(t *testing.T) {
	c := newCat(t)
	must(t, c.Grant("owner", "alice", Select, "emp", false))
	must(t, c.Grant("owner", "alice", Insert, "emp", false))
	must(t, c.Revoke("owner", "alice", Select, "emp"))
	if c.HasPrivilege("alice", Select, "emp") {
		t.Error("SELECT survives")
	}
	if !c.HasPrivilege("alice", Insert, "emp") {
		t.Error("INSERT wrongly revoked")
	}
}

func TestSubjectsAndGrantsOn(t *testing.T) {
	c := newCat(t)
	must(t, c.Grant("owner", "bob", Select, "emp", false))
	must(t, c.Grant("owner", "alice", Select, "emp", false))
	got := c.Subjects(Select, "emp")
	want := []string{"alice", "bob", "owner"}
	if len(got) != len(want) {
		t.Fatalf("Subjects = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Subjects = %v, want %v", got, want)
		}
	}
	gs := c.GrantsOn("emp")
	if len(gs) != 2 || gs[0].TS >= gs[1].TS {
		t.Errorf("GrantsOn not ordered by TS: %v", gs)
	}
}

func TestDuplicateObject(t *testing.T) {
	c := newCat(t)
	if err := c.CreateObject("emp", "other"); err == nil {
		t.Error("duplicate object accepted")
	}
	if o, ok := c.Owner("emp"); !ok || o != "owner" {
		t.Errorf("Owner = %q, %v", o, ok)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
