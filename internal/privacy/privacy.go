// Package privacy implements privacy-constraint processing after
// Thuraisingham [13]: "privacy constraints determine which patterns are
// private and to what extent. For example, suppose one could extract the
// names and healthcare records. If we have a privacy constraint that
// states that names and healthcare records are private then this
// information is not released to the general public. If the information is
// semi-private, then it is released to those who have a need to know."
// (§3.3)
//
// A constraint classifies an attribute combination as Public, SemiPrivate
// or Private. The Controller is consulted by release points — the secure
// database's result filter and the mining release gate — and decides per
// requestor: Public flows to everyone, SemiPrivate only to need-to-know
// subjects, Private to no external requestor.
package privacy

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"webdbsec/internal/mining"
	"webdbsec/internal/policy"
	"webdbsec/internal/reldb"
)

// Class is a privacy classification.
type Class int

// Classes, ordered from least to most restrictive.
const (
	Public Class = iota
	SemiPrivate
	Private
)

func (c Class) String() string {
	switch c {
	case Public:
		return "public"
	case SemiPrivate:
		return "semi-private"
	case Private:
		return "private"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Constraint classifies every release containing ALL of Attrs (a
// combination — the classic example being {name, disease}: either alone
// may be public while the combination is private).
type Constraint struct {
	Name  string
	Attrs []string
	Class Class
	// NeedToKnow lists the roles that may receive SemiPrivate matches.
	// Ignored for Public and Private.
	NeedToKnow []string
}

// Controller holds the privacy constraints of a data source. Methods are
// safe for concurrent use.
type Controller struct {
	mu          sync.RWMutex
	constraints []*Constraint
}

// NewController returns an empty controller (everything Public).
func NewController() *Controller { return &Controller{} }

// Add installs a constraint.
func (c *Controller) Add(con *Constraint) error {
	if len(con.Attrs) == 0 {
		return fmt.Errorf("privacy: constraint %q has no attributes", con.Name)
	}
	if con.Class == SemiPrivate && len(con.NeedToKnow) == 0 {
		return fmt.Errorf("privacy: semi-private constraint %q needs a need-to-know list", con.Name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.constraints = append(c.constraints, con)
	return nil
}

// Classify returns the strictest class over all constraints whose
// attribute combination is fully contained in attrs, together with the
// matching constraint (nil for Public-by-default).
func (c *Controller) Classify(attrs []string) (Class, *Constraint) {
	set := toSet(attrs)
	c.mu.RLock()
	defer c.mu.RUnlock()
	cls := Public
	var hit *Constraint
	for _, con := range c.constraints {
		if !containsAllAttrs(set, con.Attrs) {
			continue
		}
		if con.Class > cls {
			cls = con.Class
			hit = con
		}
	}
	return cls, hit
}

// MayRelease decides whether the attribute combination may be released to
// the subject: Public always; SemiPrivate when the subject holds a
// need-to-know role of EVERY matching semi-private constraint; Private
// never.
func (c *Controller) MayRelease(s *policy.Subject, attrs []string) bool {
	set := toSet(attrs)
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, con := range c.constraints {
		if !containsAllAttrs(set, con.Attrs) {
			continue
		}
		switch con.Class {
		case Private:
			return false
		case SemiPrivate:
			if s == nil || !hasAnyRole(s, con.NeedToKnow) {
				return false
			}
		}
	}
	return true
}

// FilterResult enforces the constraints on a query result whose columns
// are attributes: any column whose combination with the other released
// columns violates a constraint for this subject is masked to NULL,
// greedily dropping the *later* columns of violating combinations so the
// maximal prefix survives. It returns the masked column names.
func (c *Controller) FilterResult(s *policy.Subject, res *reldb.Result) []string {
	released := []string{}
	masked := []string{}
	maskedIdx := []int{}
	for i, col := range res.Columns {
		trial := append(append([]string(nil), released...), col)
		if c.MayRelease(s, trial) {
			released = trial
			continue
		}
		masked = append(masked, col)
		maskedIdx = append(maskedIdx, i)
	}
	for _, ci := range maskedIdx {
		for _, r := range res.Rows {
			r[ci] = reldb.Null()
		}
	}
	return masked
}

// ReleasePatterns filters mined itemsets before they leave the miner: a
// pattern whose item names form a protected combination is withheld from
// subjects without the need to know. itemName maps item ids to attribute
// names.
func (c *Controller) ReleasePatterns(s *policy.Subject, patterns []mining.FrequentItemset, itemName func(int) string) (released, withheld []mining.FrequentItemset) {
	for _, p := range patterns {
		attrs := make([]string, len(p.Items))
		for i, it := range p.Items {
			attrs[i] = itemName(it)
		}
		if c.MayRelease(s, attrs) {
			released = append(released, p)
		} else {
			withheld = append(withheld, p)
		}
	}
	return released, withheld
}

// Constraints returns the installed constraint names, sorted.
func (c *Controller) Constraints() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.constraints))
	for _, con := range c.constraints {
		out = append(out, con.Name)
	}
	sort.Strings(out)
	return out
}

func toSet(attrs []string) map[string]bool {
	m := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		m[strings.ToLower(a)] = true
	}
	return m
}

func containsAllAttrs(set map[string]bool, attrs []string) bool {
	for _, a := range attrs {
		if !set[strings.ToLower(a)] {
			return false
		}
	}
	return true
}

func hasAnyRole(s *policy.Subject, roles []string) bool {
	for _, r := range roles {
		if s.HasRole(r) {
			return true
		}
	}
	return false
}
