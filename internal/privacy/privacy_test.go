package privacy

import (
	"testing"

	"webdbsec/internal/mining"
	"webdbsec/internal/policy"
	"webdbsec/internal/reldb"
)

func controller(t *testing.T) *Controller {
	t.Helper()
	c := NewController()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(c.Add(&Constraint{
		Name:  "name-disease-private",
		Attrs: []string{"name", "disease"},
		Class: Private,
	}))
	must(c.Add(&Constraint{
		Name:       "zip-disease-semiprivate",
		Attrs:      []string{"zip", "disease"},
		Class:      SemiPrivate,
		NeedToKnow: []string{"researcher"},
	}))
	return c
}

func TestAddValidation(t *testing.T) {
	c := NewController()
	if err := c.Add(&Constraint{Name: "x", Class: Private}); err == nil {
		t.Error("constraint without attrs accepted")
	}
	if err := c.Add(&Constraint{Name: "x", Attrs: []string{"a"}, Class: SemiPrivate}); err == nil {
		t.Error("semi-private without need-to-know accepted")
	}
}

func TestClassifyCombinations(t *testing.T) {
	c := controller(t)
	cases := []struct {
		attrs []string
		want  Class
	}{
		{[]string{"name"}, Public},
		{[]string{"disease"}, Public},
		{[]string{"name", "age"}, Public},
		{[]string{"name", "disease"}, Private},
		{[]string{"name", "disease", "age"}, Private},
		{[]string{"zip", "disease"}, SemiPrivate},
		{[]string{"DISEASE", "ZIP"}, SemiPrivate}, // case-insensitive
	}
	for _, tc := range cases {
		got, _ := c.Classify(tc.attrs)
		if got != tc.want {
			t.Errorf("Classify(%v) = %v, want %v", tc.attrs, got, tc.want)
		}
	}
	// Strictest wins when multiple match.
	got, hit := c.Classify([]string{"name", "zip", "disease"})
	if got != Private || hit == nil || hit.Name != "name-disease-private" {
		t.Errorf("strictest = %v, %+v", got, hit)
	}
}

func TestMayRelease(t *testing.T) {
	c := controller(t)
	public := &policy.Subject{ID: "anyone"}
	researcher := &policy.Subject{ID: "r", Roles: []string{"researcher"}}

	if !c.MayRelease(public, []string{"name", "age"}) {
		t.Error("public combination blocked")
	}
	if c.MayRelease(public, []string{"name", "disease"}) {
		t.Error("private combination released to public")
	}
	if c.MayRelease(researcher, []string{"name", "disease"}) {
		t.Error("private combination released to researcher")
	}
	if c.MayRelease(public, []string{"zip", "disease"}) {
		t.Error("semi-private released without need to know")
	}
	if !c.MayRelease(researcher, []string{"zip", "disease"}) {
		t.Error("semi-private blocked for need-to-know role")
	}
	if c.MayRelease(nil, []string{"zip", "disease"}) {
		t.Error("semi-private released to nil subject")
	}
}

func TestFilterResultMasksViolatingColumns(t *testing.T) {
	c := controller(t)
	res := &reldb.Result{
		Columns: []string{"name", "zip", "disease"},
		Rows: []reldb.Row{
			{reldb.Str("Ada"), reldb.Str("10001"), reldb.Str("flu")},
			{reldb.Str("Bob"), reldb.Str("10002"), reldb.Str("cold")},
		},
	}
	masked := c.FilterResult(&policy.Subject{ID: "anyone"}, res)
	// name, then zip are fine; disease completes both protected combos.
	if len(masked) != 1 || masked[0] != "disease" {
		t.Fatalf("masked = %v", masked)
	}
	for _, r := range res.Rows {
		if !r[2].IsNull() {
			t.Error("disease value survived masking")
		}
		if r[0].IsNull() || r[1].IsNull() {
			t.Error("public columns damaged")
		}
	}
}

func TestFilterResultRespectsNeedToKnow(t *testing.T) {
	c := controller(t)
	res := &reldb.Result{
		Columns: []string{"zip", "disease"},
		Rows:    []reldb.Row{{reldb.Str("10001"), reldb.Str("flu")}},
	}
	masked := c.FilterResult(&policy.Subject{ID: "r", Roles: []string{"researcher"}}, res)
	if len(masked) != 0 {
		t.Errorf("researcher masked: %v", masked)
	}
	if res.Rows[0][1].IsNull() {
		t.Error("disease masked for researcher")
	}
}

func TestReleasePatterns(t *testing.T) {
	c := controller(t)
	names := []string{"name", "zip", "disease", "age"}
	itemName := func(i int) string { return names[i] }
	patterns := []mining.FrequentItemset{
		{Items: []int{0, 3}, Support: 0.5}, // name+age: public
		{Items: []int{0, 2}, Support: 0.3}, // name+disease: private
		{Items: []int{1, 2}, Support: 0.2}, // zip+disease: semi-private
		{Items: []int{3}, Support: 0.9},    // age: public
	}
	rel, withheld := c.ReleasePatterns(&policy.Subject{ID: "anyone"}, patterns, itemName)
	if len(rel) != 2 || len(withheld) != 2 {
		t.Fatalf("released %d, withheld %d", len(rel), len(withheld))
	}
	rel, withheld = c.ReleasePatterns(&policy.Subject{ID: "r", Roles: []string{"researcher"}}, patterns, itemName)
	if len(rel) != 3 || len(withheld) != 1 {
		t.Fatalf("researcher: released %d, withheld %d", len(rel), len(withheld))
	}
}

func TestConstraintsListing(t *testing.T) {
	c := controller(t)
	got := c.Constraints()
	if len(got) != 2 || got[0] != "name-disease-private" {
		t.Errorf("constraints = %v", got)
	}
}
