package authorx

import (
	"fmt"
	"sort"

	"webdbsec/internal/policy"
	"webdbsec/internal/wenc"
	"webdbsec/internal/xmldoc"
)

// Dissemination is the push/pull distribution layer of Author-X [5]: the
// publisher maintains subscriptions, broadcasts one encrypted copy of each
// document, and delivers each subscriber exactly the keys for its
// authorized portions. Document updates and policy changes re-encrypt
// under fresh keys (re-keying), so removed subjects cannot decrypt future
// versions with stale keys — forward protection.
type Dissemination struct {
	pub  *Publisher
	subs map[string]*policy.Subject
	// current holds the latest broadcast per document.
	current map[string]*EncryptedDocument
}

// NewDissemination wraps a publisher.
func NewDissemination(pub *Publisher) *Dissemination {
	return &Dissemination{
		pub:     pub,
		subs:    make(map[string]*policy.Subject),
		current: make(map[string]*EncryptedDocument),
	}
}

// Subscribe registers a subject for push delivery. Re-subscribing updates
// the stored subject (e.g. new roles/credentials).
func (d *Dissemination) Subscribe(s *policy.Subject) {
	d.subs[s.ID] = s
}

// Unsubscribe removes a subject. Already-delivered keys still open the
// current version; the next Push re-keys and locks the subject out.
func (d *Dissemination) Unsubscribe(subjectID string) {
	delete(d.subs, subjectID)
}

// Subscribers returns the subscriber ids, sorted.
func (d *Dissemination) Subscribers() []string {
	out := make([]string, 0, len(d.subs))
	for id := range d.subs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Delivery is one subscriber's share of a push: the common ciphertext plus
// the subject's personal key ring.
type Delivery struct {
	SubjectID string
	Doc       *EncryptedDocument
	Ring      *wenc.KeyRing
}

// Push (re-)encrypts the named document under fresh keys and produces one
// delivery per subscriber. The ciphertext is shared (broadcast); only the
// key rings differ — the bandwidth model of secure broadcasting.
func (d *Dissemination) Push(docName string) ([]Delivery, error) {
	enc, err := d.pub.Encrypt(docName)
	if err != nil {
		return nil, err
	}
	d.current[docName] = enc
	out := make([]Delivery, 0, len(d.subs))
	for _, id := range d.Subscribers() {
		ring, err := d.pub.GrantKeys(docName, d.subs[id])
		if err != nil {
			return nil, err
		}
		out = append(out, Delivery{SubjectID: id, Doc: enc, Ring: ring})
	}
	return out, nil
}

// UpdateDocument replaces the document in the store and pushes the new
// version — the paper's document-update path: subscribers holding old keys
// cannot decrypt the new version unless still authorized.
func (d *Dissemination) UpdateDocument(doc *xmldoc.Document) ([]Delivery, error) {
	d.pub.engine.Store().Put(doc)
	return d.Push(doc.Name)
}

// Pull serves the current encrypted version plus the requesting subject's
// key ring on demand. The subject need not be subscribed (pull mode), but
// the document must have been pushed at least once.
func (d *Dissemination) Pull(docName string, s *policy.Subject) (*Delivery, error) {
	enc, ok := d.current[docName]
	if !ok {
		return nil, fmt.Errorf("authorx: document %q has not been disseminated", docName)
	}
	ring, err := d.pub.GrantKeys(docName, s)
	if err != nil {
		return nil, err
	}
	return &Delivery{SubjectID: s.ID, Doc: enc, Ring: ring}, nil
}

// Open decrypts the delivery into the subject's authorized view.
func (del Delivery) Open() (*xmldoc.Document, error) {
	return Decrypt(del.Doc, del.Ring)
}
