package authorx

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"webdbsec/internal/accessctl"
	"webdbsec/internal/policy"
	"webdbsec/internal/xmldoc"
)

// randomPublisher builds a random document and random read policies.
func randomPublisher(seed int64) (*Publisher, *accessctl.Engine, *xmldoc.Document, []*policy.Subject) {
	rng := rand.New(rand.NewSource(seed))
	b := xmldoc.NewBuilder("r.xml", "root")
	names := []string{"a", "b", "c"}
	depth := 0
	for i := 0; i < 50; i++ {
		switch op := rng.Intn(4); {
		case op == 0 && depth > 0:
			b.End()
			depth--
		case op <= 1:
			b.Begin(names[rng.Intn(len(names))])
			depth++
		case op == 2:
			b.Text(fmt.Sprintf("secret-%d", rng.Intn(100)))
		default:
			b.Attrib("k", fmt.Sprintf("%d", rng.Intn(3)))
		}
	}
	doc := b.Freeze()
	store := xmldoc.NewStore()
	store.Put(doc)
	base := policy.NewBase(nil)
	paths := []string{"", "//a", "//b", "//c", "//a/b"}
	roles := []string{"r1", "r2"}
	for i := 0; i < 1+rng.Intn(6); i++ {
		base.MustAdd(&policy.Policy{
			Name:    fmt.Sprintf("p%d", i),
			Subject: policy.SubjectSpec{Roles: []string{roles[rng.Intn(len(roles))]}},
			Object:  policy.ObjectSpec{Doc: "r.xml", Path: paths[rng.Intn(len(paths))]},
			Priv:    policy.Read,
			Sign:    policy.Sign(rng.Intn(2)),
			Prop:    policy.Cascade,
		})
	}
	eng := accessctl.NewEngine(store, base)
	subjects := []*policy.Subject{
		{ID: "u1", Roles: []string{"r1"}},
		{ID: "u2", Roles: []string{"r2"}},
		{ID: "u3", Roles: []string{"r1", "r2"}},
		{ID: "u4"},
	}
	return NewPublisher(eng), eng, doc, subjects
}

func TestQuickBroadcastNeverOverGrants(t *testing.T) {
	// Soundness: whatever a subject decrypts from the broadcast is a
	// (possibly strict) sub-view of what the trusted server would give it.
	// Checked by value-multiset containment on text and attributes.
	f := func(seed int64) bool {
		pub, eng, doc, subjects := randomPublisher(seed)
		enc, err := pub.Encrypt(doc.Name)
		if err != nil {
			return false
		}
		for _, s := range subjects {
			ring, err := pub.GrantKeys(doc.Name, s)
			if err != nil {
				return false
			}
			got, err := Decrypt(enc, ring)
			if err != nil {
				return false
			}
			want := eng.View(doc.Name, s, policy.Read)
			if got == nil {
				continue // nothing decrypted: trivially sound
			}
			if want == nil {
				t.Logf("seed %d subject %s: decrypted view though trusted server denies", seed, s.ID)
				return false
			}
			// Multiset containment of non-element values.
			allowed := map[string]int{}
			want.Walk(func(n *xmldoc.Node) bool {
				if n.Kind != xmldoc.KindElement {
					allowed[n.Value]++
				}
				return true
			})
			sound := true
			got.Walk(func(n *xmldoc.Node) bool {
				if n.Kind == xmldoc.KindElement {
					return true
				}
				if allowed[n.Value] == 0 {
					sound = false
					return false
				}
				allowed[n.Value]--
				return true
			})
			if !sound {
				t.Logf("seed %d subject %s: broadcast over-grants", seed, s.ID)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
