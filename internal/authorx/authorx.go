// Package authorx implements the Author-X secure dissemination approach [5]
// the paper describes in §3.2 and §4.1: instead of trusting the server (or
// discovery agency) that hands out documents, "the service provider
// encrypts the entries to be published ... according to its access control
// policies: all the entry portions to which the same policies apply are
// encrypted with the same key. Then, it publishes the encrypted copy ...
// Additionally, the service provider is responsible for distributing keys
// to the service requestors in such a way that each service requestor
// receives all and only the keys corresponding to the information it is
// entitled to access."
//
// The policy-configuration partition comes from accessctl.Configurations:
// two nodes share an encryption key iff exactly the same read policies
// apply to them ("well-formed encryption"). A subject is handed the key of
// a configuration class iff every node of that class is readable by the
// subject — the conservative rule that can never over-grant even when
// denials interleave with permissions at different depths.
package authorx

import (
	"encoding/binary"
	"fmt"
	"sync"

	"webdbsec/internal/accessctl"
	"webdbsec/internal/policy"
	"webdbsec/internal/wenc"
	"webdbsec/internal/xmldoc"
)

// Engine is the slice of the access-control engine the publisher needs.
// Both *accessctl.Engine and the caching *decisioncache.Engine satisfy it;
// with the latter, label vectors and configuration partitions are memoized
// across Encrypt/GrantKeys calls and across publishers.
type Engine interface {
	Store() *xmldoc.Store
	Base() *policy.Base
	Labels(doc *xmldoc.Document, s *policy.Subject, priv policy.Privilege) []bool
	Configurations(doc *xmldoc.Document) *accessctl.PolicyConfiguration
}

// EncryptedNode is one node of a broadcast document: the tree position and
// configuration class are public; the node's own content (kind, name,
// value) is sealed under the class key.
type EncryptedNode struct {
	ID       int
	ParentID int // -1 for the root
	Class    string
	Blob     []byte
}

// EncryptedDocument is the publishable ciphertext form of a document. The
// skeleton (node ids and parent links) is visible; everything else is
// encrypted. It can be handed to an untrusted publisher or broadcast.
type EncryptedDocument struct {
	Name       string
	Nodes      []EncryptedNode
	NumClasses int
}

// partition is a configuration partition pinned to the document and
// policy-base generations it was computed under.
type partition struct {
	pc      *accessctl.PolicyConfiguration
	docGen  uint64
	baseGen uint64
}

// Publisher is the document owner: it holds the policy engine and the
// per-document class keys, encrypts documents, and hands subjects exactly
// the keys they are entitled to. Publishers are safe for concurrent use.
type Publisher struct {
	engine Engine
	mu     sync.RWMutex
	// keys maps document name -> class id -> key.
	keys map[string]map[string]wenc.Key
	// classes caches the configuration partition per document, pinned to
	// the generations it was computed under so Encrypt can skip the
	// partition step when neither the document nor the policy base moved.
	classes map[string]*partition
}

// NewPublisher returns a publisher over the given engine.
func NewPublisher(engine Engine) *Publisher {
	return &Publisher{
		engine:  engine,
		keys:    make(map[string]map[string]wenc.Key),
		classes: make(map[string]*partition),
	}
}

// classID names a configuration class in key rings and encrypted nodes.
func classID(doc string, class int) string {
	return fmt.Sprintf("%s#%d", doc, class)
}

// Encrypt produces the broadcastable encrypted form of the named document,
// generating one fresh key per policy-configuration class. The partition
// itself is memoized against the document and policy-base generations:
// re-encrypting an unchanged document under unchanged policies (fresh
// keys for a new broadcast epoch) skips the partition computation.
func (p *Publisher) Encrypt(docName string) (*EncryptedDocument, error) {
	doc, ok := p.engine.Store().Get(docName)
	if !ok {
		return nil, fmt.Errorf("authorx: unknown document %q", docName)
	}
	docGen := p.engine.Store().DocGeneration(docName)
	baseGen := p.engine.Base().Generation()
	p.mu.RLock()
	part := p.classes[docName]
	p.mu.RUnlock()
	if part == nil || part.docGen != docGen || part.baseGen != baseGen {
		part = &partition{pc: p.engine.Configurations(doc), docGen: docGen, baseGen: baseGen}
	}
	pc := part.pc
	km := make(map[string]wenc.Key, pc.NumClasses)
	for c := 0; c < pc.NumClasses; c++ {
		k, err := wenc.NewKey()
		if err != nil {
			return nil, err
		}
		km[classID(docName, c)] = k
	}
	p.mu.Lock()
	p.classes[docName] = part
	p.keys[docName] = km
	p.mu.Unlock()

	enc := &EncryptedDocument{Name: docName, NumClasses: pc.NumClasses}
	for _, n := range doc.Nodes() {
		parent := -1
		if n.Parent != nil {
			parent = n.Parent.ID()
		}
		cid := classID(docName, pc.Class[n.ID()])
		blob, err := wenc.Seal(km[cid], encodeNode(n), aad(docName, n.ID()))
		if err != nil {
			return nil, err
		}
		enc.Nodes = append(enc.Nodes, EncryptedNode{
			ID: n.ID(), ParentID: parent, Class: cid, Blob: blob,
		})
	}
	return enc, nil
}

// GrantKeys returns the key ring for a subject: the keys of every
// configuration class of the document whose nodes are all readable by the
// subject. Encrypt must have been called for the document first.
func (p *Publisher) GrantKeys(docName string, s *policy.Subject) (*wenc.KeyRing, error) {
	doc, ok := p.engine.Store().Get(docName)
	if !ok {
		return nil, fmt.Errorf("authorx: unknown document %q", docName)
	}
	p.mu.RLock()
	part := p.classes[docName]
	keys := p.keys[docName]
	p.mu.RUnlock()
	if part == nil {
		return nil, fmt.Errorf("authorx: document %q not encrypted yet", docName)
	}
	pc := part.pc
	labels := p.engine.Labels(doc, s, policy.Read)
	allowed := make([]bool, pc.NumClasses)
	seen := make([]bool, pc.NumClasses)
	for i := range allowed {
		allowed[i] = true
	}
	for id, class := range pc.Class {
		seen[class] = true
		if !labels[id] {
			allowed[class] = false
		}
	}
	ring := wenc.NewKeyRing()
	for c := 0; c < pc.NumClasses; c++ {
		if seen[c] && allowed[c] {
			cid := classID(docName, c)
			ring.Add(cid, keys[cid])
		}
	}
	return ring, nil
}

// Stale reports whether the document or the policy base has changed since
// the last Encrypt of docName — i.e. whether the published ciphertext no
// longer matches what GrantKeys would be deciding against. Re-Encrypt (and
// re-broadcast) when it returns true. It also returns true for documents
// never encrypted.
func (p *Publisher) Stale(docName string) bool {
	p.mu.RLock()
	part := p.classes[docName]
	p.mu.RUnlock()
	if part == nil {
		return true
	}
	return part.docGen != p.engine.Store().DocGeneration(docName) ||
		part.baseGen != p.engine.Base().Generation()
}

// NumKeys returns the number of class keys generated for the document —
// the key-management cost experiment E3 tracks.
func (p *Publisher) NumKeys(docName string) int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.keys[docName])
}

// Decrypt reconstructs a subject's view from an encrypted document and the
// subject's key ring: a node appears in the view iff its key is held and
// all its ancestors are decryptable too (otherwise its position in the
// document cannot be established). It returns nil when not even the root
// is decryptable.
func Decrypt(enc *EncryptedDocument, ring *wenc.KeyRing) (*xmldoc.Document, error) {
	type plain struct {
		kind  xmldoc.NodeKind
		name  string
		value string
		ok    bool
	}
	nodes := make([]plain, len(enc.Nodes))
	children := make(map[int][]int)
	root := -1
	for i, en := range enc.Nodes {
		if en.ParentID < 0 {
			root = i
		} else {
			children[en.ParentID] = append(children[en.ParentID], i)
		}
		key, held := ring.Get(en.Class)
		if !held {
			continue
		}
		pt, err := wenc.Open(key, en.Blob, aad(enc.Name, en.ID))
		if err != nil {
			return nil, fmt.Errorf("authorx: node %d: %w", en.ID, err)
		}
		kind, name, value, err := decodeNode(pt)
		if err != nil {
			return nil, fmt.Errorf("authorx: node %d: %w", en.ID, err)
		}
		nodes[i] = plain{kind: kind, name: name, value: value, ok: true}
	}
	if root < 0 || !nodes[root].ok {
		return nil, nil
	}
	b := xmldoc.NewBuilder(enc.Name, nodes[root].name)
	var build func(idx int)
	build = func(idx int) {
		for _, ci := range children[idx] {
			c := nodes[ci]
			if !c.ok {
				continue
			}
			switch c.kind {
			case xmldoc.KindAttr:
				b.Attrib(c.name, c.value)
			case xmldoc.KindText:
				b.Text(c.value)
			case xmldoc.KindElement:
				b.Begin(c.name)
				build(ci)
				b.End()
			}
		}
	}
	build(root)
	return b.Freeze(), nil
}

func aad(doc string, nodeID int) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(nodeID))
	return append([]byte(doc+"|"), buf[:]...)
}

// encodeNode serializes a node's own content: kind byte, then
// length-prefixed name and value.
func encodeNode(n *xmldoc.Node) []byte {
	name, value := []byte(n.Name), []byte(n.Value)
	out := make([]byte, 0, 1+8+len(name)+len(value))
	out = append(out, byte(n.Kind))
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(name)))
	out = append(out, l[:]...)
	out = append(out, name...)
	binary.BigEndian.PutUint32(l[:], uint32(len(value)))
	out = append(out, l[:]...)
	out = append(out, value...)
	return out
}

func decodeNode(b []byte) (xmldoc.NodeKind, string, string, error) {
	if len(b) < 5 {
		return 0, "", "", fmt.Errorf("authorx: truncated node encoding")
	}
	kind := xmldoc.NodeKind(b[0])
	b = b[1:]
	nameLen := binary.BigEndian.Uint32(b[:4])
	b = b[4:]
	if uint32(len(b)) < nameLen+4 {
		return 0, "", "", fmt.Errorf("authorx: truncated node name")
	}
	name := string(b[:nameLen])
	b = b[nameLen:]
	valLen := binary.BigEndian.Uint32(b[:4])
	b = b[4:]
	if uint32(len(b)) != valLen {
		return 0, "", "", fmt.Errorf("authorx: truncated node value")
	}
	return kind, name, string(b), nil
}
