package authorx

import (
	"strings"
	"testing"

	"webdbsec/internal/policy"
	"webdbsec/internal/xmldoc"
)

func dissemination(t *testing.T) (*Dissemination, *Publisher) {
	t.Helper()
	pub, _ := setup(t)
	return NewDissemination(pub), pub
}

func TestPushDeliversPerSubscriberKeys(t *testing.T) {
	d, _ := dissemination(t)
	d.Subscribe(&policy.Subject{ID: "visitor"})
	d.Subscribe(&policy.Subject{ID: "b1", Roles: []string{"board"}})
	dels, err := d.Push("report.xml")
	if err != nil {
		t.Fatal(err)
	}
	if len(dels) != 2 {
		t.Fatalf("deliveries = %d", len(dels))
	}
	// Shared ciphertext, distinct rings.
	if dels[0].Doc != dels[1].Doc {
		t.Error("ciphertext not shared across subscribers")
	}
	byID := map[string]Delivery{}
	for _, del := range dels {
		byID[del.SubjectID] = del
	}
	if byID["visitor"].Ring.Len() >= byID["b1"].Ring.Len() {
		t.Error("visitor holds at least as many keys as board member")
	}
	vView, err := byID["visitor"].Open()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(vView.Canonical(), "Initech") {
		t.Error("visitor decrypted board content")
	}
	bView, err := byID["b1"].Open()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(bView.Canonical(), "Initech") {
		t.Error("board member cannot decrypt board content")
	}
}

func TestPullWithoutSubscription(t *testing.T) {
	d, _ := dissemination(t)
	if _, err := d.Pull("report.xml", &policy.Subject{ID: "x"}); err == nil {
		t.Error("pull before any push accepted")
	}
	if _, err := d.Push("report.xml"); err != nil {
		t.Fatal(err)
	}
	del, err := d.Pull("report.xml", &policy.Subject{ID: "s1", Roles: []string{"staff"}})
	if err != nil {
		t.Fatal(err)
	}
	v, err := del.Open()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(v.Canonical(), "down 10 percent") {
		t.Error("staff pull missing internal section")
	}
}

func TestRekeyOnPushLocksOutStaleKeys(t *testing.T) {
	d, _ := dissemination(t)
	board := &policy.Subject{ID: "b1", Roles: []string{"board"}}
	d.Subscribe(board)
	dels, err := d.Push("report.xml")
	if err != nil {
		t.Fatal(err)
	}
	oldRing := dels[0].Ring

	// Second push re-keys; the old ring no longer opens the new version.
	dels2, err := d.Push("report.xml")
	if err != nil {
		t.Fatal(err)
	}
	stale := Delivery{SubjectID: "b1", Doc: dels2[0].Doc, Ring: oldRing}
	if v, err := stale.Open(); err == nil && v != nil {
		t.Error("stale keys decrypt the re-keyed broadcast")
	}
	if v, err := dels2[0].Open(); err != nil || v == nil {
		t.Errorf("fresh keys fail: %v", err)
	}
}

func TestUnsubscribeStopsDeliveries(t *testing.T) {
	d, _ := dissemination(t)
	d.Subscribe(&policy.Subject{ID: "a"})
	d.Subscribe(&policy.Subject{ID: "b"})
	d.Unsubscribe("a")
	if got := d.Subscribers(); len(got) != 1 || got[0] != "b" {
		t.Errorf("subscribers = %v", got)
	}
	dels, err := d.Push("report.xml")
	if err != nil {
		t.Fatal(err)
	}
	if len(dels) != 1 || dels[0].SubjectID != "b" {
		t.Errorf("deliveries = %+v", dels)
	}
}

func TestUpdateDocumentPropagates(t *testing.T) {
	d, _ := dissemination(t)
	staff := &policy.Subject{ID: "s1", Roles: []string{"staff"}}
	d.Subscribe(staff)
	if _, err := d.Push("report.xml"); err != nil {
		t.Fatal(err)
	}
	// The owner revises the forecast.
	updated := xmldoc.MustParseString("report.xml", strings.Replace(reportXML, "down 10 percent", "up 5 percent", 1))
	dels, err := d.UpdateDocument(updated)
	if err != nil {
		t.Fatal(err)
	}
	v, err := dels[0].Open()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(v.Canonical(), "up 5 percent") {
		t.Error("update not visible after push")
	}
}
