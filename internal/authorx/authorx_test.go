package authorx

import (
	"strings"
	"testing"

	"webdbsec/internal/accessctl"
	"webdbsec/internal/policy"
	"webdbsec/internal/wenc"
	"webdbsec/internal/xmldoc"
)

const reportXML = `
<report>
  <public>
    <summary>quarterly numbers fine</summary>
  </public>
  <internal>
    <forecast>down 10 percent</forecast>
  </internal>
  <board>
    <merger target="Initech"/>
  </board>
</report>`

// setup builds a store with three audience levels: everyone reads public,
// staff read public+internal, board read everything.
func setup(t *testing.T) (*Publisher, *accessctl.Engine) {
	t.Helper()
	store := xmldoc.NewStore()
	doc, err := xmldoc.ParseString("report.xml", reportXML)
	if err != nil {
		t.Fatal(err)
	}
	store.Put(doc)
	base := policy.NewBase(nil)
	add := func(name, path string, roles []string, ids []string) {
		base.MustAdd(&policy.Policy{
			Name:    name,
			Subject: policy.SubjectSpec{Roles: roles, IDs: ids},
			Object:  policy.ObjectSpec{Doc: "report.xml", Path: path},
			Priv:    policy.Read,
			Sign:    policy.Permit,
			Prop:    policy.Cascade,
		})
	}
	add("pub", "/report/public", nil, []string{"*"})
	add("pub-root", "/report", nil, []string{"*"}) // root shell visible to all
	add("int", "/report/internal", []string{"staff", "board"}, nil)
	add("brd", "/report/board", []string{"board"}, nil)
	// Root-shell permit must not cascade: restrict with NoProp.
	for _, p := range base.All() {
		if p.Name == "pub-root" {
			p.Prop = policy.NoProp
		}
	}
	engine := accessctl.NewEngine(store, base)
	return NewPublisher(engine), engine
}

func TestEncryptProducesOneKeyPerClass(t *testing.T) {
	pub, engine := setup(t)
	enc, err := pub.Encrypt("report.xml")
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := engine.Store().Get("report.xml")
	pc := engine.Configurations(doc)
	if enc.NumClasses != pc.NumClasses {
		t.Errorf("enc classes = %d, partition classes = %d", enc.NumClasses, pc.NumClasses)
	}
	if pub.NumKeys("report.xml") != pc.NumClasses {
		t.Errorf("keys = %d, want %d", pub.NumKeys("report.xml"), pc.NumClasses)
	}
	if len(enc.Nodes) != doc.NumNodes() {
		t.Errorf("encrypted nodes = %d, want %d", len(enc.Nodes), doc.NumNodes())
	}
	// No plaintext leaks into the encrypted form.
	for _, en := range enc.Nodes {
		if strings.Contains(string(en.Blob), "Initech") || strings.Contains(string(en.Blob), "forecast") {
			t.Fatal("plaintext visible in encrypted node")
		}
	}
}

func TestKeyDistributionMatchesEntitlement(t *testing.T) {
	pub, _ := setup(t)
	if _, err := pub.Encrypt("report.xml"); err != nil {
		t.Fatal(err)
	}
	anon := &policy.Subject{ID: "visitor"}
	staff := &policy.Subject{ID: "s1", Roles: []string{"staff"}}
	board := &policy.Subject{ID: "b1", Roles: []string{"board"}}

	rAnon, err := pub.GrantKeys("report.xml", anon)
	if err != nil {
		t.Fatal(err)
	}
	rStaff, _ := pub.GrantKeys("report.xml", staff)
	rBoard, _ := pub.GrantKeys("report.xml", board)
	if !(rAnon.Len() < rStaff.Len() && rStaff.Len() < rBoard.Len()) {
		t.Errorf("key monotonicity broken: anon=%d staff=%d board=%d",
			rAnon.Len(), rStaff.Len(), rBoard.Len())
	}
}

func TestDecryptViewMatchesTrustedServerView(t *testing.T) {
	pub, engine := setup(t)
	enc, err := pub.Encrypt("report.xml")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*policy.Subject{
		{ID: "visitor"},
		{ID: "s1", Roles: []string{"staff"}},
		{ID: "b1", Roles: []string{"board"}},
	} {
		ring, err := pub.GrantKeys("report.xml", s)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decrypt(enc, ring)
		if err != nil {
			t.Fatalf("subject %s: decrypt: %v", s.ID, err)
		}
		want := engine.View("report.xml", s, policy.Read)
		switch {
		case want == nil && got != nil:
			t.Errorf("subject %s: decrypted a view the trusted server denies", s.ID)
		case want != nil && got == nil:
			t.Errorf("subject %s: no view though trusted server grants one", s.ID)
		case want != nil && got != nil && got.Canonical() != want.Canonical():
			t.Errorf("subject %s: views differ:\n enc: %s\n srv: %s",
				s.ID, got.Canonical(), want.Canonical())
		}
	}
}

func TestAnonCannotDecryptSecrets(t *testing.T) {
	pub, _ := setup(t)
	enc, _ := pub.Encrypt("report.xml")
	ring, _ := pub.GrantKeys("report.xml", &policy.Subject{ID: "visitor"})
	v, err := Decrypt(enc, ring)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatal("visitor should at least see the public part")
	}
	c := v.Canonical()
	if strings.Contains(c, "Initech") || strings.Contains(c, "down 10 percent") {
		t.Fatalf("secret content decrypted by visitor: %s", c)
	}
	if !strings.Contains(c, "quarterly numbers fine") {
		t.Errorf("public content missing: %s", c)
	}
}

func TestDecryptWithEmptyRing(t *testing.T) {
	pub, _ := setup(t)
	enc, _ := pub.Encrypt("report.xml")
	v, err := Decrypt(enc, wenc.NewKeyRing())
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Error("view reconstructed with no keys")
	}
}

func TestDecryptRejectsSwappedBlobs(t *testing.T) {
	// A malicious publisher swaps two encrypted nodes of the same class;
	// the AAD (doc, node id) binding must catch it.
	pub, _ := setup(t)
	enc, _ := pub.Encrypt("report.xml")
	ring, _ := pub.GrantKeys("report.xml", &policy.Subject{ID: "b1", Roles: []string{"board"}})

	// Find two distinct nodes in the same class.
	var i, j = -1, -1
	for a := range enc.Nodes {
		for b := a + 1; b < len(enc.Nodes); b++ {
			if enc.Nodes[a].Class == enc.Nodes[b].Class {
				i, j = a, b
				break
			}
		}
		if i >= 0 {
			break
		}
	}
	if i < 0 {
		t.Skip("no same-class pair in fixture")
	}
	enc.Nodes[i].Blob, enc.Nodes[j].Blob = enc.Nodes[j].Blob, enc.Nodes[i].Blob
	if _, err := Decrypt(enc, ring); err == nil {
		t.Error("swapped blobs decrypted cleanly: AAD binding missing")
	}
}

func TestEncryptUnknownDocument(t *testing.T) {
	pub, _ := setup(t)
	if _, err := pub.Encrypt("ghost.xml"); err == nil {
		t.Error("unknown document encrypted")
	}
	if _, err := pub.GrantKeys("ghost.xml", &policy.Subject{ID: "x"}); err == nil {
		t.Error("keys granted for unknown document")
	}
	if _, err := pub.GrantKeys("report.xml", &policy.Subject{ID: "x"}); err == nil {
		t.Error("keys granted before Encrypt")
	}
}

func TestNodeEncodingRoundTrip(t *testing.T) {
	doc := xmldoc.MustParseString("d", `<a k="v">text</a>`)
	for _, n := range doc.Nodes() {
		kind, name, value, err := decodeNode(encodeNode(n))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if kind != n.Kind || name != n.Name || value != n.Value {
			t.Errorf("roundtrip mismatch for node %d", n.ID())
		}
	}
	// Corrupt encodings are rejected.
	for _, b := range [][]byte{nil, {0}, {0, 0, 0, 0, 9}, {9, 0, 0, 0, 1, 'x', 0, 0, 0, 9}} {
		if _, _, _, err := decodeNode(b); err == nil {
			t.Errorf("corrupt encoding %v accepted", b)
		}
	}
}
