// Package credential implements the credential-based subject qualification
// the paper calls for in §3.1: "traditional identity-based mechanisms for
// performing access control are not enough. Rather a more flexible way of
// qualifying subjects is needed, for instance based on the notion of role
// or credential."
//
// Following the Author-X model [5], a credential is a typed bag of
// attributes about a subject (e.g. type "physician" with attributes
// ward="3", specialty="cardiology"), issued and signed by a credential
// authority. Policies then qualify subjects with credential expressions —
// boolean conditions over credential types and attributes — instead of (or
// in addition to) identities and roles.
package credential

import (
	"crypto/ed25519"
	"crypto/sha256"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Type declares a credential type: its name and the attributes instances of
// it may carry. Declaring types lets the policy compiler reject expressions
// over unknown attributes.
type Type struct {
	Name  string
	Attrs []string
}

// HasAttr reports whether the type declares the named attribute.
func (t *Type) HasAttr(name string) bool {
	for _, a := range t.Attrs {
		if a == name {
			return true
		}
	}
	return false
}

// Credential is an issued credential: a type instance bound to a subject.
type Credential struct {
	// Type is the credential type name.
	Type string
	// Subject is the identity the credential speaks about.
	Subject string
	// Issuer names the authority that issued the credential.
	Issuer string
	// Attrs are the attribute values.
	Attrs map[string]string
	// Signature is the issuer's Ed25519 signature over the canonical
	// encoding; empty for unsigned (test-only) credentials.
	//
	// seclint:secret
	Signature []byte
}

// canonical returns the deterministic byte encoding that is signed.
func (c *Credential) canonical() []byte {
	keys := make([]string, 0, len(c.Attrs))
	for k := range c.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "credential|%s|%s|%s", c.Type, c.Subject, c.Issuer)
	for _, k := range keys {
		fmt.Fprintf(&b, "|%s=%s", k, c.Attrs[k])
	}
	return []byte(b.String())
}

// Redact reduces secret bytes to a short non-invertible tag ("redacted:"
// plus four digest bytes) that is safe to embed in logs, error text and
// debug output. It is the leakcheck-blessed way to mention key or
// signature material in a message.
// seclint:sanitizer
func Redact(secret []byte) string {
	sum := sha256.Sum256(secret)
	return fmt.Sprintf("redacted:%x", sum[:4])
}

// Fingerprint returns a digest identifying the credential's full content,
// signature included: two credentials share a fingerprint iff they are the
// same assertion signed the same way. Decision caches key on it.
// seclint:sanitizer
func (c *Credential) Fingerprint() [32]byte {
	return sha256.Sum256(append(c.canonical(), c.Signature...))
}

// Fingerprint returns a digest of the wallet's content that is independent
// of credential insertion order. Two wallets with the same credentials (by
// Credential.Fingerprint) collide; wallets differing in any credential do
// not. A nil wallet has the zero-wallet fingerprint.
// seclint:sanitizer
func (w *Wallet) Fingerprint() [32]byte {
	if w == nil {
		return sha256.Sum256([]byte("wallet|nil"))
	}
	fps := make([][32]byte, len(w.Credentials))
	for i, c := range w.Credentials {
		fps[i] = c.Fingerprint()
	}
	sort.Slice(fps, func(i, j int) bool {
		for k := 0; k < 32; k++ {
			if fps[i][k] != fps[j][k] {
				return fps[i][k] < fps[j][k]
			}
		}
		return false
	})
	h := sha256.New()
	h.Write([]byte("wallet|" + w.Subject + "|"))
	for _, fp := range fps {
		h.Write(fp[:])
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// Authority issues and verifies credentials.
type Authority struct {
	Name string
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// NewAuthority creates a credential authority with a fresh Ed25519 key pair
// derived from crypto/rand.
func NewAuthority(name string) (*Authority, error) {
	pub, priv, err := ed25519.GenerateKey(nil)
	if err != nil {
		return nil, fmt.Errorf("credential: generate key for %s: %w", name, err)
	}
	return &Authority{Name: name, pub: pub, priv: priv}, nil
}

// PublicKey returns the authority's verification key.
func (a *Authority) PublicKey() ed25519.PublicKey { return a.pub }

// Issue creates a signed credential of the given type for the subject.
func (a *Authority) Issue(typ, subject string, attrs map[string]string) *Credential {
	c := &Credential{Type: typ, Subject: subject, Issuer: a.Name, Attrs: attrs}
	if c.Attrs == nil {
		c.Attrs = map[string]string{}
	}
	c.Signature = ed25519.Sign(a.priv, c.canonical())
	return c
}

// Verify checks the credential's signature against the issuer key.
func Verify(c *Credential, issuerKey ed25519.PublicKey) bool {
	if len(c.Signature) == 0 {
		return false
	}
	return ed25519.Verify(issuerKey, c.canonical(), c.Signature)
}

// Wallet is the set of credentials a subject presents when requesting
// access.
type Wallet struct {
	Subject     string
	Credentials []*Credential
}

// NewWallet returns an empty wallet for the subject.
func NewWallet(subject string) *Wallet { return &Wallet{Subject: subject} }

// Add appends a credential. Credentials whose Subject differs from the
// wallet's are rejected: a subject cannot present someone else's
// credentials.
func (w *Wallet) Add(c *Credential) error {
	if c.Subject != w.Subject {
		return fmt.Errorf("credential: %s cannot hold credential issued to %s", w.Subject, c.Subject)
	}
	w.Credentials = append(w.Credentials, c)
	return nil
}

// OfType returns the credentials of the given type.
func (w *Wallet) OfType(typ string) []*Credential {
	var out []*Credential
	for _, c := range w.Credentials {
		if c.Type == typ {
			out = append(out, c)
		}
	}
	return out
}

// Verifier resolves issuer names to public keys; wallets are checked
// against it before expressions are evaluated.
//
// Valid is memoized: a wallet's fingerprint covers its subject and every
// credential's full content *including signatures*, so two wallets with
// the same fingerprint verify identically under the same trusted key
// set. The key-set generation is part of the memo entry, so Trust
// invalidates all earlier results wholesale.
type Verifier struct {
	mu   sync.Mutex
	keys map[string]ed25519.PublicKey // seclint:guardedby mu
	gen  uint64                       // seclint:guardedby mu
	memo map[[32]byte]memoEntry       // seclint:guardedby mu
	hits uint64                       // seclint:guardedby mu
	miss uint64                       // seclint:guardedby mu
}

// memoEntry is one cached Valid result: the generation it was computed
// under, and the verified subset. The slice is shared between the cache
// and every caller that hits it — callers must treat it as read-only.
type memoEntry struct {
	gen   uint64
	valid []*Credential
}

// memoCapacity bounds the memo map; overflow evicts an arbitrary entry.
const memoCapacity = 1024

// NewVerifier returns an empty verifier.
func NewVerifier() *Verifier {
	return &Verifier{keys: make(map[string]ed25519.PublicKey), memo: make(map[[32]byte]memoEntry)}
}

// Trust registers an authority's public key and invalidates every
// memoized verification: the new key may validate credentials that
// failed before (or, on re-keying an issuer, fail ones that passed).
func (v *Verifier) Trust(issuer string, key ed25519.PublicKey) {
	v.mu.Lock()
	v.keys[issuer] = key
	v.gen++
	v.mu.Unlock()
}

// TrustAuthority registers the authority directly.
func (v *Verifier) TrustAuthority(a *Authority) { v.Trust(a.Name, a.PublicKey()) }

// Valid returns the subset of the wallet's credentials that verify against
// a trusted issuer key. Results are memoized by wallet fingerprint and
// key-set generation; the returned slice may be shared with other callers
// of the same wallet and must not be mutated.
func (v *Verifier) Valid(w *Wallet) []*Credential {
	fp := w.Fingerprint()
	gen, cached, keys, hit := v.memoLookup(fp)
	if hit {
		return cached
	}
	var out []*Credential
	for _, c := range w.Credentials {
		key, ok := keys[c.Issuer]
		if ok && Verify(c, key) {
			out = append(out, c)
		}
	}
	v.memoStore(fp, gen, out)
	return out
}

// memoLookup checks the memo under the lock. On a miss it returns a
// snapshot of the trusted keys so the Ed25519 work runs unlocked; a
// concurrent Trust bumps gen, and memoStore discards the stale result.
func (v *Verifier) memoLookup(fp [32]byte) (gen uint64, cached []*Credential, keys map[string]ed25519.PublicKey, hit bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	gen = v.gen
	if e, ok := v.memo[fp]; ok && e.gen == gen {
		v.hits++
		return gen, e.valid, nil, true
	}
	v.miss++
	keys = make(map[string]ed25519.PublicKey, len(v.keys))
	for i, k := range v.keys {
		keys[i] = k
	}
	return gen, nil, keys, false
}

// memoStore installs a verification result unless the key set changed
// while it was being computed.
func (v *Verifier) memoStore(fp [32]byte, gen uint64, out []*Credential) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.gen != gen {
		return
	}
	if len(v.memo) >= memoCapacity {
		for k := range v.memo {
			delete(v.memo, k)
			break
		}
	}
	v.memo[fp] = memoEntry{gen: gen, valid: out}
}

// MemoStats reports memoized-verification hits and misses.
func (v *Verifier) MemoStats() (hits, misses uint64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.hits, v.miss
}

// Expr is a compiled credential expression. The grammar:
//
//	expr   := orTerm
//	orTerm := andTerm { "||" andTerm }
//	andTerm:= atom { "&&" atom }
//	atom   := "(" expr ")" | "!" atom | test
//	test   := type                              — holds a credential of type
//	        | type "." attr op value            — attribute comparison
//	op     := "=" | "!=" | "<" | "<=" | ">" | ">="
//
// Values are compared numerically when both sides parse as numbers,
// lexically otherwise. Examples:
//
//	physician
//	physician.ward = '3'
//	physician && !intern
//	(nurse.ward = '3' || physician) && employee.years >= '2'
type Expr struct {
	raw  string
	root exprNode
}

type exprNode interface {
	eval(creds []*Credential) bool
}

type orNode struct{ kids []exprNode }
type andNode struct{ kids []exprNode }
type notNode struct{ kid exprNode }
type testNode struct {
	typ, attr, op, value string
}

func (n orNode) eval(cs []*Credential) bool {
	for _, k := range n.kids {
		if k.eval(cs) {
			return true
		}
	}
	return false
}

func (n andNode) eval(cs []*Credential) bool {
	for _, k := range n.kids {
		if !k.eval(cs) {
			return false
		}
	}
	return true
}

func (n notNode) eval(cs []*Credential) bool { return !n.kid.eval(cs) }

func (n testNode) eval(cs []*Credential) bool {
	for _, c := range cs {
		if c.Type != n.typ {
			continue
		}
		if n.attr == "" {
			return true
		}
		v, ok := c.Attrs[n.attr]
		if ok && compare(v, n.op, n.value) {
			return true
		}
	}
	return false
}

func compare(a, op, b string) bool {
	if fa, errA := strconv.ParseFloat(a, 64); errA == nil {
		if fb, errB := strconv.ParseFloat(b, 64); errB == nil {
			switch op {
			case "=":
				return fa == fb
			case "!=":
				return fa != fb
			case "<":
				return fa < fb
			case "<=":
				return fa <= fb
			case ">":
				return fa > fb
			case ">=":
				return fa >= fb
			}
			return false
		}
	}
	switch op {
	case "=":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	case ">=":
		return a >= b
	}
	return false
}

// Compile parses a credential expression.
func Compile(expr string) (*Expr, error) {
	p := &exprParser{src: expr}
	root, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("credential: expr %q: trailing input at %d", expr, p.pos)
	}
	return &Expr{raw: expr, root: root}, nil
}

// MustCompile is Compile that panics on error.
func MustCompile(expr string) *Expr {
	e, err := Compile(expr)
	if err != nil {
		panic(err)
	}
	return e
}

// String returns the source expression.
func (e *Expr) String() string { return e.raw }

// Eval evaluates the expression over a set of (already verified)
// credentials.
func (e *Expr) Eval(creds []*Credential) bool {
	if e == nil || e.root == nil {
		return false
	}
	return e.root.eval(creds)
}

// EvalWallet verifies the wallet against v and evaluates the expression
// over the valid credentials only. A nil verifier skips signature checking
// (useful in tests).
func (e *Expr) EvalWallet(w *Wallet, v *Verifier) bool {
	if w == nil {
		return false
	}
	creds := w.Credentials
	if v != nil {
		creds = v.Valid(w)
	}
	return e.Eval(creds)
}

type exprParser struct {
	src string
	pos int
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

func (p *exprParser) parseOr() (exprNode, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	kids := []exprNode{left}
	for {
		p.skipSpace()
		if !p.consume("||") {
			break
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return orNode{kids}, nil
}

func (p *exprParser) parseAnd() (exprNode, error) {
	left, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	kids := []exprNode{left}
	for {
		p.skipSpace()
		if !p.consume("&&") {
			break
		}
		right, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return andNode{kids}, nil
}

func (p *exprParser) parseAtom() (exprNode, error) {
	p.skipSpace()
	if p.consume("!") {
		kid, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		return notNode{kid}, nil
	}
	if p.consume("(") {
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if !p.consume(")") {
			return nil, fmt.Errorf("credential: expr %q: missing ')' at %d", p.src, p.pos)
		}
		return inner, nil
	}
	return p.parseTest()
}

func (p *exprParser) parseTest() (exprNode, error) {
	typ := p.ident()
	if typ == "" {
		return nil, fmt.Errorf("credential: expr %q: expected credential type at %d", p.src, p.pos)
	}
	t := testNode{typ: typ}
	if !p.consume(".") {
		return t, nil
	}
	t.attr = p.ident()
	if t.attr == "" {
		return nil, fmt.Errorf("credential: expr %q: expected attribute after '.' at %d", p.src, p.pos)
	}
	p.skipSpace()
	for _, op := range []string{"!=", "<=", ">=", "=", "<", ">"} {
		if p.consume(op) {
			t.op = op
			break
		}
	}
	if t.op == "" {
		return nil, fmt.Errorf("credential: expr %q: expected comparison operator at %d", p.src, p.pos)
	}
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != '\'' {
		return nil, fmt.Errorf("credential: expr %q: expected quoted value at %d", p.src, p.pos)
	}
	p.pos++
	end := strings.IndexByte(p.src[p.pos:], '\'')
	if end < 0 {
		return nil, fmt.Errorf("credential: expr %q: unterminated value", p.src)
	}
	t.value = p.src[p.pos : p.pos+end]
	p.pos += end + 1
	return t, nil
}

func (p *exprParser) consume(tok string) bool {
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], tok) {
		p.pos += len(tok)
		return true
	}
	return false
}

func (p *exprParser) ident() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-' {
			p.pos++
		} else {
			break
		}
	}
	return p.src[start:p.pos]
}
