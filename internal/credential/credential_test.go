package credential

import (
	"strconv"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func newAuthority(t *testing.T, name string) *Authority {
	t.Helper()
	a, err := NewAuthority(name)
	if err != nil {
		t.Fatalf("NewAuthority(%s): %v", name, err)
	}
	return a
}

func TestIssueAndVerify(t *testing.T) {
	a := newAuthority(t, "hospital-ca")
	c := a.Issue("physician", "alice", map[string]string{"ward": "3"})
	if !Verify(c, a.PublicKey()) {
		t.Fatal("freshly issued credential does not verify")
	}
	// Tamper with an attribute.
	c.Attrs["ward"] = "5"
	if Verify(c, a.PublicKey()) {
		t.Fatal("tampered credential verifies")
	}
}

func TestVerifyWrongIssuer(t *testing.T) {
	a := newAuthority(t, "ca-a")
	b := newAuthority(t, "ca-b")
	c := a.Issue("physician", "alice", nil)
	if Verify(c, b.PublicKey()) {
		t.Fatal("credential verifies under wrong issuer key")
	}
}

func TestUnsignedCredentialDoesNotVerify(t *testing.T) {
	a := newAuthority(t, "ca")
	c := &Credential{Type: "physician", Subject: "alice", Issuer: "ca"}
	if Verify(c, a.PublicKey()) {
		t.Fatal("unsigned credential verifies")
	}
}

func TestWalletRejectsForeignCredential(t *testing.T) {
	a := newAuthority(t, "ca")
	w := NewWallet("alice")
	if err := w.Add(a.Issue("physician", "bob", nil)); err == nil {
		t.Fatal("wallet accepted credential issued to another subject")
	}
	if err := w.Add(a.Issue("physician", "alice", nil)); err != nil {
		t.Fatalf("wallet rejected own credential: %v", err)
	}
	if len(w.OfType("physician")) != 1 {
		t.Fatal("OfType miscounts")
	}
	if len(w.OfType("nurse")) != 0 {
		t.Fatal("OfType returns wrong type")
	}
}

func TestVerifierFiltersUntrusted(t *testing.T) {
	trusted := newAuthority(t, "trusted")
	rogue := newAuthority(t, "rogue")
	v := NewVerifier()
	v.TrustAuthority(trusted)
	w := NewWallet("alice")
	w.Add(trusted.Issue("physician", "alice", nil))
	w.Add(rogue.Issue("admin", "alice", nil))
	valid := v.Valid(w)
	if len(valid) != 1 || valid[0].Type != "physician" {
		t.Fatalf("valid = %+v, want only physician", valid)
	}
}

func creds(pairs ...map[string]string) []*Credential {
	var out []*Credential
	for _, p := range pairs {
		c := &Credential{Type: p["_type"], Attrs: map[string]string{}}
		for k, v := range p {
			if k != "_type" {
				c.Attrs[k] = v
			}
		}
		out = append(out, c)
	}
	return out
}

func TestExprEval(t *testing.T) {
	cs := creds(
		map[string]string{"_type": "physician", "ward": "3", "years": "10"},
		map[string]string{"_type": "employee", "years": "2"},
	)
	cases := []struct {
		expr string
		want bool
	}{
		{"physician", true},
		{"nurse", false},
		{"physician.ward = '3'", true},
		{"physician.ward = '5'", false},
		{"physician.ward != '5'", true},
		{"physician.years >= '10'", true},
		{"physician.years > '10'", false},
		{"physician.years < '20'", true},
		{"employee.years <= '2'", true},
		{"physician && employee", true},
		{"physician && nurse", false},
		{"physician || nurse", true},
		{"nurse || intern", false},
		{"!nurse", true},
		{"!physician", false},
		{"(nurse || physician) && employee.years >= '2'", true},
		{"physician.ward = '3' && !nurse", true},
		{"physician.badattr = '3'", false},
		// Numeric comparison: '10' > '9' numerically though lexically smaller.
		{"physician.years > '9'", true},
		// Lexical comparison when non-numeric.
		{"physician.ward < 'z'", true},
	}
	for _, c := range cases {
		e, err := Compile(c.expr)
		if err != nil {
			t.Fatalf("compile %q: %v", c.expr, err)
		}
		if got := e.Eval(cs); got != c.want {
			t.Errorf("%q = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestExprCompileErrors(t *testing.T) {
	for _, expr := range []string{
		"",
		"physician &&",
		"physician.ward",
		"physician.ward =",
		"physician.ward = 3",
		"physician.ward = 'open",
		"(physician",
		"physician.= '3'",
		"physician || ",
		"physician) extra",
	} {
		if _, err := Compile(expr); err == nil {
			t.Errorf("compile %q: want error", expr)
		}
	}
}

func TestExprEvalWallet(t *testing.T) {
	a := newAuthority(t, "ca")
	rogue := newAuthority(t, "rogue")
	v := NewVerifier()
	v.TrustAuthority(a)
	w := NewWallet("alice")
	w.Add(a.Issue("employee", "alice", map[string]string{"years": "5"}))
	w.Add(rogue.Issue("admin", "alice", nil))

	if !MustCompile("employee.years >= '3'").EvalWallet(w, v) {
		t.Error("trusted credential should satisfy expression")
	}
	if MustCompile("admin").EvalWallet(w, v) {
		t.Error("untrusted credential satisfied expression")
	}
	// nil verifier skips signature checks.
	if !MustCompile("admin").EvalWallet(w, nil) {
		t.Error("nil verifier should accept unverified credentials")
	}
	if MustCompile("admin").EvalWallet(nil, v) {
		t.Error("nil wallet should never satisfy")
	}
}

func TestTypeHasAttr(t *testing.T) {
	typ := &Type{Name: "physician", Attrs: []string{"ward", "specialty"}}
	if !typ.HasAttr("ward") || typ.HasAttr("salary") {
		t.Error("HasAttr wrong")
	}
}

func TestQuickSignatureBindsAllFields(t *testing.T) {
	a, err := NewAuthority("ca")
	if err != nil {
		t.Fatal(err)
	}
	f := func(typ, subj, k, v, v2 string) bool {
		c := a.Issue(typ, subj, map[string]string{k: v})
		if !Verify(c, a.PublicKey()) {
			return false
		}
		if v2 != v {
			c2 := *c
			c2.Attrs = map[string]string{k: v2}
			if Verify(&c2, a.PublicKey()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickExprNotInvolution(t *testing.T) {
	cs := creds(map[string]string{"_type": "x", "a": "1"})
	exprs := []string{"x", "y", "x.a = '1'", "x.a = '2'"}
	for _, e := range exprs {
		base := MustCompile(e).Eval(cs)
		neg := MustCompile("!(" + e + ")").Eval(cs)
		if base == neg {
			t.Errorf("double negation broken for %q", e)
		}
		doubleNeg := MustCompile("!(!(" + e + "))").Eval(cs)
		if base != doubleNeg {
			t.Errorf("!! not identity for %q", e)
		}
	}
}

func TestValidMemoization(t *testing.T) {
	auth, _ := NewAuthority("hospital")
	rogue, _ := NewAuthority("rogue")
	v := NewVerifier()
	v.TrustAuthority(auth)

	w := NewWallet("ana")
	w.Add(auth.Issue("clinician", "ana", nil))
	w.Add(rogue.Issue("admin", "ana", nil))

	first := v.Valid(w)
	if len(first) != 1 || first[0].Type != "clinician" {
		t.Fatalf("valid = %v", first)
	}
	if h, m := v.MemoStats(); h != 0 || m != 1 {
		t.Fatalf("after first call: hits=%d misses=%d", h, m)
	}

	// Identical content in a distinct wallet value hits the memo.
	w2 := NewWallet("ana")
	w2.Add(w.Credentials[1])
	w2.Add(w.Credentials[0])
	second := v.Valid(w2)
	if len(second) != 1 || second[0].Type != "clinician" {
		t.Fatalf("memoized valid = %v", second)
	}
	if h, m := v.MemoStats(); h != 1 || m != 1 {
		t.Fatalf("after memo hit: hits=%d misses=%d", h, m)
	}

	// Trusting a new issuer invalidates: the rogue credential now passes.
	v.TrustAuthority(rogue)
	third := v.Valid(w)
	if len(third) != 2 {
		t.Fatalf("after trust: valid = %v", third)
	}
	if h, m := v.MemoStats(); h != 1 || m != 2 {
		t.Fatalf("after invalidation: hits=%d misses=%d", h, m)
	}
}

func TestValidMemoKeyedBySignature(t *testing.T) {
	auth, _ := NewAuthority("hospital")
	v := NewVerifier()
	v.TrustAuthority(auth)

	good := NewWallet("ana")
	good.Add(auth.Issue("clinician", "ana", nil))
	if got := v.Valid(good); len(got) != 1 {
		t.Fatalf("good wallet: %v", got)
	}

	// Same content, corrupted signature: must MISS the memo and fail.
	c := *good.Credentials[0]
	c.Signature = append([]byte{}, c.Signature...)
	c.Signature[0] ^= 0xff
	bad := &Wallet{Subject: "ana", Credentials: []*Credential{&c}}
	if got := v.Valid(bad); len(got) != 0 {
		t.Fatalf("corrupted signature passed via memo: %v", got)
	}
}

func TestValidMemoConcurrent(t *testing.T) {
	auth, _ := NewAuthority("hospital")
	v := NewVerifier()
	v.TrustAuthority(auth)
	wallets := make([]*Wallet, 32)
	for i := range wallets {
		w := NewWallet("ana")
		w.Add(auth.Issue("clinician", "ana", map[string]string{"n": strconv.Itoa(i)}))
		wallets[i] = w
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if got := v.Valid(wallets[(g+i)%len(wallets)]); len(got) != 1 {
					t.Errorf("valid = %v", got)
				}
				if i == 100 && g == 0 {
					v.Trust("late", nil) // concurrent invalidation must be safe
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestRedact: the redaction tag is short, deterministic, distinguishes
// different secrets, and never contains the secret bytes themselves.
func TestRedact(t *testing.T) {
	secret := []byte("wallet-signing-key-material")
	tag := Redact(secret)
	if tag != Redact(secret) {
		t.Error("Redact is not deterministic")
	}
	if tag == Redact([]byte("other-secret")) {
		t.Error("distinct secrets share a redaction tag")
	}
	if !strings.HasPrefix(tag, "redacted:") || len(tag) != len("redacted:")+8 {
		t.Errorf("tag = %q, want redacted: plus 8 hex digits", tag)
	}
	if strings.Contains(tag, string(secret)) {
		t.Errorf("tag %q contains the secret", tag)
	}
}
