// Package seclint assembles the repo's analyzer suite. cmd/seclint wires
// it into the `go vet -vettool` protocol; tests and future drivers get
// the same list from Analyzers.
package seclint

import (
	"webdbsec/internal/analysis"
	"webdbsec/internal/analysis/annotcheck"
	"webdbsec/internal/analysis/ctxio"
	"webdbsec/internal/analysis/gatecheck"
	"webdbsec/internal/analysis/guardedby"
	"webdbsec/internal/analysis/leakcheck"
	"webdbsec/internal/analysis/taintflow"
	"webdbsec/internal/analysis/verdictcheck"
)

// Analyzers returns the full seclint suite, in the order findings are
// most useful to read: grammar first (a bad annotation invalidates the
// rest), then the invariants, then the interprocedural dataflow checks.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		annotcheck.Analyzer,
		guardedby.Analyzer,
		verdictcheck.Analyzer,
		ctxio.Analyzer,
		gatecheck.Analyzer,
		taintflow.Analyzer,
		leakcheck.Analyzer,
	}
}
