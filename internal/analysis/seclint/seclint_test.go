package seclint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// expected is the full analyzer roster. Adding an analyzer package
// without updating this list (and so thinking about whether it belongs
// in the default suite) is the failure mode this test exists for.
var expected = []string{
	"annotcheck",
	"guardedby",
	"verdictcheck",
	"ctxio",
	"gatecheck",
	"taintflow",
	"leakcheck",
}

// TestSuiteComplete: every analyzer package under internal/analysis is
// registered in Analyzers(), names are unique, and each entry is
// runnable.
func TestSuiteComplete(t *testing.T) {
	got := map[string]bool{}
	for _, a := range Analyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q is missing Name, Doc or Run", a.Name)
		}
		if got[a.Name] {
			t.Errorf("analyzer %q registered twice", a.Name)
		}
		got[a.Name] = true
	}
	for _, name := range expected {
		if !got[name] {
			t.Errorf("analyzer %q not in Analyzers()", name)
		}
	}
	if len(got) != len(expected) {
		t.Errorf("Analyzers() has %d entries, expected list has %d — update one of them", len(got), len(expected))
	}

	// The expected list itself must track the analyzer packages on disk:
	// a directory with an analyzer that never made the list is invisible
	// to every driver.
	entries, err := os.ReadDir("..")
	if err != nil {
		t.Fatal(err)
	}
	infra := map[string]bool{
		"analysistest": true, "seclint": true, "taint": true,
		"testdata": true, "unitchecker": true,
	}
	want := map[string]bool{}
	for _, n := range expected {
		want[n] = true
	}
	for _, e := range entries {
		if !e.IsDir() || infra[e.Name()] {
			continue
		}
		if !want[e.Name()] {
			t.Errorf("internal/analysis/%s exists but is not in the expected suite list", e.Name())
		}
	}
}

// TestDriversWired: cmd/seclint consumes Analyzers() and make check runs
// the lint target, so a finding anywhere in the suite gates the build.
func TestDriversWired(t *testing.T) {
	main, err := os.ReadFile(filepath.Join("..", "..", "..", "cmd", "seclint", "main.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(main), "seclint.Analyzers()") {
		t.Error("cmd/seclint does not run seclint.Analyzers()")
	}
	mk, err := os.ReadFile(filepath.Join("..", "..", "..", "Makefile"))
	if err != nil {
		t.Fatal(err)
	}
	var checkDeps string
	for _, line := range strings.Split(string(mk), "\n") {
		if strings.HasPrefix(line, "check:") {
			checkDeps = line
			break
		}
	}
	if !strings.Contains(checkDeps, "lint") {
		t.Errorf("make check does not depend on lint: %q", checkDeps)
	}
	if !strings.Contains(string(mk), "-vettool=") {
		t.Error("Makefile lint target does not run the vettool")
	}
}
