// Package guardedby checks mutex discipline for struct fields annotated
// `// seclint:guardedby <mutexField>`: inside every function, an access
// to such a field must be lexically preceded by `<base>.<mutexField>.Lock()`
// (or RLock) on the same receiver expression, with no intervening Unlock.
// Functions that run with the lock already held by their caller — or that
// own the value exclusively, such as constructors before publication —
// declare it with `// seclint:locked` on the function or on the access
// line.
//
// Fields annotated `// seclint:atomicptr <mutexField>` follow the MVCC
// publication discipline instead: the field is an atomic pointer whose
// Load is lock-free by design (that is the point of the version pointer),
// but Store/Swap/CompareAndSwap install a new version and must hold the
// named mutex — exactly one writer publishes at a time, and the sweep of
// superseded versions it serializes with. Any other use of the field
// (taking its address, copying it) is reported like a guardedby access.
//
// The check is lexical, not a dataflow analysis: it tracks Lock/Unlock
// calls in source order within one function body (deferred Unlocks run at
// return and therefore do not clear the held state), and it does not
// follow aliases of the receiver. That is exactly the discipline the
// wal/reldb/audit/decisioncache code actually uses — lock at the top,
// defer the unlock, or document "caller holds mu" — so anything the
// heuristic cannot prove is either a real bug or a place that deserves an
// explicit annotation.
package guardedby

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"webdbsec/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc: "fields annotated `seclint:guardedby mu` may only be accessed with the named mutex held " +
		"in the enclosing function, or under a `seclint:locked` escape hatch; fields annotated " +
		"`seclint:atomicptr mu` allow lock-free Load but require the mutex for Store/Swap/CompareAndSwap",
	Run: run,
}

// guard records the annotation on one field.
type guard struct {
	mu     string // sibling mutex field name
	strukt string // owning struct's type name, for messages
	atomic bool   // atomicptr discipline: Load free, mutation under mu
}

func run(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			// Test bodies poke internals single-threaded and run under
			// -race in make check; the lock invariant targets production
			// code paths.
			continue
		}
		lines := analysis.LineDirectives(pass.Fset, file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, locked := analysis.GroupDirective(fn.Doc, "locked"); locked {
				continue
			}
			checkScope(pass, guards, lines, fn.Body)
		}
	}
	return nil
}

// collectGuards finds every annotated field declared in this package.
func collectGuards(pass *analysis.Pass) map[types.Object]guard {
	guards := make(map[types.Object]guard)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, verb := range []string{"guardedby", "atomicptr"} {
					d, ok := analysis.GroupDirective(field.Doc, verb)
					if !ok {
						d, ok = analysis.GroupDirective(field.Comment, verb)
					}
					if !ok || d.Args == "" {
						continue
					}
					for _, name := range field.Names {
						if obj := pass.TypesInfo.Defs[name]; obj != nil {
							guards[obj] = guard{mu: d.Args, strukt: ts.Name.Name, atomic: verb == "atomicptr"}
						}
					}
				}
			}
			return true
		})
	}
	return guards
}

// lockEvent is one Lock/Unlock call on some "<base>.<mu>" expression.
type lockEvent struct {
	pos    token.Pos
	target string // rendering of the mutex expression, e.g. "w.mu"
	held   bool   // true for Lock/RLock, false for Unlock/RUnlock
}

// fieldAccess is one read or write of a guarded field.
type fieldAccess struct {
	pos   token.Pos
	base  string // rendering of the receiver expression, e.g. "w"
	field string
	g     guard
}

// checkScope analyzes one function body. Nested function literals are
// separate scopes: a closure does not inherit the textual lock state of
// its creator, because it may run on another goroutine.
func checkScope(pass *analysis.Pass, guards map[types.Object]guard, lines map[int][]analysis.Directive, body *ast.BlockStmt) {
	var events []lockEvent
	var accesses []fieldAccess
	deferred := make(map[*ast.CallExpr]bool)
	// handled marks inner selectors of atomicptr method calls already
	// classified via the outer selector (x.field.Load vs x.field.Store).
	handled := make(map[*ast.SelectorExpr]bool)
	var nested []*ast.FuncLit

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			nested = append(nested, n)
			return false
		case *ast.DeferStmt:
			deferred[n.Call] = true
		case *ast.CallExpr:
			if target, held, ok := lockOp(n); ok && !deferred[n] {
				events = append(events, lockEvent{pos: n.Pos(), target: target, held: held})
			}
		case *ast.SelectorExpr:
			// Method selector over an atomicptr field: classify by the
			// method. Load is the lock-free read path and always legal;
			// everything else publishes and needs the mutex.
			if inner, isSel := n.X.(*ast.SelectorExpr); isSel {
				if obj := pass.TypesInfo.Uses[inner.Sel]; obj != nil {
					if g, isGuarded := guards[obj]; isGuarded && g.atomic {
						handled[inner] = true
						if n.Sel.Name != "Load" {
							accesses = append(accesses, fieldAccess{
								pos:   inner.Sel.Pos(),
								base:  types.ExprString(inner.X),
								field: inner.Sel.Name,
								g:     g,
							})
						}
						return true
					}
				}
			}
			if handled[n] {
				return true
			}
			obj := pass.TypesInfo.Uses[n.Sel]
			if obj == nil {
				return true
			}
			g, ok := guards[obj]
			if !ok {
				return true
			}
			accesses = append(accesses, fieldAccess{
				pos:   n.Sel.Pos(),
				base:  types.ExprString(n.X),
				field: n.Sel.Name,
				g:     g,
			})
		}
		return true
	})

	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	for _, acc := range accesses {
		if analysis.HasLineDirective(lines, pass.Fset, acc.pos, "locked") {
			continue
		}
		want := acc.base + "." + acc.g.mu
		held := false
		for _, ev := range events {
			if ev.pos >= acc.pos {
				break
			}
			if ev.target == want {
				held = ev.held
			}
		}
		if !held {
			if acc.g.atomic {
				pass.Reportf(acc.pos, "%s.%s (%s.%s) is an atomic pointer published under %s: Load is lock-free, but installing a version requires the mutex; acquire it, or annotate // seclint:locked if the caller holds it",
					acc.base, acc.field, acc.g.strukt, acc.field, want)
				continue
			}
			pass.Reportf(acc.pos, "%s.%s (%s.%s) is guarded by %s but the mutex is not held here; acquire it, or annotate // seclint:locked if the caller holds it",
				acc.base, acc.field, acc.g.strukt, acc.field, want)
		}
	}

	for _, lit := range nested {
		checkScope(pass, guards, lines, lit.Body)
	}
}

// lockOp recognizes `<expr>.Lock()`, `RLock`, `Unlock`, `RUnlock` calls
// and returns the rendered mutex expression.
func lockOp(call *ast.CallExpr) (target string, held, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return types.ExprString(sel.X), true, true
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), false, true
	}
	return "", false, false
}
