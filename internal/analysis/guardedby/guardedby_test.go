package guardedby

import (
	"path/filepath"
	"testing"

	"webdbsec/internal/analysis/analysistest"
)

func TestGuardedBy(t *testing.T) {
	analysistest.Run(t, Analyzer, filepath.Join("..", "testdata", "src", "guardedby"))
}
