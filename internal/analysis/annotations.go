package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// DirectivePrefix introduces a seclint annotation inside a comment. The
// grammar is one directive per comment line:
//
//	// seclint:guardedby <mutexField>     on a struct field
//	// seclint:atomicptr <mutexField>     on an atomic.Pointer[T] struct field
//	// seclint:locked [note]              on a func or a statement line
//	// seclint:exempt <reason>            on a func or a statement line
//	// seclint:gate [note]                on an interface type
//
// internal/analysis/README.md documents the semantics; the annotcheck
// analyzer machine-checks placement and arguments so a typo cannot
// silently disable a check.
const DirectivePrefix = "seclint:"

// Directive is one parsed seclint annotation.
type Directive struct {
	Pos  token.Pos // position of the comment carrying the directive
	Verb string    // "guardedby", "locked", "exempt", "gate", ...
	Args string    // remainder of the line, space-trimmed (may be empty)
}

// ParseDirective extracts a directive from a single comment line, if one
// is present. Both leading-line and trailing comments qualify; the
// directive must be the first token of the comment.
func ParseDirective(c *ast.Comment) (Directive, bool) {
	text := c.Text
	switch {
	case strings.HasPrefix(text, "//"):
		text = text[2:]
	case strings.HasPrefix(text, "/*"):
		text = strings.TrimSuffix(text[2:], "*/")
	}
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, DirectivePrefix) {
		return Directive{}, false
	}
	rest := text[len(DirectivePrefix):]
	verb, args, _ := strings.Cut(rest, " ")
	return Directive{Pos: c.Pos(), Verb: verb, Args: strings.TrimSpace(args)}, true
}

// GroupDirective returns the first directive with the given verb in a
// comment group (a func doc, field doc or trailing field comment).
func GroupDirective(g *ast.CommentGroup, verb string) (Directive, bool) {
	if g == nil {
		return Directive{}, false
	}
	for _, c := range g.List {
		if d, ok := ParseDirective(c); ok && d.Verb == verb {
			return d, true
		}
	}
	return Directive{}, false
}

// LineDirectives indexes every directive in file by the line its comment
// starts on, letting analyzers honour statement-level annotations ("this
// line is exempt", "the lock is held here") placed either on the flagged
// line or on the line directly above it.
func LineDirectives(fset *token.FileSet, file *ast.File) map[int][]Directive {
	m := make(map[int][]Directive)
	for _, g := range file.Comments {
		for _, c := range g.List {
			if d, ok := ParseDirective(c); ok {
				line := fset.Position(c.Pos()).Line
				m[line] = append(m[line], d)
			}
		}
	}
	return m
}

// HasLineDirective reports whether a directive with the given verb is
// attached to pos: on the same source line or on the line directly above.
func HasLineDirective(lines map[int][]Directive, fset *token.FileSet, pos token.Pos, verb string) bool {
	line := fset.Position(pos).Line
	for _, d := range lines[line] {
		if d.Verb == verb {
			return true
		}
	}
	for _, d := range lines[line-1] {
		if d.Verb == verb {
			return true
		}
	}
	return false
}
