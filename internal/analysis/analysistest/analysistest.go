// Package analysistest runs one analyzer over a testdata package and
// compares its diagnostics against `// want "regexp"` expectations in the
// sources, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// Testdata packages live under internal/analysis/testdata/src/<name>/ and
// are plain Go packages (the go tool ignores testdata directories, so
// they are never built by ./...). They may import real module packages —
// e.g. the verdictcheck cases call the actual webdbsec/internal/wal API —
// which the harness resolves by asking `go list -export` for compiled
// export data, exactly as the vettool does in production.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"webdbsec/internal/analysis"
)

// Run loads the package rooted at dir, applies the analyzer, and reports
// every mismatch between emitted diagnostics and want expectations as a
// test error.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	imports := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil {
				imports[path] = true
			}
		}
	}
	if len(files) == 0 {
		t.Fatalf("analysistest: no Go files in %s", dir)
	}

	exports := exportData(t, imports)
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	var firstErr error
	tconf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	info := analysis.NewTypesInfo()
	// The package path is the testdata directory's base name, so
	// analyzers that scope themselves by package name (ctxio, gatecheck)
	// see testdata/src/secchan as package path "secchan".
	pkg, err := tconf.Check(filepath.Base(dir), fset, files, info)
	if firstErr != nil {
		t.Fatalf("analysistest: typecheck %s: %v", dir, firstErr)
	}
	if err != nil {
		t.Fatalf("analysistest: typecheck %s: %v", dir, err)
	}

	diags, err := analysis.RunAll([]*analysis.Analyzer{a}, fset, files, pkg, info)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				patterns, ok := parseWant(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("analysistest: %s: bad want pattern %q: %v", pos, p, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, re)
		}
	}
}

// parseWant extracts the quoted regexps from a `// want "..." "..."`
// comment. Both interpreted and raw quotes are accepted.
func parseWant(text string) ([]string, bool) {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, "want ") {
		return nil, false
	}
	rest := strings.TrimSpace(text[len("want "):])
	var patterns []string
	for rest != "" {
		quoted, err := strconv.QuotedPrefix(rest)
		if err != nil {
			return nil, false
		}
		p, err := strconv.Unquote(quoted)
		if err != nil {
			return nil, false
		}
		patterns = append(patterns, p)
		rest = strings.TrimSpace(rest[len(quoted):])
	}
	return patterns, len(patterns) > 0
}

var (
	exportMu    sync.Mutex
	exportCache = map[string]string{} // import path -> export data file
	exportDone  = map[string]bool{}   // import path already resolved (incl. deps)
)

// exportData resolves compiled export data for the given import paths
// (and their transitive dependencies) via `go list -export -deps`. The
// result is cached per process: every analyzer test shares one build.
func exportData(t *testing.T, imports map[string]bool) map[string]string {
	t.Helper()
	exportMu.Lock()
	defer exportMu.Unlock()
	var missing []string
	for path := range imports {
		if path == "unsafe" { // handled by the importer itself
			continue
		}
		if !exportDone[path] {
			missing = append(missing, path)
		}
	}
	if len(missing) > 0 {
		cmd := exec.Command("go", append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, missing...)...)
		var out, errb bytes.Buffer
		cmd.Stdout, cmd.Stderr = &out, &errb
		if err := cmd.Run(); err != nil {
			t.Fatalf("analysistest: go list -export: %v\n%s", err, errb.String())
		}
		dec := json.NewDecoder(&out)
		for {
			var p struct {
				ImportPath string
				Export     string
			}
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				t.Fatalf("analysistest: decoding go list output: %v", err)
			}
			exportDone[p.ImportPath] = true
			if p.Export != "" {
				exportCache[p.ImportPath] = p.Export
			}
		}
		for _, path := range missing {
			exportDone[path] = true
		}
	}
	return exportCache
}
