// Package analysistest runs one analyzer over a testdata package and
// compares its diagnostics against `// want "regexp"` expectations in the
// sources, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// Testdata packages live under internal/analysis/testdata/src/<name>/ and
// are plain Go packages (the go tool ignores testdata directories, so
// they are never built by ./...). They may import real module packages —
// e.g. the verdictcheck cases call the actual webdbsec/internal/wal API —
// which the harness resolves by asking `go list -export` for compiled
// export data, exactly as the vettool does in production.
//
// A testdata package may also import a *sibling* testdata package by its
// bare directory name (e.g. the taintflow cases import "taintsrc"). The
// harness typechecks the sibling from source first, runs the analyzer's
// fact pass over it, and round-trips the exported facts through their
// JSON wire form before handing them to the package under test — so a
// golden test exercises the same cross-package summary flow the
// unitchecker ships through go vet's vetx files.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"webdbsec/internal/analysis"
)

// Run loads the package rooted at dir, applies the analyzer, and reports
// every mismatch between emitted diagnostics and want expectations as a
// test error.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	pkg, fset, files, info, imported := load(t, a, dir, map[string]*types.Package{})
	diags, _, err := analysis.RunAll([]*analysis.Analyzer{a}, fset, files, pkg, info, imported)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	check(t, fset, files, diags)
}

// load parses and typechecks the testdata package at dir, resolving
// module imports through compiled export data and sibling testdata
// imports from source (recursively), and returns the merged facts the
// analyzer's fact pass exported for those siblings.
func load(t *testing.T, a *analysis.Analyzer, dir string, siblings map[string]*types.Package) (*types.Package, *token.FileSet, []*ast.File, *types.Info, analysis.PackageFacts) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	imports := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil {
				imports[path] = true
			}
		}
	}
	if len(files) == 0 {
		t.Fatalf("analysistest: no Go files in %s", dir)
	}

	// Sibling testdata imports: bare names matching a directory next to
	// this one. Load each from source first and collect its facts so the
	// package under test sees cross-package summaries.
	imported := analysis.PackageFacts{}
	moduleImports := map[string]bool{}
	for path := range imports {
		if strings.Contains(path, "/") || strings.Contains(path, ".") {
			moduleImports[path] = true
			continue
		}
		sibDir := filepath.Join(filepath.Dir(dir), path)
		if st, err := os.Stat(sibDir); err != nil || !st.IsDir() {
			moduleImports[path] = true
			continue
		}
		if _, done := siblings[path]; !done {
			sibPkg, sibFset, sibFiles, sibInfo, sibImported := load(t, a, sibDir, siblings)
			siblings[path] = sibPkg
			facts, err := analysis.RunFactsOnly([]*analysis.Analyzer{a}, sibFset, sibFiles, sibPkg, sibInfo, sibImported)
			if err != nil {
				t.Fatalf("analysistest: fact pass over %s: %v", sibDir, err)
			}
			// Round-trip through the JSON wire form — golden tests must
			// exercise what the unitchecker actually ships.
			wire, err := facts.Encode()
			if err != nil {
				t.Fatalf("analysistest: encoding facts of %s: %v", sibDir, err)
			}
			decoded, err := analysis.DecodeFacts(wire)
			if err != nil {
				t.Fatalf("analysistest: decoding facts of %s: %v", sibDir, err)
			}
			imported.Merge(decoded)
		}
	}

	exports := exportData(t, moduleImports)
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	var firstErr error
	tconf := types.Config{
		Importer: &siblingImporter{
			siblings: siblings,
			fallback: importer.ForCompiler(fset, "gc", lookup),
		},
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	info := analysis.NewTypesInfo()
	// The package path is the testdata directory's base name, so
	// analyzers that scope themselves by package name (ctxio, gatecheck)
	// see testdata/src/secchan as package path "secchan".
	pkg, err := tconf.Check(filepath.Base(dir), fset, files, info)
	if firstErr != nil {
		t.Fatalf("analysistest: typecheck %s: %v", dir, firstErr)
	}
	if err != nil {
		t.Fatalf("analysistest: typecheck %s: %v", dir, err)
	}
	return pkg, fset, files, info, imported
}

// siblingImporter resolves bare sibling testdata packages from the
// already-typechecked set and everything else through export data.
type siblingImporter struct {
	siblings map[string]*types.Package
	fallback types.Importer
}

func (si *siblingImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := si.siblings[path]; ok {
		return pkg, nil
	}
	return si.fallback.Import(path)
}

// check compares diagnostics against the `// want` expectations.
func check(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				patterns, ok := parseWant(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("analysistest: %s: bad want pattern %q: %v", pos, p, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, re)
		}
	}
}

// parseWant extracts the quoted regexps from a `// want "..." "..."`
// comment. Both interpreted and raw quotes are accepted.
func parseWant(text string) ([]string, bool) {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, "want ") {
		return nil, false
	}
	rest := strings.TrimSpace(text[len("want "):])
	var patterns []string
	for rest != "" {
		quoted, err := strconv.QuotedPrefix(rest)
		if err != nil {
			return nil, false
		}
		p, err := strconv.Unquote(quoted)
		if err != nil {
			return nil, false
		}
		patterns = append(patterns, p)
		rest = strings.TrimSpace(rest[len(quoted):])
	}
	return patterns, len(patterns) > 0
}

var (
	exportMu    sync.Mutex
	exportCache = map[string]string{} // import path -> export data file
	exportDone  = map[string]bool{}   // import path already resolved (incl. deps)
)

// exportData resolves compiled export data for the given import paths
// (and their transitive dependencies) via `go list -export -deps`. The
// result is cached per process: every analyzer test shares one build.
func exportData(t *testing.T, imports map[string]bool) map[string]string {
	t.Helper()
	exportMu.Lock()
	defer exportMu.Unlock()
	var missing []string
	for path := range imports {
		if path == "unsafe" { // handled by the importer itself
			continue
		}
		if !exportDone[path] {
			missing = append(missing, path)
		}
	}
	if len(missing) > 0 {
		cmd := exec.Command("go", append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, missing...)...)
		var out, errb bytes.Buffer
		cmd.Stdout, cmd.Stderr = &out, &errb
		if err := cmd.Run(); err != nil {
			t.Fatalf("analysistest: go list -export: %v\n%s", err, errb.String())
		}
		dec := json.NewDecoder(&out)
		for {
			var p struct {
				ImportPath string
				Export     string
			}
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				t.Fatalf("analysistest: decoding go list output: %v", err)
			}
			exportDone[p.ImportPath] = true
			if p.Export != "" {
				exportCache[p.ImportPath] = p.Export
			}
		}
		for _, path := range missing {
			exportDone[path] = true
		}
	}
	return exportCache
}
