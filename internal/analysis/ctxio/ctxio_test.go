package ctxio

import (
	"path/filepath"
	"testing"

	"webdbsec/internal/analysis/analysistest"
)

// TestCtxIO runs over a testdata package named secchan: the analyzer
// scopes itself to the service-layer packages by the path's last element,
// so the fixture must land in that set.
func TestCtxIO(t *testing.T) {
	analysistest.Run(t, Analyzer, filepath.Join("..", "testdata", "src", "secchan"))
}
