// Package ctxio keeps PR 1's deadline discipline from regressing: in the
// service-layer packages (federation, secchan, wsa, uddi) every exported
// function that performs network or disk I/O — directly or through
// same-package helpers — must accept a context.Context (or an
// *http.Request, whose Context it can forward) so callers can bound it.
// A function that has a context but manufactures context.Background() or
// context.TODO() instead of forwarding it is equally a finding: the
// caller's deadline silently stops applying below that point.
//
// Conn-level code whose cancellation mechanism is deliberately the
// net.Conn deadline (secchan's record protocol) opts out per function
// with `// seclint:exempt <reason>` — the point of the analyzer is that
// such decisions are written down where the next editor will see them.
package ctxio

import (
	"go/ast"
	"go/token"
	"go/types"

	"webdbsec/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxio",
	Doc: "exported functions in federation, secchan, wsa and uddi that perform network or disk I/O " +
		"must accept and forward a context.Context",
	Run: run,
}

// targetPkgs are the service-layer packages under the deadline
// discipline, matched by the package path's last element so the
// analysistest packages (testdata/src/secchan etc.) are covered too.
var targetPkgs = map[string]bool{
	"federation": true,
	"secchan":    true,
	"wsa":        true,
	"uddi":       true,
}

// ioFuncs lists standard-library calls that are themselves network or
// disk I/O, keyed by package path and function/method name. Local
// wrappers are covered by propagation over the package call graph.
var ioFuncs = map[string]map[string]bool{
	"net": {
		"Dial": true, "DialTimeout": true, "DialTCP": true, "DialUDP": true,
		"Listen": true, "ListenTCP": true, "ListenPacket": true,
		"Read": true, "Write": true, "Close": true, "Accept": true,
	},
	"net/http": {
		"Get": true, "Post": true, "Head": true, "PostForm": true,
		"Do": true, "ListenAndServe": true, "ListenAndServeTLS": true, "Serve": true,
	},
	"crypto/tls": {
		"Dial": true, "DialWithDialer": true, "Handshake": true,
		"Read": true, "Write": true, "Close": true,
	},
	// io helpers are I/O when fed a conn or file; treating every use as
	// I/O errs on the loud side, which is what a regression guard wants.
	"io": {
		"Copy": true, "CopyN": true, "CopyBuffer": true,
		"ReadAll": true, "ReadFull": true, "ReadAtLeast": true,
		"WriteString": true,
	},
	"os": {
		"Open": true, "OpenFile": true, "Create": true,
		"ReadFile": true, "WriteFile": true, "Rename": true,
		"Remove": true, "RemoveAll": true, "Mkdir": true, "MkdirAll": true,
		"ReadDir": true, "Truncate": true,
		// *os.File methods
		"Read": true, "ReadAt": true, "Write": true, "WriteAt": true,
		"WriteString": true, "Sync": true,
	},
}

func run(pass *analysis.Pass) error {
	if !targetPkgs[lastElem(pass.Pkg.Path())] {
		return nil
	}
	funcs := analysis.LocalFuncs(pass)

	// Seed: functions with a direct standard-library I/O call.
	seed := make(map[*types.Func]string)
	for obj, node := range funcs {
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			if _, ok := seed[obj]; ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := analysis.Callee(pass.TypesInfo, call); callee != nil && isIO(callee) {
				seed[obj] = callee.FullName()
			}
			return true
		})
	}
	doesIO := analysis.Propagate(funcs, seed)

	for obj, node := range funcs {
		fn := node.Decl
		witness, io := doesIO[obj]
		if io && exportedAPI(fn) {
			if !hasCtxParam(obj) && !hasRequestParam(obj) {
				if _, exempt := analysis.GroupDirective(fn.Doc, "exempt"); !exempt {
					pass.Reportf(fn.Name.Pos(), "exported %s performs I/O (reaches %s) but has no context.Context parameter; accept a ctx, or annotate the func // seclint:exempt <reason>",
						fn.Name.Name, witness)
				}
			}
		}
		checkForwarding(pass, fn, obj)
	}
	return nil
}

// checkForwarding flags context.Background()/TODO() inside any function
// that already has a context to forward.
func checkForwarding(pass *analysis.Pass, fn *ast.FuncDecl, obj *types.Func) {
	if !hasCtxParam(obj) && !hasRequestParam(obj) {
		return
	}
	file := enclosingFile(pass, fn.Pos())
	var lines map[int][]analysis.Directive
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := analysis.Callee(pass.TypesInfo, call)
		if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "context" {
			return true
		}
		if name := callee.Name(); name == "Background" || name == "TODO" {
			if lines == nil && file != nil {
				lines = analysis.LineDirectives(pass.Fset, file)
			}
			if analysis.HasLineDirective(lines, pass.Fset, call.Pos(), "exempt") {
				return true
			}
			pass.Reportf(call.Pos(), "%s has a context to forward but calls context.%s(); the caller's deadline stops applying here (// seclint:exempt <reason> to waive)",
				fn.Name.Name, callee.Name())
		}
		return true
	})
}

func enclosingFile(pass *analysis.Pass, pos token.Pos) *ast.File {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// exportedAPI reports whether fn is part of the package's exported
// surface: exported name, and for methods an exported receiver type.
func exportedAPI(fn *ast.FuncDecl) bool {
	if !fn.Name.IsExported() {
		return false
	}
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return true
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.IsExported()
}

func hasCtxParam(obj *types.Func) bool {
	return hasParamNamed(obj, "context", "Context", false)
}

func hasRequestParam(obj *types.Func) bool {
	return hasParamNamed(obj, "net/http", "Request", true)
}

func hasParamNamed(obj *types.Func, pkgPath, typeName string, pointer bool) bool {
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		t := params.At(i).Type()
		if pointer {
			p, ok := t.(*types.Pointer)
			if !ok {
				continue
			}
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			continue
		}
		o := named.Obj()
		if o.Name() == typeName && o.Pkg() != nil && o.Pkg().Path() == pkgPath {
			return true
		}
	}
	return false
}

func isIO(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	set, ok := ioFuncs[fn.Pkg().Path()]
	return ok && set[fn.Name()]
}

func lastElem(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
