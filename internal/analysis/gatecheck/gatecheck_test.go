package gatecheck

import (
	"path/filepath"
	"testing"

	"webdbsec/internal/analysis/analysistest"
)

// TestGateCheck runs over a testdata package named reldb: the analyzer
// scopes itself to the data-path packages by the path's last element, so
// the fixture must land in that set.
func TestGateCheck(t *testing.T) {
	analysistest.Run(t, Analyzer, filepath.Join("..", "testdata", "src", "reldb"))
}

// TestGateCheckMintSide runs over a testdata package named authtoken:
// Mint entry points need a real policy decision, and verification calls
// do not count as gates inside the token package itself.
func TestGateCheckMintSide(t *testing.T) {
	analysistest.Run(t, Analyzer, filepath.Join("..", "testdata", "src", "authtoken"))
}
