package gatecheck

import (
	"path/filepath"
	"testing"

	"webdbsec/internal/analysis/analysistest"
)

// TestGateCheck runs over a testdata package named reldb: the analyzer
// scopes itself to the data-path packages by the path's last element, so
// the fixture must land in that set.
func TestGateCheck(t *testing.T) {
	analysistest.Run(t, Analyzer, filepath.Join("..", "testdata", "src", "reldb"))
}
