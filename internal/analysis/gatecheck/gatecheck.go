// Package gatecheck is the paper's §3.1 rule as a lint: every DBMS
// function must honour the access-control policies. In the data-path
// packages (reldb, xmldoc, xquery), an exported read/write entry point —
// recognized by its verb prefix (Exec, Get, Query, Insert, Update,
// Delete, …) — must be able to reach an access-control check: a call
// into accessctl, policy or sysr (the relational grant catalog), or a
// call through an interface annotated `// seclint:gate` (e.g.
// xquery.Viewer, behind which accessctl.Engine sits). Same-package
// helpers count: the gate may be several frames down, but it must exist.
//
// Storage-substrate APIs that sit deliberately *below* the gate — the
// raw reldb.Database used inside SecureDB, the xmldoc store beneath
// accessctl — carry `// seclint:exempt <reason>` on the function,
// turning an architectural decision ("enforcement lives one layer up")
// into a visible, grep-able annotation instead of silent convention.
//
// The stateless-token fast path extends the rule in both directions.
// Inside authtoken (a target package), every Mint entry point must reach
// a policy decision — the seclint:gate MintGate interface or a gate
// package — because a token is a portable attestation that the full
// evaluation ran; an ungated mint would forge that attestation. In the
// *other* target packages, a call into authtoken's Verify/Authenticate/
// Authorize surface counts as a gate: verification is only as strong as
// the mint behind it, and the mint side is exactly what this analyzer
// pins down. Within authtoken itself verification never counts — the
// package that signs tokens cannot bootstrap its own gate off checking
// them.
//
// The check is an existence check over the package-local call graph, not
// a per-path proof: it catches the decay mode where a new entry point
// ships with no gate at all, which is exactly how enforcement that
// "relies on programmer discipline" erodes (Guarnieri et al.).
package gatecheck

import (
	"go/ast"
	"go/types"
	"strings"

	"webdbsec/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "gatecheck",
	Doc: "exported read/write entry points in reldb, xmldoc and xquery must reach an accessctl/policy/sysr " +
		"check (or a seclint:gate interface) on some path, or carry // seclint:exempt <reason>",
	Run: run,
}

// targetPkgs are the data-path packages, matched by last path element so
// testdata packages are covered.
var targetPkgs = map[string]bool{
	"reldb":     true,
	"xmldoc":    true,
	"xquery":    true,
	"authtoken": true,
}

// gatePkgs are packages a call into which counts as reaching the
// access-control machinery.
var gatePkgs = map[string]bool{
	"webdbsec/internal/accessctl": true,
	"webdbsec/internal/policy":    true,
	"webdbsec/internal/sysr":      true,
}

// entryVerbs are the name prefixes that make an exported function a
// read/write entry point.
var entryVerbs = []string{
	"Get", "Query", "Select", "Insert", "Update", "Delete", "Put",
	"Exec", "Read", "Write", "Load", "Fetch", "Scan", "Eval",
	"Save", "Add", "Remove", "Find", "Append", "Mint",
}

// tokenVerifyPkg is the stateless-token package: calls into its
// verification surface count as gates in the other target packages (the
// mint side is policy-gated by this same analyzer), never within
// authtoken itself.
const tokenVerifyPkg = "webdbsec/internal/authtoken"

// tokenVerifyVerbs are the name prefixes of authtoken's verification
// surface. Mint-side names are deliberately absent: calling Mint is
// requesting an attestation, not checking one.
var tokenVerifyVerbs = []string{"Verify", "Authenticate", "Authorize"}

func run(pass *analysis.Pass) error {
	if !targetPkgs[lastElem(pass.Pkg.Path())] {
		return nil
	}
	funcs := analysis.LocalFuncs(pass)
	gateMethods := collectGateInterfaces(pass)
	inAuthtoken := lastElem(pass.Pkg.Path()) == "authtoken"

	// Seed: functions containing a direct gate call.
	seed := make(map[*types.Func]string)
	for obj, node := range funcs {
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			if _, ok := seed[obj]; ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := analysis.Callee(pass.TypesInfo, call)
			if callee == nil {
				return true
			}
			if isGateCall(callee, gateMethods, inAuthtoken) {
				seed[obj] = callee.FullName()
			}
			return true
		})
	}
	gated := analysis.Propagate(funcs, seed)

	for obj, node := range funcs {
		fn := node.Decl
		if !isEntryPoint(fn) {
			continue
		}
		if _, ok := gated[obj]; ok {
			continue
		}
		if _, exempt := analysis.GroupDirective(fn.Doc, "exempt"); exempt {
			continue
		}
		pass.Reportf(fn.Name.Pos(), "exported entry point %s reaches no accessctl/policy/sysr check on any path (paper §3.1); route it through the gate or annotate the func // seclint:exempt <reason>",
			fn.Name.Name)
	}
	return nil
}

// collectGateInterfaces returns the method objects of every interface
// declared in this package with a `seclint:gate` annotation; calls
// through them count as gates (the concrete implementation, e.g.
// accessctl.Engine behind xquery.Viewer, lives in a gate package).
func collectGateInterfaces(pass *analysis.Pass) map[*types.Func]bool {
	methods := make(map[*types.Func]bool)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				_, hasDoc := analysis.GroupDirective(ts.Doc, "gate")
				if !hasDoc {
					_, hasDoc = analysis.GroupDirective(gd.Doc, "gate")
				}
				if !hasDoc {
					continue
				}
				obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				iface, ok := obj.Type().Underlying().(*types.Interface)
				if !ok {
					continue
				}
				for i := 0; i < iface.NumMethods(); i++ {
					methods[iface.Method(i)] = true
				}
			}
		}
	}
	return methods
}

func isGateCall(callee *types.Func, gateMethods map[*types.Func]bool, inAuthtoken bool) bool {
	if gateMethods[callee] {
		return true
	}
	if callee.Pkg() == nil {
		return false
	}
	if gatePkgs[callee.Pkg().Path()] {
		return true
	}
	if !inAuthtoken && callee.Pkg().Path() == tokenVerifyPkg {
		for _, verb := range tokenVerifyVerbs {
			if strings.HasPrefix(callee.Name(), verb) {
				return true
			}
		}
	}
	return false
}

// isEntryPoint reports whether fn is an exported read/write entry point:
// exported name with a recognized verb prefix, and an exported receiver
// type if it is a method.
func isEntryPoint(fn *ast.FuncDecl) bool {
	if !fn.Name.IsExported() {
		return false
	}
	if fn.Recv != nil && len(fn.Recv.List) > 0 {
		t := fn.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if idx, ok := t.(*ast.IndexExpr); ok {
			t = idx.X
		}
		if id, ok := t.(*ast.Ident); !ok || !id.IsExported() {
			return false
		}
	}
	name := fn.Name.Name
	for _, verb := range entryVerbs {
		if strings.HasPrefix(name, verb) {
			// Require the verb to end the name or be followed by an
			// uppercase letter, so "Addr" or "Execute..." style names
			// don't false-positive on shorter verbs.
			rest := name[len(verb):]
			if rest == "" || (rest[0] >= 'A' && rest[0] <= 'Z') {
				return true
			}
		}
	}
	return false
}

func lastElem(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
