// Package analysis is a deliberately small, dependency-free core in the
// shape of golang.org/x/tools/go/analysis: an Analyzer inspects one
// type-checked package and reports diagnostics through its Pass. The repo
// builds on the standard library only, so rather than importing x/tools
// this package reimplements the two pieces seclint needs — the
// Analyzer/Pass contract (here) and the `go vet -vettool` unit-checker
// protocol (internal/analysis/unitchecker). The API mirrors x/tools
// closely enough that migrating the analyzers onto the real framework is
// a mechanical import swap.
//
// The analyzers themselves live in subpackages (guardedby, verdictcheck,
// ctxio, gatecheck, annotcheck) and encode the repo-specific security and
// durability invariants documented in internal/analysis/README.md.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Unlike x/tools there is no
// Requires/ResultOf plumbing; cross-package state travels as facts (see
// facts.go): an analyzer that sets ExportsFacts is additionally run over
// dependency packages in fact-only mode so its summaries propagate
// bottom-up through the import graph.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and test output. It
	// must be a valid identifier.
	Name string
	// Doc is the one-paragraph description printed by `seclint help`.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
	// ExportsFacts marks the analyzer as a fact producer: the driver
	// runs it on dependency (VetxOnly) packages too, with diagnostics
	// suppressed, so its ExportFact calls reach importing packages.
	ExportsFacts bool
}

// Pass carries one type-checked package through an Analyzer.Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// ImportedFacts holds the merged facts of every dependency,
	// analyzer name → object key → JSON. Nil when the driver has none.
	ImportedFacts PackageFacts
	// Report delivers one diagnostic. Set by the driver.
	Report func(Diagnostic)
	// exportFact records one fact for this package; set by the driver.
	exportFact func(analyzer, key string, data []byte)
}

// Diagnostic is one finding. Analyzer is filled in by the driver
// (RunAll) so output can say which check fired.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a _test.go file. Several
// analyzers scope their invariant to production code: test packages are
// exercised under -race by `make check`, and test-local helpers are not
// part of the API surface the invariants protect.
func (p *Pass) InTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	if f == nil {
		return false
	}
	name := f.Name()
	return len(name) >= 8 && name[len(name)-8:] == "_test.go"
}
