// Package annotcheck machine-checks the seclint annotation grammar
// itself. Annotations are load-bearing — a `seclint:guardedby` that is
// misspelled or floats on the wrong line silently disables guardedby's
// enforcement — so malformed directives are findings, not no-ops:
//
//   - unknown verbs after `seclint:` are rejected (typo protection);
//   - `seclint:guardedby <mu>` must sit on a struct field and name a
//     sibling field of type sync.Mutex / sync.RWMutex (or pointer);
//   - `seclint:atomicptr <mu>` must sit on a struct field of type
//     atomic.Pointer[T] and name a sibling mutex field (the writer lock
//     of the version-pointer discipline);
//   - `seclint:exempt` must carry a non-empty reason;
//   - `seclint:gate` must sit on an interface type declaration;
//   - `seclint:taint-exempt` must carry a non-empty reason;
//   - `seclint:source`, `seclint:sink` and `seclint:sanitizer` must sit
//     on a function declaration (sink/secret additionally on a struct
//     field for `secret`);
//   - a `seclint:sanitizer` function must not return one of its
//     parameters unchanged — a "sanitizer" that hands back its input is
//     a hole in the taint lattice, not a validator.
package annotcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"webdbsec/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "annotcheck",
	Doc: "seclint annotations must be well-formed: known verb, guardedby/atomicptr on a struct field naming a sibling mutex, " +
		"exempt with a reason, gate on an interface",
	Run: run,
}

var knownVerbs = map[string]bool{
	"guardedby":    true,
	"atomicptr":    true,
	"locked":       true,
	"exempt":       true,
	"gate":         true,
	"source":       true,
	"sink":         true,
	"sanitizer":    true,
	"secret":       true,
	"taint-exempt": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		// Positions of directives that are legally placed, collected
		// from the syntax they annotate.
		placedGuardedby := make(map[token.Pos]bool)
		placedGate := make(map[token.Pos]bool)
		placedTaint := make(map[token.Pos]bool) // source/sink/sanitizer/secret

		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				for _, verb := range []string{"source", "sink", "sanitizer", "secret"} {
					if d, ok := analysis.GroupDirective(n.Doc, verb); ok {
						placedTaint[d.Pos] = true
					}
				}
				if d, ok := analysis.GroupDirective(n.Doc, "sanitizer"); ok {
					checkSanitizerBody(pass, n, d)
				}
			case *ast.TypeSpec:
				if _, ok := n.Type.(*ast.InterfaceType); ok {
					if d, ok := analysis.GroupDirective(n.Doc, "gate"); ok {
						placedGate[d.Pos] = true
					}
				}
				if st, ok := n.Type.(*ast.StructType); ok {
					checkStruct(pass, st, placedGuardedby)
					// `seclint:secret` may annotate a struct field.
					for _, field := range st.Fields.List {
						for _, grp := range []*ast.CommentGroup{field.Doc, field.Comment} {
							if d, ok := analysis.GroupDirective(grp, "secret"); ok {
								placedTaint[d.Pos] = true
							}
						}
					}
				}
			case *ast.GenDecl:
				// `seclint:gate` may sit on the GenDecl doc when the
				// type block has a single spec.
				if d, ok := analysis.GroupDirective(n.Doc, "gate"); ok && len(n.Specs) == 1 {
					if ts, ok := n.Specs[0].(*ast.TypeSpec); ok {
						if _, ok := ts.Type.(*ast.InterfaceType); ok {
							placedGate[d.Pos] = true
						}
					}
				}
			}
			return true
		})

		for _, g := range file.Comments {
			for _, c := range g.List {
				d, ok := analysis.ParseDirective(c)
				if !ok {
					continue
				}
				switch {
				case !knownVerbs[d.Verb]:
					pass.Reportf(d.Pos, "unknown seclint directive %q (want guardedby, atomicptr, locked, exempt, gate, source, sink, sanitizer, secret or taint-exempt)", d.Verb)
				case d.Verb == "exempt" && d.Args == "":
					pass.Reportf(d.Pos, "seclint:exempt requires a reason: // seclint:exempt <why this is outside the invariant>")
				case d.Verb == "guardedby" && !placedGuardedby[d.Pos]:
					pass.Reportf(d.Pos, "seclint:guardedby must annotate a struct field and name a sibling sync.Mutex/RWMutex field")
				case d.Verb == "atomicptr" && !placedGuardedby[d.Pos]:
					pass.Reportf(d.Pos, "seclint:atomicptr must annotate a struct field and name a sibling sync.Mutex/RWMutex field")
				case d.Verb == "gate" && !placedGate[d.Pos]:
					pass.Reportf(d.Pos, "seclint:gate must annotate an interface type declaration")
				case d.Verb == "taint-exempt" && d.Args == "":
					pass.Reportf(d.Pos, "seclint:taint-exempt requires a reason: // seclint:taint-exempt <why this flow is safe>")
				case (d.Verb == "source" || d.Verb == "sink" || d.Verb == "sanitizer") && !placedTaint[d.Pos]:
					pass.Reportf(d.Pos, "seclint:%s must annotate a function declaration", d.Verb)
				case d.Verb == "secret" && !placedTaint[d.Pos]:
					pass.Reportf(d.Pos, "seclint:secret must annotate a function declaration or a struct field")
				}
			}
		}
	}
	return nil
}

// checkSanitizerBody rejects the degenerate sanitizer: one that returns
// an input parameter unchanged (directly or through a bare string/[]byte
// conversion). Such a function launders taint without validating
// anything, so the annotation would punch a silent hole in taintflow and
// leakcheck.
func checkSanitizerBody(pass *analysis.Pass, fn *ast.FuncDecl, d analysis.Directive) {
	if fn.Body == nil {
		return
	}
	params := make(map[types.Object]bool)
	if fn.Type.Params != nil {
		for _, f := range fn.Type.Params.List {
			for _, name := range f.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					params[obj] = true
				}
			}
		}
	}
	if len(params) == 0 {
		return
	}
	isParam := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		return params[pass.TypesInfo.Uses[id]]
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			e := ast.Unparen(res)
			// string(p) / []byte(p) is still the same bytes.
			if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
				if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
					e = ast.Unparen(call.Args[0])
				}
			}
			if isParam(e) {
				pass.Reportf(ret.Pos(), "seclint:sanitizer function %s returns its input unchanged; a sanitizer must produce a validated value, not launder taint", fn.Name.Name)
				return true
			}
		}
		return true
	})
}

// checkStruct validates guardedby and atomicptr annotations inside one
// struct type and records the well-placed ones.
func checkStruct(pass *analysis.Pass, st *ast.StructType, placed map[token.Pos]bool) {
	for _, field := range st.Fields.List {
		for _, grp := range []*ast.CommentGroup{field.Doc, field.Comment} {
			for _, verb := range []string{"guardedby", "atomicptr"} {
				d, ok := analysis.GroupDirective(grp, verb)
				if !ok {
					continue
				}
				// Mark as placed regardless: the argument errors below are
				// more precise than the generic misplacement message.
				placed[d.Pos] = true
				switch {
				case d.Args == "":
					pass.Reportf(d.Pos, "seclint:%s requires the name of the guarding mutex field", verb)
				case !hasMutexField(pass, st, d.Args):
					pass.Reportf(d.Pos, "seclint:%s names %q, which is not a sync.Mutex/RWMutex field of this struct", verb, d.Args)
				case verb == "atomicptr" && !isAtomicPointerField(pass, field):
					pass.Reportf(d.Pos, "seclint:atomicptr must annotate a field of type atomic.Pointer[T]")
				}
			}
		}
	}
}

// isAtomicPointerField reports whether the field's type is
// sync/atomic.Pointer[T].
func isAtomicPointerField(pass *analysis.Pass, field *ast.Field) bool {
	if len(field.Names) == 0 {
		return false
	}
	obj := pass.TypesInfo.Defs[field.Names[0]]
	if obj == nil {
		return false
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return false
	}
	tn := named.Obj()
	return tn.Pkg() != nil && tn.Pkg().Path() == "sync/atomic" && tn.Name() == "Pointer"
}

// hasMutexField reports whether the struct declares a field named name
// whose type is sync.Mutex, sync.RWMutex, or a pointer to either.
func hasMutexField(pass *analysis.Pass, st *ast.StructType, name string) bool {
	for _, field := range st.Fields.List {
		for _, id := range field.Names {
			if id.Name != name {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				return false
			}
			return isMutex(obj.Type())
		}
	}
	return false
}

func isMutex(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}
