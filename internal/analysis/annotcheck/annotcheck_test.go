package annotcheck

import (
	"path/filepath"
	"testing"

	"webdbsec/internal/analysis/analysistest"
)

func TestAnnotCheck(t *testing.T) {
	analysistest.Run(t, Analyzer, filepath.Join("..", "testdata", "src", "annot"))
}
