// Package taintflow defines an Analyzer that tracks web input to
// execution sinks.
//
// # Analyzer taintflow
//
// taintflow: web input must be parsed or validated before it reaches an
// execution sink.
//
// The analyzer runs the shared interprocedural engine
// (internal/analysis/taint) with the web-facing vocabulary of this
// repository:
//
//   - Origins: every value derived from a *net/http.Request — form
//     values, headers (including X-Auth-Token), URL components, body
//     reads — plus any function annotated `// seclint:source` (wsa
//     request decoding, UDDI inquiry input, secchan frame payloads).
//
//   - Sanitizers: functions annotated `// seclint:sanitizer`. In-tree
//     these are the reldb SQL parser, the xquery parser, and
//     authtoken decode+verify — the places where raw bytes become a
//     validated structure. The annotation travels as an analysis fact,
//     so a sanitizer in internal/reldb clears taint in cmd/securedb.
//
//   - Sinks: filesystem calls taking a path (os.Open, os.ReadFile,
//     os.WriteFile, os.Remove*, os.Mkdir*, os.Rename, os.OpenFile,
//     os.Stat) and any function annotated `// seclint:sink` (reldb
//     statement execution, xquery evaluation, xmldoc path ops, WAL
//     appends).
//
// A flow may be silenced with `// seclint:taint-exempt <reason>` on the
// flagged line or the line above; annotcheck rejects a bare exemption
// with no reason.
package taintflow

import (
	"fmt"
	"go/types"

	"webdbsec/internal/analysis"
	"webdbsec/internal/analysis/taint"
)

var Analyzer = &analysis.Analyzer{
	Name:         "taintflow",
	Doc:          "web input must pass a sanitizer before reaching an execution sink",
	Run:          run,
	ExportsFacts: true,
}

func run(pass *analysis.Pass) error {
	return taint.Run(pass, &taint.Config{
		OriginVerb: "source",
		Kind:       "web input",
		OriginType: requestType,
		CleanType:  cleanType,
		IntrinsicSink: func(callee *types.Func) ([]int, string, bool) {
			if pathSinks[callee.FullName()] {
				// Only the leading path arguments are sensitive; the
				// write payload of os.WriteFile may carry input.
				switch callee.Name() {
				case "Rename", "Link", "Symlink":
					return []int{0, 1}, callee.FullName(), true
				default:
					return []int{0}, callee.FullName(), true
				}
			}
			return nil, "", false
		},
		Message: func(sink, origin string) string {
			src := ""
			if origin != "" {
				src = fmt.Sprintf(" (from %s)", origin)
			}
			return fmt.Sprintf("unsanitized web input%s reaches %s; parse/validate it first or add // seclint:taint-exempt <reason>", src, sink)
		},
	})
}

// requestType marks request-derived roots: every value of type
// *http.Request (or http.Request) is web input, so reads through it —
// FormValue, Header.Get, URL.Path, Body — come out tainted without an
// intrinsic table per accessor.
func requestType(t types.Type) (string, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if isNamed(t, "net/http", "Request") {
		return "http request", true
	}
	return "", false
}

// cleanType cuts conservative propagation through values that cannot
// carry attacker-controlled bytes into an execution sink: contexts,
// errors, and the response writer.
func cleanType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if types.Identical(t, errorType) {
		return true
	}
	return isNamed(t, "context", "Context") ||
		isNamed(t, "net/http", "ResponseWriter") ||
		isNamed(t, "time", "Time") || isNamed(t, "time", "Duration")
}

var errorType = types.Universe.Lookup("error").Type()

func isNamed(t types.Type, pkgPath, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// pathSinks lists stdlib filesystem entry points whose path arguments
// must not be attacker-controlled.
var pathSinks = buildPathSinks()

func buildPathSinks() map[string]bool {
	names := []string{
		"Open", "OpenFile", "Create", "ReadFile", "WriteFile",
		"Remove", "RemoveAll", "Mkdir", "MkdirAll", "Rename",
		"Stat", "Lstat", "ReadDir", "Truncate", "Chmod",
		"Link", "Symlink",
	}
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m["os."+n] = true
	}
	return m
}
