package taintflow

import (
	"path/filepath"
	"testing"

	"webdbsec/internal/analysis/analysistest"
)

// TestTaintFlow runs over the taintweb fixture, which imports the
// taintsrc sibling: the cross-package cases are caught purely through
// exported summaries (JSON-round-tripped by the harness), the same way
// go vet ships them between packages.
func TestTaintFlow(t *testing.T) {
	analysistest.Run(t, Analyzer, filepath.Join("..", "testdata", "src", "taintweb"))
}

// TestTaintFlowSourcePackage runs over the sibling itself: annotated
// sources feeding the annotated sink inside one package.
func TestTaintFlowSourcePackage(t *testing.T) {
	analysistest.Run(t, Analyzer, filepath.Join("..", "testdata", "src", "taintsrc"))
}
