// Package leaksrc is a sibling fixture for the leakcheck golden tests:
// an annotated secret struct field and a redaction helper whose effects
// reach the package under test only as analysis facts.
package leaksrc

// Wallet models a credential store.
type Wallet struct {
	Owner string
	// Blob is raw credential material.
	// seclint:secret
	Blob []byte
}

// Redact reduces a secret to a short printable fingerprint.
//
// seclint:sanitizer
func Redact(b []byte) string {
	if len(b) == 0 {
		return "empty"
	}
	return "cred-xxxx"
}

// Describe forwards its argument into an error string: callers passing
// secrets must be flagged at their call site.
func Describe(b []byte) error {
	return errString(b)
}

func errString(b []byte) error {
	return newErr(string(b))
}

// seclint:sink
func newErr(s string) error {
	_ = s
	return nil
}
