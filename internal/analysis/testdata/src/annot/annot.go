// Testdata for the annotcheck analyzer: the annotations themselves are
// load-bearing, so malformed ones must be findings, not no-ops. The
// malformed directives use /* block */ form so the `want` expectation can
// share the line without polluting the directive's arguments.
package annot

import (
	"sync"
	"sync/atomic"
)

// ok carries well-formed annotations: nothing below should be flagged.
type ok struct {
	mu sync.Mutex
	n  int // seclint:guardedby mu
}

// version is a legal atomicptr target: an atomic.Pointer field with a
// sibling mutex.
type version struct {
	mu  sync.Mutex
	cur atomic.Pointer[ok] // seclint:atomicptr mu
}

// ptrMu: a pointer to a mutex guards just as well.
type ptrMu struct {
	mu *sync.RWMutex
	n  int // seclint:guardedby mu
}

// Checker is a legal gate target.
//
// seclint:gate Check IS the access decision here
type Checker interface{ Check() bool }

// seclint:locked caller holds mu
func helper() {}

// seclint:exempt setup path, single-threaded by construction
func Setup() { helper() }

// --- malformed cases ---

type wrongName struct {
	mu sync.Mutex
	n  int /* seclint:guardedby lock */ // want `seclint:guardedby names "lock", which is not a sync\.Mutex/RWMutex field of this struct`
}

type notAMutex struct {
	mu sync.Mutex
	m  map[string]int
	n  int /* seclint:guardedby m */ // want `seclint:guardedby names "m", which is not a sync\.Mutex/RWMutex field of this struct`
}

type missingArg struct {
	mu sync.Mutex
	n  int /* seclint:guardedby */ // want `seclint:guardedby requires the name of the guarding mutex field`
}

type atomicWrongMu struct {
	mu  sync.Mutex
	cur atomic.Pointer[ok] /* seclint:atomicptr lock */ // want `seclint:atomicptr names "lock", which is not a sync\.Mutex/RWMutex field of this struct`
}

type atomicNotPointer struct {
	mu sync.Mutex
	n  int /* seclint:atomicptr mu */ // want `seclint:atomicptr must annotate a field of type atomic\.Pointer\[T\]`
}

var typoVerb = 1 /* seclint:guardby mu */ // want `unknown seclint directive "guardby"`

/* seclint:exempt */ // want `seclint:exempt requires a reason`
func bareExempt()    {}

/* seclint:guardedby mu */ // want `seclint:guardedby must annotate a struct field and name a sibling sync\.Mutex/RWMutex field`
func floating()            {}

/* seclint:atomicptr mu */ // want `seclint:atomicptr must annotate a struct field and name a sibling sync\.Mutex/RWMutex field`
func floatingAtomic()      {}

/* seclint:gate wrong target */ // want `seclint:gate must annotate an interface type declaration`
type notIface struct{}

// --- taint-annotation grammar ---

// A well-formed source/sink/sanitizer trio on function declarations.

// seclint:source
func goodSource() string { return "input" }

// seclint:sink
func goodSink(q string) { _ = q }

// seclint:sanitizer
func goodSanitizer(src string) (string, error) {
	if src == "" {
		return "", nil
	}
	return "parsed", nil
}

// A sanitizer that hands back its input is taint laundering.

// seclint:sanitizer
func identitySanitizer(src string) string {
	return src // want `seclint:sanitizer function identitySanitizer returns its input unchanged`
}

// A bare conversion does not make it a sanitizer either.

// seclint:sanitizer
func conversionSanitizer(b []byte) string {
	return string(b) // want `seclint:sanitizer function conversionSanitizer returns its input unchanged`
}

// Annotating secrets on a struct field and on a function are both legal.

type vault struct {
	// seclint:secret
	key []byte
	pub []byte /* seclint:secret */
}

// seclint:secret
func secretFunc() []byte { return nil }

var _ = vault{}

/* seclint:secret */ // want `seclint:secret must annotate a function declaration or a struct field`
var looseSecret = 1

/* seclint:source */ // want `seclint:source must annotate a function declaration`
type sourceOnType struct{}

/* seclint:sink */ // want `seclint:sink must annotate a function declaration`
var sinkOnVar = 2

/* seclint:sanitizer */ // want `seclint:sanitizer must annotate a function declaration`
type sanitizerOnType struct{}

/* seclint:taint-exempt */ // want `seclint:taint-exempt requires a reason`
func bareTaintExempt()     {}

// seclint:taint-exempt fixture data only, never reaches production
func reasonedTaintExempt() {}
