// Testdata for the annotcheck analyzer: the annotations themselves are
// load-bearing, so malformed ones must be findings, not no-ops. The
// malformed directives use /* block */ form so the `want` expectation can
// share the line without polluting the directive's arguments.
package annot

import (
	"sync"
	"sync/atomic"
)

// ok carries well-formed annotations: nothing below should be flagged.
type ok struct {
	mu sync.Mutex
	n  int // seclint:guardedby mu
}

// version is a legal atomicptr target: an atomic.Pointer field with a
// sibling mutex.
type version struct {
	mu  sync.Mutex
	cur atomic.Pointer[ok] // seclint:atomicptr mu
}

// ptrMu: a pointer to a mutex guards just as well.
type ptrMu struct {
	mu *sync.RWMutex
	n  int // seclint:guardedby mu
}

// Checker is a legal gate target.
//
// seclint:gate Check IS the access decision here
type Checker interface{ Check() bool }

// seclint:locked caller holds mu
func helper() {}

// seclint:exempt setup path, single-threaded by construction
func Setup() { helper() }

// --- malformed cases ---

type wrongName struct {
	mu sync.Mutex
	n  int /* seclint:guardedby lock */ // want `seclint:guardedby names "lock", which is not a sync\.Mutex/RWMutex field of this struct`
}

type notAMutex struct {
	mu sync.Mutex
	m  map[string]int
	n  int /* seclint:guardedby m */ // want `seclint:guardedby names "m", which is not a sync\.Mutex/RWMutex field of this struct`
}

type missingArg struct {
	mu sync.Mutex
	n  int /* seclint:guardedby */ // want `seclint:guardedby requires the name of the guarding mutex field`
}

type atomicWrongMu struct {
	mu  sync.Mutex
	cur atomic.Pointer[ok] /* seclint:atomicptr lock */ // want `seclint:atomicptr names "lock", which is not a sync\.Mutex/RWMutex field of this struct`
}

type atomicNotPointer struct {
	mu sync.Mutex
	n  int /* seclint:atomicptr mu */ // want `seclint:atomicptr must annotate a field of type atomic\.Pointer\[T\]`
}

var typoVerb = 1 /* seclint:guardby mu */ // want `unknown seclint directive "guardby"`

/* seclint:exempt */ // want `seclint:exempt requires a reason`
func bareExempt()    {}

/* seclint:guardedby mu */ // want `seclint:guardedby must annotate a struct field and name a sibling sync\.Mutex/RWMutex field`
func floating()            {}

/* seclint:atomicptr mu */ // want `seclint:atomicptr must annotate a struct field and name a sibling sync\.Mutex/RWMutex field`
func floatingAtomic()      {}

/* seclint:gate wrong target */ // want `seclint:gate must annotate an interface type declaration`
type notIface struct{}
