// Testdata for gatecheck's token rule, mint side. The directory is named
// authtoken so the analyzer treats it as the token package itself: Mint
// entry points must reach a policy decision, and — unlike everywhere
// else — calls into the real verification surface do NOT count as gates
// (the package that signs tokens cannot bootstrap its own gate off
// checking them).
package authtoken

import (
	"time"

	"webdbsec/internal/authtoken"
	"webdbsec/internal/policy"
)

// MintGate mirrors the production annotation: calls through it are the
// policy decision a mint must be behind.
//
// seclint:gate AllowMint IS the mint policy decision
type MintGate interface {
	AllowMint(s *policy.Subject) bool
}

// Issuer is a toy token issuer.
type Issuer struct {
	gate MintGate
	v    *authtoken.Verifier
}

// MintBadge runs the gate before signing: the correct shape.
func (i *Issuer) MintBadge(s *policy.Subject) []byte {
	if !i.gate.AllowMint(s) {
		return nil
	}
	return []byte(s.ID)
}

// MintViaHelper reaches the gate two frames down; same-package helpers count.
func (i *Issuer) MintViaHelper(s *policy.Subject) []byte {
	if !i.allowed(s) {
		return nil
	}
	return []byte(s.ID)
}

func (i *Issuer) allowed(s *policy.Subject) bool { return i.gate.AllowMint(s) }

// MintRaw signs with no policy decision on any path: the forged
// attestation gatecheck exists to catch.
func (i *Issuer) MintRaw(s *policy.Subject) []byte { // want `exported entry point MintRaw reaches no accessctl/policy/sysr check on any path`
	return []byte(s.ID)
}

// GetSession verifies a token — but inside the token package itself that
// is not a gate, so this entry point is still flagged.
func (i *Issuer) GetSession(raw []byte) bool { // want `exported entry point GetSession reaches no accessctl/policy/sysr check on any path`
	_, err := i.v.Verify(raw, time.Unix(0, 0))
	return err == nil
}
