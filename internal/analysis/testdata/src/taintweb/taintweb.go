// Package taintweb is the taintflow golden fixture: request-derived
// values flowing into execution sinks, with and without sanitizers,
// locally and across the package boundary to taintsrc.
package taintweb

import (
	"io"
	"net/http"
	"os"

	"taintsrc"
)

// direct: request value straight into a filesystem sink.
func direct(w http.ResponseWriter, r *http.Request) {
	name := r.FormValue("file")
	os.Open(name) // want `unsanitized web input .*reaches os\.Open`
}

// header: the X-Auth-Token header is web input like any other.
func header(r *http.Request) {
	tok := r.Header.Get("X-Auth-Token")
	os.ReadFile(tok) // want `unsanitized web input .*reaches os\.ReadFile`
}

// body: bytes read off the request body stay tainted through io.ReadAll
// and a string conversion.
func body(r *http.Request) {
	raw, _ := io.ReadAll(r.Body)
	taintsrc.Exec(string(raw)) // want `unsanitized web input .*reaches taintsrc\.Exec`
}

// crossPackage: a taintsrc.Recv origin reaches a taintsrc.Exec sink —
// both ends known only through exported facts — via the Wrap propagator.
func crossPackage() {
	in := taintsrc.Recv()
	q := taintsrc.Wrap(in)
	taintsrc.Exec(q) // want `unsanitized web input .*reaches taintsrc\.Exec`
}

// indirectSink: RunRaw's summary says its parameter reaches a sink, so
// the flag lands on this call, one level above the actual Exec.
func indirectSink(r *http.Request) {
	taintsrc.RunRaw(r.URL.Path) // want `unsanitized web input .*reaches taintsrc\.Exec`
}

// localHelper: same indirection through a helper in this package.
func localHelper(r *http.Request) {
	runIt(r.FormValue("q")) // want `unsanitized web input .*reaches taintsrc\.Exec`
}

func runIt(q string) {
	taintsrc.Exec(q)
}

// sanitized: parsing clears taint; no finding on either call.
func sanitized(r *http.Request) {
	stmt, err := taintsrc.Parse(r.FormValue("q"))
	if err != nil {
		return
	}
	taintsrc.Exec(stmt)
}

// exempted: the directive silences the flow; annotcheck checks the
// reason is present.
func exempted(r *http.Request) {
	name := r.FormValue("file")
	// seclint:taint-exempt name is matched against an allowlist by the caller
	os.Open(name)
}

// predicates: comparisons over tainted values are clean.
func predicates(r *http.Request) {
	if r.FormValue("mode") == "debug" {
		os.Open("static.txt")
	}
}

// cleanConst: untainted values may hit sinks freely.
func cleanConst() {
	os.Open("config.json")
	taintsrc.Exec("select 1")
}

// exemptMidChain: an exemption on the sink call inside a helper vouches
// for the flow once — the helper stops exporting the sink effect, so its
// callers are not re-flagged.
func exemptMidChain(r *http.Request) {
	vetted(r.FormValue("q"))
}

func vetted(q string) {
	// seclint:taint-exempt q only selects among fixed shard names validated at startup
	taintsrc.Exec(q)
}
