// Testdata for the ctxio analyzer. The directory is named secchan so the
// package path's last element lands in the analyzer's target set; the
// code is synthetic.
package secchan

import (
	"context"
	"net"
	"net/http"
)

// Dial performs I/O with no way for the caller to bound it.
func Dial(addr string) (net.Conn, error) { // want `exported Dial performs I/O \(reaches net\.Dial\) but has no context\.Context parameter`
	return net.Dial("tcp", addr)
}

// DialCtx carries a context, so the caller's deadline can be plumbed.
func DialCtx(ctx context.Context, addr string) (net.Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if d, ok := ctx.Deadline(); ok {
		if err := c.SetDeadline(d); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// Fetch reaches I/O through a same-package helper: propagation over the
// local call graph finds it two frames down.
func Fetch(url string) (*http.Response, error) { // want `exported Fetch performs I/O \(reaches net/http\.Get\) but has no context\.Context parameter`
	return rawGet(url)
}

func rawGet(url string) (*http.Response, error) { return http.Get(url) }

// probe is unexported: not part of the API surface the rule covers.
func probe(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }

// Serve has an *http.Request whose Context the body can forward.
func Serve(w http.ResponseWriter, r *http.Request) {
	resp, err := http.Get("http://upstream.invalid/item")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	resp.Body.Close()
}

// Detached has a context to forward but manufactures a fresh root below
// it, silently escaping the caller's deadline.
func Detached(ctx context.Context, addr string) (net.Conn, error) {
	dctx := context.Background() // want `Detached has a context to forward but calls context\.Background\(\)`
	_ = dctx
	_ = ctx
	return net.Dial("tcp", addr)
}

// Refresh detaches on purpose — the cache fill outlives the request —
// and says so on the call line.
func Refresh(ctx context.Context) context.Context {
	_ = ctx
	// seclint:exempt cache refresh outlives the request by design
	return context.TODO()
}

// CloseConn opts out of the rule per function: its bound is the conn
// deadline, not a context.
//
// seclint:exempt teardown is bounded by the net.Conn deadline
func CloseConn(c net.Conn) error { return c.Close() }

type session struct{ c net.Conn }

// Send is exported, but its receiver type is not: the rule covers only
// the package's exported surface.
func (s *session) Send(p []byte) error {
	_, err := s.c.Write(p)
	return err
}
