// Testdata for the guardedby analyzer. Each `want "regexp"` comment is
// an expectation the diagnostic reported on that line must match; lines
// without one must stay silent.
package guardedby

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu sync.Mutex
	n  int // seclint:guardedby mu
	// hits counts lookups per key.
	// seclint:guardedby mu
	hits map[string]int
	free int // unguarded: accessible anywhere
}

// bad reads n without the lock.
func (c *counter) bad() int {
	return c.n // want `c\.n \(counter\.n\) is guarded by c\.mu but the mutex is not held here`
}

// good holds the lock across the access; the deferred Unlock runs at
// return and does not clear the held state.
func (c *counter) good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// afterUnlock releases the lock before the access.
func (c *counter) afterUnlock() int {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	return c.n // want `c\.n \(counter\.n\) is guarded by c\.mu but the mutex is not held here`
}

// unguardedIsFree: fields without the annotation are never flagged.
func (c *counter) unguardedIsFree() int { return c.free }

// callerHolds documents the caller's lock, so the whole body is skipped.
//
// seclint:locked caller holds c.mu
func (c *counter) callerHolds() int { return c.n }

// lineWaiver proves by control flow what the lexical check cannot see —
// the Unlock above the access sits inside a returning branch — and says
// so on the access line.
func (c *counter) lineWaiver(cold bool) int {
	c.mu.Lock()
	if cold {
		c.mu.Unlock()
		return 0
	}
	// seclint:locked still held; the Unlock above is inside the returning branch
	v := c.n
	c.mu.Unlock()
	return v
}

// lockedElsewhere: a line-level seclint:locked covers its own line (and
// the one below), not the rest of the function — the negative case for
// the locked annotation.
func (c *counter) lockedElsewhere() int {
	v := c.hits["x"] // seclint:locked single-threaded setup path
	v++
	return v + c.hits["y"] // want `c\.hits \(counter\.hits\) is guarded by c\.mu but the mutex is not held here`
}

// closure: a nested function literal does not inherit the creator's
// textual lock state — it may run on another goroutine.
func (c *counter) closure() func() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() int {
		return c.n // want `c\.n \(counter\.n\) is guarded by c\.mu but the mutex is not held here`
	}
}

// bump: locking one receiver's mutex says nothing about another's.
func bump(a, b *counter) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.n++
	b.n++ // want `b\.n \(counter\.n\) is guarded by b\.mu but the mutex is not held here`
}

// versioned models the MVCC publication discipline: the current-version
// pointer is Loaded lock-free and Stored only under the writer mutex.
type versioned struct {
	mu  sync.Mutex
	cur atomic.Pointer[counter] // seclint:atomicptr mu
}

// loadAnywhere: Load is the lock-free read path — never flagged.
func (v *versioned) loadAnywhere() *counter {
	return v.cur.Load()
}

// storeUnlocked installs a version without the writer mutex.
func (v *versioned) storeUnlocked(c *counter) {
	v.cur.Store(c) // want `v\.cur \(versioned\.cur\) is an atomic pointer published under v\.mu`
}

// storeLocked installs under the mutex; the deferred Unlock runs at
// return and does not clear the held state.
func (v *versioned) storeLocked(c *counter) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.cur.Store(c)
}

// swapUnlocked: every publishing method needs the mutex, not just Store.
func (v *versioned) swapUnlocked(c *counter) *counter {
	return v.cur.Swap(c) // want `v\.cur \(versioned\.cur\) is an atomic pointer published under v\.mu`
}

// constructorOwns: a seclint:locked function owns the value exclusively
// (pre-publication), so installs are free.
//
// seclint:locked v is not yet published
func constructorOwns() *versioned {
	v := &versioned{}
	v.cur.Store(&counter{})
	return v
}

// escapeIsFlagged: any non-method use of the pointer field (aliasing it
// out from under the discipline) requires the mutex too.
func (v *versioned) escapeIsFlagged() *atomic.Pointer[counter] {
	return &v.cur // want `v\.cur \(versioned\.cur\) is an atomic pointer published under v\.mu`
}
