// Package leakmain is the leakcheck golden fixture: private keys and
// annotated secrets flowing into logs and error strings, with
// declassified and redacted negatives.
package leakmain

import (
	"crypto/ed25519"
	"fmt"
	"log"

	"leaksrc"
)

// direct: a private key formatted into an error.
func direct(priv ed25519.PrivateKey) error {
	return fmt.Errorf("minting failed for key %x", priv) // want `secret .*reaches fmt\.Errorf`
}

// oneHop: the secret reaches fmt.Errorf through one level of helper
// indirection — wrapErr's summary carries the sink.
func oneHop(priv ed25519.PrivateKey) error {
	return wrapErr(priv) // want `secret .*reaches fmt\.Errorf`
}

func wrapErr(k []byte) error {
	return fmt.Errorf("bad key material: %x", k)
}

// annotatedField: leaksrc.Wallet.Blob is secret by annotation; the fact
// crosses the package boundary.
func annotatedField(w *leaksrc.Wallet) {
	log.Printf("wallet contents: %x", w.Blob) // want `secret .*reaches log\.Printf`
}

// crossPackageSink: leaksrc.Describe's summary says its parameter hits
// an error-string sink two hops down.
func crossPackageSink(w *leaksrc.Wallet) {
	leaksrc.Describe(w.Blob) // want `secret .*reaches leaksrc\.newErr`
}

// declassified: a signature over the secret is public; no finding.
func declassified(priv ed25519.PrivateKey, msg []byte) {
	sig := ed25519.Sign(priv, msg)
	log.Printf("signature: %x", sig)
}

// redacted: the cross-package sanitizer clears the annotated secret.
func redacted(w *leaksrc.Wallet) {
	log.Printf("wallet: %s", leaksrc.Redact(w.Blob))
}

// exempted: reasoned exemption silences the flow.
func exempted(priv ed25519.PrivateKey) {
	// seclint:taint-exempt test-only fixture key, never a production secret
	log.Printf("dev key: %x", priv)
}

// meta: lengths and predicates derived from secrets are not secrets.
func meta(priv ed25519.PrivateKey) {
	log.Printf("key length: %d", len(priv))
	if len(priv) != ed25519.PrivateKeySize {
		log.Print("bad key size")
	}
}
