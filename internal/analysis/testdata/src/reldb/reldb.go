// Testdata for the gatecheck analyzer. The directory is named reldb so
// the package path's last element lands in the analyzer's data-path set;
// the code is synthetic, but the gate calls target the real policy
// package, exactly as production entry points do.
package reldb

import (
	"time"

	"webdbsec/internal/authtoken"
	"webdbsec/internal/policy"
)

// Gate is the slice of the access-control engine this store consults.
//
// seclint:gate Allow IS the access-control decision for this store
type Gate interface {
	Allow(s *policy.Subject, object string) bool
}

// Store is a toy keyed row store.
type Store struct {
	gate Gate
	rows map[string][]string
}

// GetRows reaches the gate directly, through the annotated interface.
func (st *Store) GetRows(s *policy.Subject, table string) []string {
	if !st.gate.Allow(s, table) {
		return nil
	}
	return st.rows[table]
}

// QueryRole reaches the policy package through a helper, two frames down.
func (st *Store) QueryRole(s *policy.Subject, table string) []string {
	if !st.allowed(s) {
		return nil
	}
	return st.rows[table]
}

func (st *Store) allowed(s *policy.Subject) bool { return s.HasRole("reader") }

// InsertRow ships with no gate on any path: the decay mode the analyzer
// exists to catch.
func (st *Store) InsertRow(table, v string) { // want `exported entry point InsertRow reaches no accessctl/policy/sysr check on any path`
	st.rows[table] = append(st.rows[table], v)
}

// DeleteAll sits below the gate by design and says so.
//
// seclint:exempt substrate reset used only by the harness above the gate
func (st *Store) DeleteAll() { st.rows = map[string][]string{} }

// Version is exported but carries no entry verb; never considered.
func (st *Store) Version() string { return "1" }

// Addr starts with "Add", but the verb-boundary check rejects it: the
// prefix must end the name or be followed by an uppercase letter.
func (st *Store) Addr() string { return "" }

// GetAuthed is the token fast path: outside the authtoken package, a
// call into its verification surface counts as the gate — the mint that
// produced the token is policy-gated by this same analyzer.
func (st *Store) GetAuthed(raw []byte, table string) []string {
	if _, err := (&authtoken.Verifier{}).Verify(raw, time.Unix(0, 0)); err != nil {
		return nil
	}
	return st.rows[table]
}

// MintPass starts with the new Mint verb and ships no gate: flagged in
// every target package, not just authtoken.
func (st *Store) MintPass(s *policy.Subject) string { // want `exported entry point MintPass reaches no accessctl/policy/sysr check on any path`
	return s.ID
}

// scanAll is unexported; not an entry point.
func (st *Store) scanAll() int {
	n := 0
	for _, r := range st.rows {
		n += len(r)
	}
	return n
}
