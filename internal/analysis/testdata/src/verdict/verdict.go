// Testdata for the verdictcheck analyzer. The cases call the real
// webdbsec APIs — the analyzer matches callees by their full type-checked
// names, so stand-ins would not exercise it.
package verdict

import (
	"context"

	"webdbsec/internal/audit"
	"webdbsec/internal/reldb"
	"webdbsec/internal/replication"
	"webdbsec/internal/wal"
	"webdbsec/internal/xmldoc"
)

func bareCall(w *wal.WAL, p []byte) {
	w.Append(p) // want `durability verdict of \(\*wal\.WAL\)\.Append is discarded \(bare call statement\)`
}

func blankAssign(t *reldb.Txn) {
	_ = t.Commit() // want `durability verdict of \(\*reldb\.Txn\)\.Commit is assigned to _`
}

// spreadBlank drops the verdict while keeping the LSN: a single call on
// the right-hand side spreads its results, and the error lands on the
// trailing blank.
func spreadBlank(w *wal.WAL, p []byte) {
	lsn, _ := w.Append(p) // want `durability verdict of \(\*wal\.WAL\)\.Append is assigned to _`
	_ = lsn
}

func deferred(w *wal.WAL) {
	defer w.Sync() // want `durability verdict of \(\*wal\.WAL\)\.Sync is unobservable \(deferred call\)`
}

func goroutine(a *wal.Ack) {
	go a.Wait() // want `durability verdict of \(\*wal\.Ack\)\.Wait is unobservable \(go statement\)`
}

func auditDrop(l *audit.Log) {
	l.AppendChecked("actor", "action", "object", "ok") // want `durability verdict of \(\*audit\.Log\)\.AppendChecked is discarded \(bare call statement\)`
}

// checked returns the verdict to its caller: not a drop.
func checked(t *reldb.Txn) error {
	return t.Commit()
}

// checkedAssign binds the verdict to a named variable: not a drop, even
// though the LSN is unused.
func checkedAssign(w *wal.WAL, p []byte) error {
	_, err := w.Append(p)
	return err
}

// waived drops the verdict deliberately and says why on the call line.
func waived(w *wal.WAL, p []byte) {
	w.Append(p) // seclint:exempt crash-test harness drops the verdict on purpose
}

func checkpointDB(d *reldb.Database) error {
	return d.Checkpoint()
}

func appendWait(l *reldb.Log, rec reldb.LogRecord) error {
	_, err := l.AppendWait(rec)
	return err
}

// --- replication verdicts (PR 6) ---

func ackWithoutQuorum(n *replication.Node, w *wal.WAL) {
	go n.WaitCommitted(context.Background(), w.LastLSN()) // want `durability verdict of \(\*replication\.Node\)\.WaitCommitted is unobservable \(go statement\)`
}

func applyDrop(f *reldb.Follower, p []byte) {
	f.Apply(1, p) // want `durability verdict of \(\*reldb\.Follower\)\.Apply is discarded \(bare call statement\)`
}

func restoreBlank(f *reldb.Follower, snap []byte) {
	_ = f.Restore(1, snap) // want `durability verdict of \(\*reldb\.Follower\)\.Restore is assigned to _`
}

func xmlApplyDrop(s *xmldoc.Store, p []byte) {
	s.ApplyReplicated(1, p) // want `durability verdict of \(\*xmldoc\.Store\)\.ApplyReplicated is discarded \(bare call statement\)`
}

func xmlRestoreDrop(s *xmldoc.Store, snap []byte) {
	s.RestoreReplicated(1, snap) // want `durability verdict of \(\*xmldoc\.Store\)\.RestoreReplicated is discarded \(bare call statement\)`
}

func truncateDrop(w *wal.WAL) {
	w.TruncateTo(7) // want `durability verdict of \(\*wal\.WAL\)\.TruncateTo is discarded \(bare call statement\)`
}

func installDeferred(w *wal.WAL, snap []byte) {
	defer w.InstallSnapshot(snap, 7) // want `durability verdict of \(\*wal\.WAL\)\.InstallSnapshot is unobservable \(deferred call\)`
}

// ackChecked returns the cluster verdict to the client path: not a drop.
func ackChecked(n *replication.Node, w *wal.WAL) error {
	return n.WaitCommitted(context.Background(), w.LastLSN())
}
