// Package taintsrc is a sibling fixture for the taintflow golden tests:
// it declares an annotated source, sink, sanitizer and a propagating
// helper, so the package under test exercises summaries that arrive as
// analysis facts rather than from local syntax.
package taintsrc

// Recv models a secchan-style frame read: its result is attacker bytes.
//
// seclint:source
func Recv() string {
	return "wire bytes"
}

// Exec models statement execution: its argument must be sanitized.
//
// seclint:sink
func Exec(q string) {
	_ = q
}

// Parse models the reldb parser: whatever comes out has been validated.
//
// seclint:sanitizer
func Parse(src string) (string, error) {
	if src == "" {
		return "", nil
	}
	return "select", nil
}

// Wrap concatenates; taint must flow through it into the result.
func Wrap(s string) string {
	return "[" + s + "]"
}

// RunRaw forwards its argument to the sink: callers with tainted input
// must be flagged at their call site.
func RunRaw(q string) {
	Exec(q)
}
