package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// NewTypesInfo allocates a types.Info with every map analyzers consume.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// RunAll applies every analyzer to one type-checked package and returns
// the combined diagnostics in file/position order. An analyzer error
// (a bug in the analyzer, not a finding) aborts the run.
func RunAll(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			d.Analyzer = name
			diags = append(diags, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}
