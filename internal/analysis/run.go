package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// NewTypesInfo allocates a types.Info with every map analyzers consume.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// RunAll applies every analyzer to one type-checked package and returns
// the combined diagnostics in file/position order plus the facts the
// analyzers exported about this package. imported carries the merged
// facts of the package's dependencies (nil is fine). An analyzer error
// (a bug in the analyzer, not a finding) aborts the run.
func RunAll(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, imported PackageFacts) ([]Diagnostic, PackageFacts, error) {
	diags, exported, err := run(analyzers, fset, files, pkg, info, imported, true)
	if err != nil {
		return nil, nil, err
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, exported, nil
}

// RunFactsOnly applies just the fact-producing analyzers, suppressing
// diagnostics — the dependency-package mode of the unitchecker protocol
// (VetxOnly) and of analysistest's testdata-sibling loading.
func RunFactsOnly(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, imported PackageFacts) (PackageFacts, error) {
	var factful []*Analyzer
	for _, a := range analyzers {
		if a.ExportsFacts {
			factful = append(factful, a)
		}
	}
	_, exported, err := run(factful, fset, files, pkg, info, imported, false)
	return exported, err
}

func run(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, imported PackageFacts, report bool) ([]Diagnostic, PackageFacts, error) {
	var diags []Diagnostic
	exported := PackageFacts{}
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:      a,
			Fset:          fset,
			Files:         files,
			Pkg:           pkg,
			TypesInfo:     info,
			ImportedFacts: imported,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			if !report {
				return
			}
			d.Analyzer = name
			diags = append(diags, d)
		}
		pass.exportFact = func(analyzer, key string, data []byte) {
			objs := exported[analyzer]
			if objs == nil {
				objs = make(map[string]json.RawMessage)
				exported[analyzer] = objs
			}
			objs[key] = json.RawMessage(data)
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	return diags, exported, nil
}
