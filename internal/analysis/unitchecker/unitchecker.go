// Package unitchecker implements the `go vet -vettool` command-line
// protocol for seclint's analyzers, on the standard library alone. It is
// the same contract golang.org/x/tools/go/analysis/unitchecker speaks:
//
//   - `tool -flags` prints a JSON description of the tool's flags, which
//     cmd/go uses to decide what it may pass through (seclint has none).
//   - `tool -V=full` prints a version line cmd/go can fold into its
//     build cache key.
//   - `tool <objdir>/vet.cfg` analyzes one package: the cfg file is a
//     JSON vetConfig (see cmd/go/internal/work.buildVetConfig) naming the
//     package's source files and the export-data files of every
//     dependency. Diagnostics go to stderr as "file:line:col: message"
//     and the exit status is 2 when there are findings, so `go vet`
//     fails the build.
//
// cmd/go also schedules every transitive dependency (standard library
// included) with VetxOnly=true so fact-producing checkers can propagate
// facts upward. seclint's invariants are all single-package, so VetxOnly
// runs write an empty facts file and return immediately — vetting ./...
// costs one parse+typecheck per package in this module and nothing for
// the standard library.
//
// As a convenience, invoking the tool with package patterns instead of a
// cfg file re-executes `go vet -vettool=<self> <patterns>`, so
// `./bin/seclint ./...` works from a shell.
package unitchecker

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"webdbsec/internal/analysis"
)

// config mirrors cmd/go/internal/work.vetConfig, the JSON handed to a
// vettool for each package. Fields the checker does not need are kept so
// the decode is strict about nothing and tolerant of everything.
type config struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string

	SucceedOnTypecheckFailure bool
}

// Main is the entry point for a vettool binary: it interprets the
// protocol arguments and exits. It never returns.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	args := os.Args[1:]

	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			// cmd/go hashes this line into its action cache key. The
			// "devel" spelling matches what x/tools prints and what
			// cmd/go's toolID parser accepts.
			fmt.Printf("%s version devel comments-go-here buildID=seclint\n", os.Args[0])
			os.Exit(0)
		case args[0] == "-flags":
			// No tool-specific flags: cmd/go must not forward any of the
			// standard vet analyzer switches to us.
			fmt.Println("[]")
			os.Exit(0)
		case args[0] == "help" || args[0] == "-help" || args[0] == "--help":
			fmt.Fprintf(os.Stderr, "%s is a vettool; run via: go vet -vettool=%s ./...\n\n", progname, os.Args[0])
			for _, a := range analyzers {
				fmt.Fprintf(os.Stderr, "%s: %s\n\n", a.Name, a.Doc)
			}
			os.Exit(0)
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(run(args[0], analyzers))
		}
	}

	// Convenience mode: treat the arguments as package patterns and let
	// the real go vet drive us with proper export data and caching.
	if len(args) > 0 {
		self, err := os.Executable()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			os.Exit(1)
		}
		cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
		cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
		if err := cmd.Run(); err != nil {
			if ee, ok := err.(*exec.ExitError); ok {
				os.Exit(ee.ExitCode())
			}
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			os.Exit(1)
		}
		os.Exit(0)
	}

	fmt.Fprintf(os.Stderr, "usage: go vet -vettool=%s ./...  (or %s <packages>)\n", os.Args[0], progname)
	os.Exit(1)
}

// run analyzes the single package described by cfgFile and returns the
// process exit code: 0 clean, 1 operational error, 2 findings.
func run(cfgFile string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "seclint: %v\n", err)
		return 1
	}
	var cfg config
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "seclint: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// The facts file must exist even when empty: cmd/go stores it in the
	// build cache as this vet run's output.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
				fmt.Fprintf(os.Stderr, "seclint: %v\n", err)
			}
		}
	}

	if cfg.VetxOnly {
		// Dependency run, wanted only for facts. seclint produces none.
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return 0
			}
			fmt.Fprintf(os.Stderr, "seclint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	pkg, info, err := typecheck(fset, files, &cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintf(os.Stderr, "seclint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags, err := analysis.RunAll(analyzers, fset, files, pkg, info)
	if err != nil {
		fmt.Fprintf(os.Stderr, "seclint: %v\n", err)
		return 1
	}
	writeVetx()
	if len(diags) == 0 {
		return 0
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		name := pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s [seclint:%s]\n", name, pos.Line, pos.Column, d.Message, d.Analyzer)
	}
	return 2
}

// typecheck type-checks the package using the export data files cmd/go
// listed in the config. importer.ForCompiler with a lookup function reads
// the same unified export format the compiler wrote, so dependencies are
// never re-parsed.
func typecheck(fset *token.FileSet, files []*ast.File, cfg *config) (*types.Package, *types.Info, error) {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	var firstErr error
	tconf := types.Config{
		Importer:  importer.ForCompiler(fset, compiler, lookup),
		GoVersion: cfg.GoVersion,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	info := analysis.NewTypesInfo()
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if firstErr != nil {
		return nil, nil, firstErr
	}
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}
