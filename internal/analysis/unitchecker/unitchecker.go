// Package unitchecker implements the `go vet -vettool` command-line
// protocol for seclint's analyzers, on the standard library alone. It is
// the same contract golang.org/x/tools/go/analysis/unitchecker speaks:
//
//   - `tool -flags` prints a JSON description of the tool's flags, which
//     cmd/go uses to decide what it may pass through (seclint has none).
//   - `tool -V=full` prints a version line cmd/go can fold into its
//     build cache key.
//   - `tool <objdir>/vet.cfg` analyzes one package: the cfg file is a
//     JSON vetConfig (see cmd/go/internal/work.buildVetConfig) naming the
//     package's source files and the export-data files of every
//     dependency. Diagnostics go to stderr as "file:line:col: message"
//     and the exit status is 2 when there are findings, so `go vet`
//     fails the build.
//
// cmd/go also schedules every transitive dependency (standard library
// included) with VetxOnly=true so fact-producing checkers can propagate
// facts upward. seclint uses exactly that channel for its interprocedural
// taint summaries: on a VetxOnly run of a package inside this module, the
// fact-producing analyzers (taintflow, leakcheck) run with diagnostics
// suppressed and their per-function summaries are written to the vetx
// file as JSON; the full run of an importing package reads every
// dependency's vetx through PackageVetx and hands the merged facts to the
// analyzers. Standard-library (and other out-of-module) dependencies
// still write an empty facts file and return immediately — their call
// surface is covered by the analyzers' built-in models, so vetting ./...
// costs one parse+typecheck per package in this module and nothing for
// the standard library.
//
// As a convenience, invoking the tool with package patterns instead of a
// cfg file re-executes `go vet -vettool=<self> <patterns>`, so
// `./bin/seclint ./...` works from a shell. A leading -json flag in that
// mode re-emits findings as one JSON object per line on stdout
// ({"file","line","col","analyzer","message"}) for CI and editors.
package unitchecker

import (
	"bufio"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"webdbsec/internal/analysis"
)

// jsonEnv, when set to 1 in the environment, switches the per-package
// diagnostic output from "file:line:col: message" lines to JSON objects.
// The convenience driver sets it for `seclint -json ./...`; it is an env
// var rather than a flag because cmd/go only forwards flags it knows.
const jsonEnv = "SECLINT_JSON"

// Finding is the JSON shape of one diagnostic in -json mode.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// config mirrors cmd/go/internal/work.vetConfig, the JSON handed to a
// vettool for each package. Fields the checker does not need are kept so
// the decode is strict about nothing and tolerant of everything.
type config struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string

	SucceedOnTypecheckFailure bool
}

// Main is the entry point for a vettool binary: it interprets the
// protocol arguments and exits. It never returns.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	args := os.Args[1:]

	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			// cmd/go hashes this line into its action cache key. The
			// "devel" spelling matches what x/tools prints and what
			// cmd/go's toolID parser accepts; the buildID is a content
			// hash of the binary itself, so editing an analyzer and
			// rebuilding invalidates every cached vet result — a
			// constant here would happily serve stale findings.
			fmt.Printf("%s version devel comments-go-here buildID=%s\n", os.Args[0], selfHash())
			os.Exit(0)
		case args[0] == "-flags":
			// No tool-specific flags: cmd/go must not forward any of the
			// standard vet analyzer switches to us.
			fmt.Println("[]")
			os.Exit(0)
		case args[0] == "help" || args[0] == "-help" || args[0] == "--help":
			fmt.Fprintf(os.Stderr, "%s is a vettool; run via: go vet -vettool=%s ./...\n\n", progname, os.Args[0])
			for _, a := range analyzers {
				fmt.Fprintf(os.Stderr, "%s: %s\n\n", a.Name, a.Doc)
			}
			os.Exit(0)
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(run(args[0], analyzers))
		}
	}

	// Convenience mode: treat the arguments as package patterns and let
	// the real go vet drive us with proper export data and caching. A
	// leading -json switches the findings to machine-readable output.
	if len(args) > 0 {
		jsonOut := false
		if args[0] == "-json" {
			jsonOut = true
			args = args[1:]
		}
		if len(args) == 0 {
			fmt.Fprintf(os.Stderr, "usage: %s [-json] <packages>\n", progname)
			os.Exit(1)
		}
		os.Exit(reexec(progname, args, jsonOut))
	}

	fmt.Fprintf(os.Stderr, "usage: go vet -vettool=%s ./...  (or %s [-json] <packages>)\n", os.Args[0], progname)
	os.Exit(1)
}

// reexec drives `go vet -vettool=<self>` over the package patterns. In
// JSON mode the per-package invocations emit findings as JSON lines on
// stderr (see jsonEnv); reexec separates them from go vet's own chatter
// ("# pkg" headers, build errors) and reprints findings on stdout,
// everything else on stderr — so `seclint -json ./... > findings.jsonl`
// does what it looks like.
func reexec(progname string, patterns []string, jsonOut bool) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		return 1
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, patterns...)...)
	if !jsonOut {
		cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
		if err := cmd.Run(); err != nil {
			if ee, ok := err.(*exec.ExitError); ok {
				return ee.ExitCode()
			}
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			return 1
		}
		return 0
	}
	cmd.Env = append(os.Environ(), jsonEnv+"=1")
	cmd.Stdout = os.Stdout
	stderr, err := cmd.StderrPipe()
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		return 1
	}
	if err := cmd.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		return 1
	}
	sc := bufio.NewScanner(stderr)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	out := bufio.NewWriter(os.Stdout)
	for sc.Scan() {
		line := sc.Text()
		var f Finding
		if strings.HasPrefix(line, "{") && json.Unmarshal([]byte(line), &f) == nil && f.File != "" {
			fmt.Fprintln(out, line)
			continue
		}
		fmt.Fprintln(os.Stderr, line)
	}
	out.Flush()
	if err := cmd.Wait(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		return 1
	}
	return 0
}

// selfHash content-hashes the running binary for the -V=full version
// line, falling back to a constant if the executable cannot be read
// (the cache then simply stays warm).
func selfHash() string {
	self, err := os.Executable()
	if err != nil {
		return "seclint"
	}
	f, err := os.Open(self)
	if err != nil {
		return "seclint"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "seclint"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

// run analyzes the single package described by cfgFile and returns the
// process exit code: 0 clean, 1 operational error, 2 findings.
func run(cfgFile string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "seclint: %v\n", err)
		return 1
	}
	var cfg config
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "seclint: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// The facts file must exist even when empty: cmd/go stores it in the
	// build cache as this vet run's output and feeds it to importers.
	writeVetx := func(facts analysis.PackageFacts) {
		if cfg.VetxOutput == "" {
			return
		}
		var data []byte
		if len(facts) > 0 {
			var err error
			data, err = facts.Encode()
			if err != nil {
				fmt.Fprintf(os.Stderr, "seclint: encoding facts: %v\n", err)
				data = nil
			}
		}
		if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "seclint: %v\n", err)
		}
	}

	if cfg.VetxOnly && !inModule(&cfg) {
		// Dependency run of an out-of-module package (standard library,
		// external module): the analyzers model those surfaces
		// internally, so no parse, no facts.
		writeVetx(nil)
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx(nil)
				return 0
			}
			fmt.Fprintf(os.Stderr, "seclint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	pkg, info, err := typecheck(fset, files, &cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx(nil)
			return 0
		}
		fmt.Fprintf(os.Stderr, "seclint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	imported := analysis.PackageFacts{}
	for path, vetx := range cfg.PackageVetx {
		data, err := os.ReadFile(vetx)
		if err != nil {
			// A missing dependency vetx only degrades cross-package
			// precision; the single-package invariants still hold.
			continue
		}
		facts, err := analysis.DecodeFacts(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seclint: facts of %s: %v\n", path, err)
			continue
		}
		imported.Merge(facts)
	}

	if cfg.VetxOnly {
		// In-module dependency run: compute and ship facts, suppress
		// diagnostics — the package's own full run reports them.
		exported, err := analysis.RunFactsOnly(analyzers, fset, files, pkg, info, imported)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seclint: %v\n", err)
			return 1
		}
		writeVetx(exported)
		return 0
	}

	diags, exported, err := analysis.RunAll(analyzers, fset, files, pkg, info, imported)
	if err != nil {
		fmt.Fprintf(os.Stderr, "seclint: %v\n", err)
		return 1
	}
	writeVetx(exported)
	if len(diags) == 0 {
		return 0
	}
	cwd, _ := os.Getwd()
	asJSON := os.Getenv(jsonEnv) == "1"
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		name := pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		if asJSON {
			line, err := json.Marshal(Finding{
				File: name, Line: pos.Line, Col: pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
			if err == nil {
				fmt.Fprintf(os.Stderr, "%s\n", line)
				continue
			}
		}
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s [seclint:%s]\n", name, pos.Line, pos.Column, d.Message, d.Analyzer)
	}
	return 2
}

// inModule reports whether the package under analysis belongs to the
// main module — the tree whose source seclint's interprocedural
// summaries cover. Test variants ("pkg [pkg.test]") share the prefix.
func inModule(cfg *config) bool {
	return cfg.ModulePath != "" && cfg.ModulePath != "std" &&
		strings.HasPrefix(cfg.ImportPath, cfg.ModulePath)
}

// typecheck type-checks the package using the export data files cmd/go
// listed in the config. importer.ForCompiler with a lookup function reads
// the same unified export format the compiler wrote, so dependencies are
// never re-parsed.
func typecheck(fset *token.FileSet, files []*ast.File, cfg *config) (*types.Package, *types.Info, error) {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	var firstErr error
	tconf := types.Config{
		Importer:  importer.ForCompiler(fset, compiler, lookup),
		GoVersion: cfg.GoVersion,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	info := analysis.NewTypesInfo()
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if firstErr != nil {
		return nil, nil, firstErr
	}
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}
