// Package verdictcheck forbids discarding a durability verdict. The WAL
// group-commit pipeline (PR 4) moves the moment of truth from "the call
// returned" to "the shared fsync's verdict arrived": wal.Ack.Wait,
// wal.WAL.Append/Sync/Checkpoint, reldb.Log.AppendWait, reldb.Txn.Commit,
// reldb.Database.Checkpoint and audit.Log.AppendChecked all return the
// only evidence that a record actually reached disk. Dropping that value
// — a bare call statement, `go`/`defer`, or assigning it to `_` — lets a
// store acknowledge progress it cannot prove, exactly the silent decay
// the paper's recovery discussion (§2.1) warns about. A deliberate drop
// must say why: `// seclint:exempt <reason>` on the call line.
package verdictcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"webdbsec/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "verdictcheck",
	Doc: "the durability verdicts of wal.Ack.Wait, wal.WAL.Append/Sync/Checkpoint/TruncateTo/InstallSnapshot, " +
		"reldb.Log.AppendWait, reldb.Txn.Commit, reldb.Database.Checkpoint, audit.Log.AppendChecked, " +
		"replication.Node.WaitCommitted and the replica apply/restore verdicts must not be discarded",
	Run: run,
}

// verdictFuncs maps types.Func.FullName of every verdict-returning
// function to true. The verdict is always the function's last result.
var verdictFuncs = map[string]bool{
	"(*webdbsec/internal/wal.Ack).Wait":              true,
	"(*webdbsec/internal/wal.WAL).Append":            true,
	"(*webdbsec/internal/wal.WAL).Sync":              true,
	"(*webdbsec/internal/wal.WAL).Checkpoint":        true,
	"(*webdbsec/internal/reldb.Log).AppendWait":      true,
	"(*webdbsec/internal/reldb.Txn).Commit":          true,
	"(*webdbsec/internal/reldb.Database).Checkpoint": true,
	"(*webdbsec/internal/audit.Log).AppendChecked":   true,

	// Replication verdicts (PR 6). WaitCommitted is the cluster-durability
	// half of a write ack: dropping it acknowledges a commit a failover can
	// still roll back. The apply/restore verdicts are a replica's only
	// evidence it still equals the leader — a dropped error silently forks
	// the replica's state. TruncateTo/InstallSnapshot rewrite log history
	// during divergence repair; an unchecked failure leaves the replica
	// claiming a position its log does not hold.
	"(*webdbsec/internal/replication.Node).WaitCommitted": true,
	"(*webdbsec/internal/reldb.Follower).Apply":           true,
	"(*webdbsec/internal/reldb.Follower).Restore":         true,
	"(*webdbsec/internal/xmldoc.Store).ApplyReplicated":   true,
	"(*webdbsec/internal/xmldoc.Store).RestoreReplicated": true,
	"(*webdbsec/internal/wal.WAL).TruncateTo":             true,
	"(*webdbsec/internal/wal.WAL).InstallSnapshot":        true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		lines := analysis.LineDirectives(pass.Fset, file)
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := verdictCallee(pass.TypesInfo, call)
			if !ok {
				return true
			}
			how, bad := discarded(stack, call)
			if !bad {
				return true
			}
			if analysis.HasLineDirective(lines, pass.Fset, call.Pos(), "exempt") {
				return true
			}
			pass.Reportf(call.Pos(), "durability verdict of %s is %s; check the error before acknowledging progress, or annotate // seclint:exempt <reason>",
				shortName(name), how)
			return true
		})
	}
	return nil
}

// verdictCallee resolves the call's static callee and reports whether it
// is one of the guarded verdict functions.
func verdictCallee(info *types.Info, call *ast.CallExpr) (string, bool) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", false
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok {
		return "", false
	}
	name := fn.FullName()
	return name, verdictFuncs[name]
}

// discarded reports whether the call's last result (the verdict) is
// dropped, and how, by inspecting the call's syntactic context. stack is
// the path from the file root to the call, inclusive.
func discarded(stack []ast.Node, call *ast.CallExpr) (string, bool) {
	if len(stack) < 2 {
		return "", false
	}
	switch parent := stack[len(stack)-2].(type) {
	case *ast.ExprStmt:
		return "discarded (bare call statement)", true
	case *ast.DeferStmt:
		return "unobservable (deferred call)", true
	case *ast.GoStmt:
		return "unobservable (go statement)", true
	case *ast.AssignStmt:
		// Locate which LHS receives the verdict. A single call on the
		// RHS spreads its results across the whole LHS; otherwise the
		// call contributes one value at its own RHS index.
		if len(parent.Rhs) == 1 {
			if isBlank(parent.Lhs[len(parent.Lhs)-1]) {
				return "assigned to _", true
			}
			return "", false
		}
		for i, rhs := range parent.Rhs {
			if ast.Unparen(rhs) == call && i < len(parent.Lhs) && isBlank(parent.Lhs[i]) {
				return "assigned to _", true
			}
		}
	}
	return "", false
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// shortName strips the module prefix for readable diagnostics:
// (*webdbsec/internal/wal.WAL).Append -> (*wal.WAL).Append.
func shortName(full string) string {
	return strings.ReplaceAll(full, "webdbsec/internal/", "")
}
