package verdictcheck

import (
	"path/filepath"
	"testing"

	"webdbsec/internal/analysis/analysistest"
)

func TestVerdictCheck(t *testing.T) {
	analysistest.Run(t, Analyzer, filepath.Join("..", "testdata", "src", "verdict"))
}
