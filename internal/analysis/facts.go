package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
	"sort"
)

// Facts are how seclint invariants cross package boundaries. An analyzer
// running on package P may export a fact about a function (or an exported
// struct field) declared in P; when a package importing P is analyzed
// later, the same analyzer sees those facts and can reason about calls
// into P without re-reading its source. The unitchecker persists facts as
// JSON in the vetx file cmd/go hands around (`PackageVetx` on the read
// side, `VetxOutput` on the write side), so propagation rides the exact
// dependency-order scheduling `go vet` already does; analysistest
// re-creates the same flow in-process for testdata packages, round-
// tripping through JSON so the serialized form is what is tested.
//
// A fact is an opaque JSON value keyed by (analyzer name, object key).
// Object keys are stable, human-readable strings:
//
//	func:(*webdbsec/internal/reldb.Database).ExecStmt
//	field:webdbsec/internal/credential.Credential.Signature
//
// Keys carry the package path, so one merged PackageFacts map can hold
// the facts of every dependency at once.

// PackageFacts maps analyzer name → object key → serialized fact.
type PackageFacts map[string]map[string]json.RawMessage

// FuncKey returns the fact key for a function or method.
func FuncKey(fn *types.Func) string {
	return "func:" + fn.FullName()
}

// FieldKey returns the fact key for a struct field, identified by the
// declaring package, the named type and the field name.
func FieldKey(pkg *types.Package, typeName, fieldName string) string {
	return "field:" + pkg.Path() + "." + typeName + "." + fieldName
}

// Merge folds src into f, overwriting on key collision (facts are
// per-package, so collisions only happen when the same package is seen
// twice — the values are identical).
func (f PackageFacts) Merge(src PackageFacts) {
	for analyzer, objs := range src {
		dst := f[analyzer]
		if dst == nil {
			dst = make(map[string]json.RawMessage, len(objs))
			f[analyzer] = dst
		}
		for k, v := range objs {
			dst[k] = v
		}
	}
}

// Encode renders the facts as deterministic JSON (sorted keys — the
// output lands in go vet's build cache, so byte-stable encodings avoid
// spurious cache misses).
func (f PackageFacts) Encode() ([]byte, error) {
	// json.Marshal already sorts map keys; the explicit type keeps the
	// shape documented here in one place.
	type wire map[string]map[string]json.RawMessage
	return json.Marshal(wire(f))
}

// DecodeFacts parses a fact file. Empty input (the pre-fact vetx files,
// or a dependency outside the module) decodes as no facts.
func DecodeFacts(data []byte) (PackageFacts, error) {
	if len(data) == 0 {
		return PackageFacts{}, nil
	}
	var f PackageFacts
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("analysis: decoding facts: %w", err)
	}
	if f == nil {
		f = PackageFacts{}
	}
	return f, nil
}

// ExportFact records a fact about obj under the pass's analyzer. Facts
// are only useful on exported or cross-package-reachable objects, but
// exporting one about an unexported helper is harmless — importers
// simply never look it up.
func (p *Pass) ExportFact(key string, fact any) {
	if p.exportFact == nil {
		return
	}
	data, err := json.Marshal(fact)
	if err != nil {
		// Fact types are plain structs defined next to the analyzer; a
		// marshal failure is a bug there, not an input condition.
		panic(fmt.Sprintf("analysis: encoding fact for %s: %v", key, err))
	}
	p.exportFact(p.Analyzer.Name, key, data)
}

// ImportFact decodes the fact stored for key by this pass's analyzer in
// a dependency package, reporting whether one exists.
func (p *Pass) ImportFact(key string, out any) bool {
	objs := p.ImportedFacts[p.Analyzer.Name]
	raw, ok := objs[key]
	if !ok {
		return false
	}
	return json.Unmarshal(raw, out) == nil
}

// FactKeys lists the keys this pass's analyzer has facts for, sorted —
// handy for tests and debugging.
func (p *Pass) FactKeys() []string {
	var keys []string
	for k := range p.ImportedFacts[p.Analyzer.Name] {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
