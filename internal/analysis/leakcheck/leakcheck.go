// Package leakcheck defines an Analyzer that keeps secret material out
// of logs, error strings and debug output.
//
// # Analyzer leakcheck
//
// leakcheck: secrets must not reach logs, error text or debug surfaces
// except through an explicit redaction helper.
//
// The analyzer runs the shared interprocedural engine
// (internal/analysis/taint) with the secrecy vocabulary of this
// repository:
//
//   - Origins: every value of type crypto/ed25519.PrivateKey, plus any
//     struct field or function annotated `// seclint:secret` — wallet
//     credential bytes, token nonces, the demo cluster secret, replay
//     cache keys. Field annotations travel as analysis facts, so
//     reading credential.Wallet's secret bytes in another package still
//     taints.
//
//   - Declassifiers: signing (the signature is public), deriving the
//     public half, hashing, and any function annotated
//     `// seclint:sanitizer` — in-tree the fingerprint/redaction
//     helpers (credential.Fingerprint, credential.Redact) that reduce a
//     secret to a short non-invertible form safe to print.
//
//   - Sinks: the fmt print/format family that produces user-visible
//     text (fmt.Errorf, fmt.Print*), the log package, errors.New,
//     http.Error, and anything annotated `// seclint:sink` (debugz
//     expvar publication).
//
// A flow may be silenced with `// seclint:taint-exempt <reason>` on the
// flagged line or the line above; annotcheck rejects a bare exemption
// with no reason.
package leakcheck

import (
	"fmt"
	"go/types"

	"webdbsec/internal/analysis"
	"webdbsec/internal/analysis/taint"
)

var Analyzer = &analysis.Analyzer{
	Name:         "leakcheck",
	Doc:          "secret material must not reach logs, errors or debug output unredacted",
	Run:          run,
	ExportsFacts: true,
}

func run(pass *analysis.Pass) error {
	return taint.Run(pass, &taint.Config{
		OriginVerb:       "secret",
		Kind:             "secret",
		OriginType:       secretType,
		OpaqueContainers: true,
		IntrinsicSanitizer: func(callee *types.Func) bool {
			return declassifiers[callee.FullName()]
		},
		IntrinsicSink: func(callee *types.Func) ([]int, string, bool) {
			full := callee.FullName()
			if textSinks[full] {
				return nil, full, true // nil index list = every argument
			}
			return nil, "", false
		},
		Message: func(sink, origin string) string {
			src := ""
			if origin != "" {
				src = fmt.Sprintf(" (%s)", origin)
			}
			return fmt.Sprintf("secret%s reaches %s; redact or fingerprint it first or add // seclint:taint-exempt <reason>", src, sink)
		},
	})
}

// secretType marks types whose every value is secret material.
func secretType(t types.Type) (string, bool) {
	if isNamed(t, "crypto/ed25519", "PrivateKey") {
		return "ed25519 private key", true
	}
	return "", false
}

func isNamed(t types.Type, pkgPath, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// declassifiers reduce a secret to something safe: a signature, a public
// key, a digest.
var declassifiers = map[string]bool{
	"crypto/ed25519.Sign":                true,
	"(crypto/ed25519.PrivateKey).Sign":   true,
	"(crypto/ed25519.PrivateKey).Public": true,
	"(crypto/ed25519.PrivateKey).Equal":  true,
	"crypto/sha256.Sum256":               true,
	"crypto/hmac.New":                    true,
	"crypto/subtle.ConstantTimeCompare":  true,
}

// textSinks is the fmt/log/error surface where secret bytes become
// operator- or client-visible text.
var textSinks = buildTextSinks()

func buildTextSinks() map[string]bool {
	m := map[string]bool{
		"errors.New":     true,
		"net/http.Error": true,
	}
	// The Sprint family is deliberately absent: formatting a secret into
	// a string propagates taint (the engine's conservative model covers
	// it), and the flow is flagged where that string becomes visible.
	for _, n := range []string{"Errorf", "Print", "Printf", "Println"} {
		m["fmt."+n] = true
	}
	for _, n := range []string{
		"Print", "Printf", "Println",
		"Fatal", "Fatalf", "Fatalln",
		"Panic", "Panicf", "Panicln",
	} {
		m["log."+n] = true
		m["(*log.Logger)."+n] = true
	}
	return m
}
