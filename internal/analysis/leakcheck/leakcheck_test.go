package leakcheck

import (
	"path/filepath"
	"testing"

	"webdbsec/internal/analysis/analysistest"
)

// TestLeakCheck runs over the leakmain fixture, which imports the
// leaksrc sibling: the annotated-field and helper-sink cases cross the
// package boundary as analysis facts.
func TestLeakCheck(t *testing.T) {
	analysistest.Run(t, Analyzer, filepath.Join("..", "testdata", "src", "leakmain"))
}
