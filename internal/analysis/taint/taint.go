// Package taint is the shared interprocedural dataflow engine behind the
// taintflow and leakcheck analyzers. Both check the same shape of
// invariant — values originating at *origins* must not reach *sinks*
// without passing a *sanitizer* — and differ only in their vocabulary:
// taintflow's origins are web-input surfaces and its sinks are execution
// paths into the data tier; leakcheck's origins are secret material and
// its sinks are logs, error text and debug output.
//
// The engine computes one Summary per function, bottom-up over the
// package-local call graph (analysis.LocalFuncs), to a monotone fixpoint:
// taint bits only ever accumulate, so iteration terminates. Summaries of
// other packages in this module arrive as analysis facts (see
// internal/analysis/facts.go); calls into packages with no facts — the
// standard library, mostly — fall back to a conservative model where
// taint propagates from arguments to string-shaped results and to the
// receiver, unless the Config names the callee as an intrinsic source,
// sanitizer or sink.
//
// Within a function the abstraction is deliberately simple: each local
// variable holds a bitmask of origins (bit i = "derives from entry value
// i", where entry values are the receiver followed by the parameters,
// plus one bit for "derives from an origin"). Assignments, range
// statements, composite literals, conversions, string concatenation and
// call results propagate bits; comparisons and bool/numeric results drop
// them (a predicate over a secret is not the secret; a length is not the
// input). The body is re-walked until the variable map stops changing,
// so loops and use-before-def orderings converge.
package taint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"webdbsec/internal/analysis"
)

// originBit marks a value that derives from an origin (a source for
// taintflow, a secret for leakcheck). Lower bits mark derivation from
// the function's entry values (receiver, then parameters).
const originBit uint64 = 1 << 63

// maxEntryBits caps how many entry values get their own bit; functions
// with more parameters than this are handled conservatively (the
// overflow parameters share the last bit).
const maxEntryBits = 62

// Summary is the per-function interprocedural fact: how taint moves
// through a call to this function. It is exported under the analyzer's
// name keyed by analysis.FuncKey, so importing packages see it.
type Summary struct {
	// Origin marks results that are tainted no matter the arguments
	// (the function reads a source / returns secret material). Indices
	// are result positions; a single entry of -1 means every result.
	Origin []int `json:"origin,omitempty"`
	// OriginWitness names the origin for diagnostics.
	OriginWitness string `json:"ow,omitempty"`
	// Sanitizer marks the function as clearing taint: its results are
	// clean whatever its arguments.
	Sanitizer bool `json:"san,omitempty"`
	// Propagate lists entry indices (receiver first, then parameters)
	// whose taint reaches at least one result.
	Propagate []int `json:"prop,omitempty"`
	// SinkParams lists entry indices that reach a sink inside the
	// function (directly or through callees).
	SinkParams []int `json:"sink,omitempty"`
	// SinkWitness names that sink for diagnostics at the call site.
	SinkWitness string `json:"sw,omitempty"`
}

func (s *Summary) equal(o *Summary) bool {
	return s.Sanitizer == o.Sanitizer &&
		s.OriginWitness == o.OriginWitness && s.SinkWitness == o.SinkWitness &&
		equalInts(s.Origin, o.Origin) && equalInts(s.Propagate, o.Propagate) &&
		equalInts(s.SinkParams, o.SinkParams)
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FieldFact marks an exported struct field as an origin — leakcheck's
// secret-annotated fields — keyed by analysis.FieldKey.
type FieldFact struct {
	Origin  bool   `json:"origin"`
	Witness string `json:"w,omitempty"`
}

// Config is one analyzer's vocabulary over the shared engine.
type Config struct {
	// OriginVerb is the annotation verb that marks a function's results
	// or a struct field as an origin ("source" or "secret").
	OriginVerb string
	// Kind names the tainted class in diagnostics ("web input",
	// "secret").
	Kind string
	// IntrinsicOrigin reports whether a call to callee introduces
	// taint, returning the tainted result indices (nil = all results)
	// and a witness string.
	IntrinsicOrigin func(callee *types.Func, call *ast.CallExpr, info *types.Info) ([]int, string, bool)
	// OriginType reports whether every value of this type is an origin
	// (e.g. ed25519.PrivateKey), with a witness.
	OriginType func(t types.Type) (string, bool)
	// IntrinsicSanitizer reports whether a call to callee clears taint.
	IntrinsicSanitizer func(callee *types.Func) bool
	// IntrinsicSink reports whether callee is a sink, returning the
	// entry indices that must stay clean (nil = all) and a witness.
	IntrinsicSink func(callee *types.Func) ([]int, string, bool)
	// CleanType reports types that never carry taint for this analyzer
	// (e.g. context.Context for taintflow): expressions of such a type
	// are always clean, cutting conservative over-propagation.
	CleanType func(t types.Type) bool
	// OpaqueContainers stops struct values from inheriting the taint of
	// values stored in their fields. leakcheck sets this: keys live in
	// unexported struct fields by design, and without it every object
	// that ever held a key — authorities, keyrings, services, whole
	// servers — becomes "secret", drowning real flows in noise. The
	// secret value itself (the key, the annotated field read) stays
	// tracked wherever it moves.
	OpaqueContainers bool
	// Message renders the diagnostic for a clean-path violation.
	Message func(sinkWitness, originWitness string) string
}

// exemptVerb silences one reported flow, with a mandatory reason
// (validated by annotcheck). It applies on the flagged line, the line
// above, or the enclosing function's doc comment.
const exemptVerb = "taint-exempt"

// val is the abstract value of one variable or expression.
type val struct {
	bits    uint64
	witness string // first origin witness that reached this value
}

func (v val) or(o val) val {
	w := v.witness
	if w == "" {
		w = o.witness
	}
	return val{bits: v.bits | o.bits, witness: w}
}

func (v val) hasOrigin() bool { return v.bits&originBit != 0 }

// engine analyzes one package under one Config.
type engine struct {
	pass      *analysis.Pass
	cfg       *Config
	funcs     map[*types.Func]*analysis.FuncNode
	summaries map[*types.Func]*Summary
	// annotated local functions, by directive.
	annOrigin    map[*types.Func]bool
	annSanitizer map[*types.Func]bool
	annSink      map[*types.Func]bool
	// origin-annotated struct fields declared in this package, plus
	// their fact keys for export.
	originFields map[*types.Var]string // field -> witness
	fieldKeys    map[*types.Var]string
	// lineDirectives per file, for taint-exempt.
	lines map[*ast.File]map[int][]analysis.Directive
}

// Run executes the engine over the pass's package: computes summaries to
// fixpoint, reports origin-to-sink flows, and exports facts.
func Run(pass *analysis.Pass, cfg *Config) error {
	e := &engine{
		pass:         pass,
		cfg:          cfg,
		funcs:        analysis.LocalFuncs(pass),
		summaries:    map[*types.Func]*Summary{},
		annOrigin:    map[*types.Func]bool{},
		annSanitizer: map[*types.Func]bool{},
		annSink:      map[*types.Func]bool{},
		originFields: map[*types.Var]string{},
		fieldKeys:    map[*types.Var]string{},
		lines:        map[*ast.File]map[int][]analysis.Directive{},
	}
	e.collectAnnotations()

	// Seed summaries from annotations so even bodyless wrappers carry
	// their declared role.
	for obj := range e.funcs {
		e.summaries[obj] = e.seedSummary(obj)
	}

	// Monotone fixpoint over the package's functions: each round
	// re-derives every summary from the bodies given the previous
	// round's summaries. Bits only accumulate, so this terminates; the
	// round cap is a safety net, not a tuning knob.
	for round := 0; round < len(e.funcs)+2; round++ {
		changed := false
		for obj, node := range e.funcs {
			s := e.analyze(obj, node, nil)
			if !s.equal(e.summaries[obj]) {
				e.summaries[obj] = s
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Reporting pass: re-walk each body with final summaries, emitting
	// a diagnostic for every sink argument carrying origin taint.
	seen := map[token.Pos]bool{}
	for obj, node := range e.funcs {
		e.analyze(obj, node, func(pos token.Pos, msg string) {
			if seen[pos] {
				return
			}
			seen[pos] = true
			pass.Reportf(pos, "%s", msg)
		})
	}

	// Export facts: every function summary with taint effects (importers
	// only look up the ones they call), every annotated exported field,
	// and a package marker. The marker is what lets importers tell
	// "analyzed, no effects" from "never analyzed": a call into a marked
	// package with no function fact is a no-op, while a call into an
	// unmarked one (the standard library) falls back to conservative
	// argument-to-result propagation.
	for obj, s := range e.summaries {
		if s.Sanitizer || len(s.Origin) > 0 || len(s.Propagate) > 0 || len(s.SinkParams) > 0 {
			pass.ExportFact(analysis.FuncKey(obj), s)
		}
	}
	for field, key := range e.fieldKeys {
		pass.ExportFact(key, &FieldFact{Origin: true, Witness: e.originFields[field]})
	}
	pass.ExportFact(pkgMarkerKey(pass.Pkg), true)
	return nil
}

// pkgMarkerKey is the fact key recording that the engine analyzed a
// package in full.
func pkgMarkerKey(pkg *types.Package) string {
	return "pkg:" + pkg.Path()
}

// collectAnnotations walks the files for directive-annotated functions
// and struct fields and indexes line directives.
func (e *engine) collectAnnotations() {
	for _, file := range e.pass.Files {
		if e.pass.InTestFile(file.Pos()) {
			continue
		}
		e.lines[file] = analysis.LineDirectives(e.pass.Fset, file)
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				obj, ok := e.pass.TypesInfo.Defs[d.Name].(*types.Func)
				if !ok {
					continue
				}
				if _, ok := analysis.GroupDirective(d.Doc, e.cfg.OriginVerb); ok {
					e.annOrigin[obj] = true
				}
				if _, ok := analysis.GroupDirective(d.Doc, "sanitizer"); ok {
					e.annSanitizer[obj] = true
				}
				if _, ok := analysis.GroupDirective(d.Doc, "sink"); ok {
					e.annSink[obj] = true
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, f := range st.Fields.List {
						if !e.fieldAnnotated(f) {
							continue
						}
						for _, name := range f.Names {
							fv, ok := e.pass.TypesInfo.Defs[name].(*types.Var)
							if !ok {
								continue
							}
							witness := e.pass.Pkg.Name() + "." + ts.Name.Name + "." + name.Name
							e.originFields[fv] = witness
							e.fieldKeys[fv] = analysis.FieldKey(e.pass.Pkg, ts.Name.Name, name.Name)
						}
					}
				}
			}
		}
	}
}

func (e *engine) fieldAnnotated(f *ast.Field) bool {
	for _, grp := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if _, ok := analysis.GroupDirective(grp, e.cfg.OriginVerb); ok {
			return true
		}
	}
	return false
}

// seedSummary builds the annotation-derived part of a summary.
func (e *engine) seedSummary(obj *types.Func) *Summary {
	s := &Summary{}
	if e.annSanitizer[obj] {
		s.Sanitizer = true
	}
	if e.annOrigin[obj] {
		s.Origin = []int{-1}
		s.OriginWitness = obj.FullName()
	}
	if e.annSink[obj] {
		s.SinkParams = []int{-1}
		s.SinkWitness = obj.FullName()
	}
	return s
}

// entryVars enumerates the function's entry values: receiver first, then
// parameters, each mapped to its bit index.
func entryVars(obj *types.Func) []*types.Var {
	sig := obj.Type().(*types.Signature)
	var out []*types.Var
	if recv := sig.Recv(); recv != nil {
		out = append(out, recv)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

func entryBit(i int) uint64 {
	if i >= maxEntryBits {
		i = maxEntryBits - 1
	}
	return 1 << i
}

// analyze runs the function-local dataflow and derives a Summary. When
// report is non-nil, origin-to-sink hits are delivered through it.
func (e *engine) analyze(obj *types.Func, node *analysis.FuncNode, report func(token.Pos, string)) *Summary {
	s := e.seedSummary(obj)
	if s.Sanitizer {
		// A sanitizer's contract is total: its body is trusted to
		// validate, so no flows inside it are reported and nothing
		// propagates. (annotcheck rejects sanitizers that return an
		// input unchanged.)
		return s
	}

	fa := &funcAnalysis{
		engine: e,
		fn:     node.Decl,
		vars:   map[types.Object]val{},
		report: report,
	}
	entries := entryVars(obj)
	for i, v := range entries {
		fa.vars[v] = val{bits: entryBit(i)}
		if e.cfg.OriginType != nil {
			if w, ok := e.cfg.OriginType(v.Type()); ok {
				fa.vars[v] = val{bits: entryBit(i) | originBit, witness: w}
			}
		}
	}
	if len(s.Origin) > 0 {
		// Annotated origin: results are tainted by declaration; still
		// analyze the body for internal sink hits.
		fa.extraResult = val{bits: originBit, witness: s.OriginWitness}
	}

	// Inner fixpoint: re-walk the body until variable taints stabilize.
	for round := 0; ; round++ {
		fa.changed = false
		fa.walkBody()
		if !fa.changed || round > 64 {
			break
		}
	}
	// One more walk with reporting enabled happens implicitly: report
	// was active on every walk, but the dedupe in Run keeps one
	// diagnostic per position.

	sig := obj.Type().(*types.Signature)
	nres := sig.Results().Len()
	resultTaint := fa.resultTaint(sig)
	var origin []int
	propagate := map[int]bool{}
	for ri := 0; ri < nres; ri++ {
		rv := resultTaint[ri]
		if fa.extraResult.bits != 0 {
			rv = rv.or(fa.extraResult)
		}
		if rv.hasOrigin() {
			origin = append(origin, ri)
			if s.OriginWitness == "" {
				s.OriginWitness = rv.witness
			}
		}
		for i := range entries {
			if rv.bits&entryBit(i) != 0 {
				propagate[i] = true
			}
		}
	}
	if len(s.Origin) == 0 {
		s.Origin = origin
	}
	for i := range entries {
		if fa.sinkEntry[i] {
			s.SinkParams = append(s.SinkParams, i)
		}
	}
	if s.SinkWitness == "" {
		s.SinkWitness = fa.sinkWitness
	}
	for i := range entries {
		if propagate[i] {
			s.Propagate = append(s.Propagate, i)
		}
	}
	sort.Ints(s.Propagate)
	sort.Ints(s.SinkParams)
	return s
}

// funcAnalysis is the per-function walk state.
type funcAnalysis struct {
	*engine
	fn          *ast.FuncDecl
	vars        map[types.Object]val
	returns     []val // accumulated per-result taints, indexed by result position
	extraResult val
	sinkEntry   [maxEntryBits + 1]bool
	sinkWitness string
	changed     bool
	report      func(token.Pos, string)
}

func (fa *funcAnalysis) setVar(obj types.Object, v val) {
	if obj == nil || v.bits == 0 {
		return
	}
	cur := fa.vars[obj]
	next := cur.or(v)
	if next.bits != cur.bits || (cur.witness == "" && next.witness != "") {
		fa.vars[obj] = next
		fa.changed = true
	}
}

// resultTaint folds the recorded return statements into per-result
// taints, including named result variables.
func (fa *funcAnalysis) resultTaint(sig *types.Signature) []val {
	n := sig.Results().Len()
	out := make([]val, n)
	for i := 0; i < n; i++ {
		if i < len(fa.returns) {
			out[i] = out[i].or(fa.returns[i])
		}
		// Named results may be assigned and returned naked.
		if rv := sig.Results().At(i); rv.Name() != "" {
			out[i] = out[i].or(fa.vars[rv])
		}
	}
	return out
}

func (fa *funcAnalysis) recordReturn(i int, v val) {
	for len(fa.returns) <= i {
		fa.returns = append(fa.returns, val{})
	}
	prev := fa.returns[i]
	next := prev.or(v)
	if next.bits != prev.bits {
		fa.returns[i] = next
		fa.changed = true
	}
}

// walkBody traverses the function body once, propagating taint through
// statements and checking sinks.
func (fa *funcAnalysis) walkBody() {
	ast.Inspect(fa.fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			fa.assign(n)
		case *ast.ValueSpec:
			fa.valueSpec(n)
		case *ast.RangeStmt:
			xv := fa.taintOf(n.X)
			if n.Key != nil {
				fa.assignTo(n.Key, xv)
			}
			if n.Value != nil {
				fa.assignTo(n.Value, xv)
			}
		case *ast.ReturnStmt:
			fa.returnStmt(n)
		case *ast.CallExpr:
			// Evaluate for sink effects even in statement position;
			// taintOf on calls performs the sink check.
			fa.callResults(n)
		case *ast.SendStmt:
			// ch <- v taints the channel variable.
			fa.assignTo(n.Chan, fa.taintOf(n.Value))
		}
		return true
	})
}

func (fa *funcAnalysis) assign(n *ast.AssignStmt) {
	// Tuple assignment from a single multi-result call keeps per-result
	// precision (pub, priv, err := GenerateKey).
	if len(n.Lhs) > 1 && len(n.Rhs) == 1 {
		if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
			results := fa.callResults(call)
			for i, lhs := range n.Lhs {
				if i < len(results) {
					fa.assignTo(lhs, results[i])
				}
			}
			return
		}
		// v, ok := m[k] / x.(T) / <-ch: taint both from the operand.
		v := fa.taintOf(n.Rhs[0])
		for _, lhs := range n.Lhs {
			fa.assignTo(lhs, v)
		}
		return
	}
	for i, lhs := range n.Lhs {
		if i < len(n.Rhs) {
			fa.assignTo(lhs, fa.taintOf(n.Rhs[i]))
		}
	}
}

func (fa *funcAnalysis) valueSpec(n *ast.ValueSpec) {
	if len(n.Values) == 1 && len(n.Names) > 1 {
		if call, ok := ast.Unparen(n.Values[0]).(*ast.CallExpr); ok {
			results := fa.callResults(call)
			for i, name := range n.Names {
				if i < len(results) {
					fa.setVar(fa.pass.TypesInfo.Defs[name], results[i])
				}
			}
			return
		}
	}
	for i, name := range n.Names {
		if i < len(n.Values) {
			fa.setVar(fa.pass.TypesInfo.Defs[name], fa.taintOf(n.Values[i]))
		}
	}
}

func (fa *funcAnalysis) returnStmt(n *ast.ReturnStmt) {
	if len(n.Results) == 1 {
		if call, ok := ast.Unparen(n.Results[0]).(*ast.CallExpr); ok {
			if results := fa.callResults(call); len(results) > 1 {
				for i, v := range results {
					fa.recordReturn(i, v)
				}
				return
			}
		}
	}
	for i, r := range n.Results {
		fa.recordReturn(i, fa.taintOf(r))
	}
}

// assignTo propagates v into an assignment target. Writes through a
// field, index or dereference taint the root variable: mutation makes
// the container carry the value.
func (fa *funcAnalysis) assignTo(lhs ast.Expr, v val) {
	if v.bits == 0 {
		return
	}
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj := fa.pass.TypesInfo.Defs[l]
		if obj == nil {
			obj = fa.pass.TypesInfo.Uses[l]
		}
		fa.setVar(obj, v)
	case *ast.SelectorExpr:
		if !fa.cfg.OpaqueContainers {
			fa.assignTo(l.X, v)
		}
	case *ast.IndexExpr:
		fa.assignTo(l.X, v)
	case *ast.StarExpr:
		fa.assignTo(l.X, v)
	case *ast.SliceExpr:
		fa.assignTo(l.X, v)
	}
}

// taintOf computes the abstract value of an expression.
func (fa *funcAnalysis) taintOf(e ast.Expr) val {
	if e == nil {
		return val{}
	}
	// Type-intrinsic origins (e.g. ed25519.PrivateKey) mark any
	// expression of the type, wherever it came from; clean types never
	// carry taint, whatever fed them.
	if tv, ok := fa.pass.TypesInfo.Types[e]; ok && tv.Value == nil && tv.Type != nil {
		if fa.cfg.CleanType != nil && fa.cfg.CleanType(tv.Type) {
			return val{}
		}
		if fa.cfg.OriginType != nil {
			if w, ok := fa.cfg.OriginType(tv.Type); ok {
				return val{bits: originBit, witness: w}
			}
		}
	}
	switch e := e.(type) {
	case *ast.Ident:
		obj := fa.pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = fa.pass.TypesInfo.Defs[e]
		}
		return fa.vars[obj]
	case *ast.SelectorExpr:
		if v, ok := fa.fieldOrigin(e); ok {
			return v.or(fa.taintOf(e.X))
		}
		return fa.taintOf(e.X)
	case *ast.CallExpr:
		results := fa.callResults(e)
		var v val
		for _, r := range results {
			v = v.or(r)
		}
		return v
	case *ast.BinaryExpr:
		switch e.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
			token.LAND, token.LOR:
			// Predicates are one bit of derived information, not the
			// value itself.
			return val{}
		}
		return fa.taintOf(e.X).or(fa.taintOf(e.Y))
	case *ast.UnaryExpr:
		return fa.taintOf(e.X)
	case *ast.StarExpr:
		return fa.taintOf(e.X)
	case *ast.ParenExpr:
		return fa.taintOf(e.X)
	case *ast.IndexExpr:
		return fa.taintOf(e.X)
	case *ast.SliceExpr:
		return fa.taintOf(e.X)
	case *ast.CompositeLit:
		if fa.cfg.OpaqueContainers && fa.isStructLit(e) {
			return val{}
		}
		var v val
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = v.or(fa.taintOf(kv.Value))
				continue
			}
			v = v.or(fa.taintOf(el))
		}
		return v
	case *ast.TypeAssertExpr:
		return fa.taintOf(e.X)
	}
	return val{}
}

// isStructLit reports whether the composite literal builds a struct
// (as opposed to a slice, array or map, whose elements stay the value).
func (fa *funcAnalysis) isStructLit(e *ast.CompositeLit) bool {
	tv, ok := fa.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isStruct := tv.Type.Underlying().(*types.Struct)
	return isStruct
}

// fieldOrigin reports whether the selector reads an origin-annotated
// struct field, local or imported.
func (fa *funcAnalysis) fieldOrigin(sel *ast.SelectorExpr) (val, bool) {
	obj := fa.pass.TypesInfo.Uses[sel.Sel]
	fv, ok := obj.(*types.Var)
	if !ok || !fv.IsField() {
		return val{}, false
	}
	if w, ok := fa.originFields[fv]; ok {
		return val{bits: originBit, witness: w}, true
	}
	// Imported field: reconstruct the fact key from the selection's
	// receiver type.
	selInfo, ok := fa.pass.TypesInfo.Selections[sel]
	if !ok || fv.Pkg() == nil || fv.Pkg() == fa.pass.Pkg {
		return val{}, false
	}
	recv := selInfo.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return val{}, false
	}
	key := analysis.FieldKey(fv.Pkg(), named.Obj().Name(), fv.Name())
	var fact FieldFact
	if fa.pass.ImportFact(key, &fact) && fact.Origin {
		return val{bits: originBit, witness: fact.Witness}, true
	}
	return val{}, false
}

// callResults computes the per-result taints of a call, applying the
// sink check to its arguments.
func (fa *funcAnalysis) callResults(call *ast.CallExpr) []val {
	info := fa.pass.TypesInfo
	// Conversions: string(b), []byte(s), T(x) — taint flows through.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return []val{fa.taintOf(call.Args[0])}
		}
		return []val{{}}
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				var v val
				for _, a := range call.Args {
					v = v.or(fa.taintOf(a))
				}
				return []val{v}
			case "copy":
				if len(call.Args) == 2 {
					fa.assignTo(call.Args[0], fa.taintOf(call.Args[1]))
				}
				return []val{{}}
			default:
				// len, cap, min, max, make, new, delete, panic, ...
				return []val{{}}
			}
		}
	}

	callee := analysis.Callee(info, call)
	args := fa.callArgs(call, callee)

	if callee == nil {
		// Indirect call through a function value: conservative
		// propagation into one result.
		var v val
		for _, a := range args {
			v = v.or(a)
		}
		if tv, ok := info.Types[call]; ok && tv.Type != nil && cleanResultType(tv.Type) {
			return []val{{}}
		}
		return []val{v}
	}

	sum := fa.summaryFor(callee)

	// Sink check: intrinsic table, local/imported summary, or
	// annotation. Report origin-tainted arguments; fold entry-tainted
	// arguments into this function's own summary.
	fa.checkSink(call, callee, sum, args)

	// Sanitizers clear everything.
	if fa.annSanitizer[callee] || (sum != nil && sum.Sanitizer) ||
		(fa.cfg.IntrinsicSanitizer != nil && fa.cfg.IntrinsicSanitizer(callee)) {
		return fa.cleanResults(callee)
	}

	// Intrinsic origins (e.g. http.Request.FormValue) taint the listed
	// results.
	if fa.cfg.IntrinsicOrigin != nil {
		if resIdx, w, ok := fa.cfg.IntrinsicOrigin(callee, call, info); ok {
			return fa.originResults(callee, resIdx, w, args)
		}
	}

	if sum != nil {
		return fa.summaryResults(callee, sum, args)
	}

	// Unknown callee (standard library, no facts): taint propagates
	// from arguments to string-shaped results and into the receiver —
	// bytes written into a bytes.Buffer come back out of its String.
	var v val
	for _, a := range args {
		v = v.or(a)
	}
	if v.bits != 0 {
		if selExpr, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
				fa.assignTo(selExpr.X, v)
			}
		}
	}
	return fa.spreadResults(callee, v)
}

// callArgs lines call arguments up with entry indices: receiver first
// for methods, then the positional arguments.
func (fa *funcAnalysis) callArgs(call *ast.CallExpr, callee *types.Func) []val {
	var args []val
	if callee != nil {
		if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				args = append(args, fa.taintOf(sel.X))
			} else {
				args = append(args, val{})
			}
		}
	}
	for _, a := range call.Args {
		args = append(args, fa.taintOf(a))
	}
	return args
}

// summaryFor resolves a callee's summary: local fixpoint state for
// same-package functions, imported facts for the rest of the module.
func (fa *funcAnalysis) summaryFor(callee *types.Func) *Summary {
	if s, ok := fa.summaries[callee]; ok {
		return s
	}
	if callee.Pkg() == nil || callee.Pkg() == fa.pass.Pkg {
		return nil
	}
	var s Summary
	if fa.pass.ImportFact(analysis.FuncKey(callee), &s) {
		return &s
	}
	// No fact, but the package was analyzed: the callee has no taint
	// effects. Without the marker it would fall into the conservative
	// unknown-callee model and manufacture flows that do not exist.
	var analyzed bool
	if fa.pass.ImportFact(pkgMarkerKey(callee.Pkg()), &analyzed) && analyzed {
		return &Summary{}
	}
	return nil
}

// checkSink reports origin-tainted arguments reaching a sink and records
// entry-tainted ones in the current function's summary.
func (fa *funcAnalysis) checkSink(call *ast.CallExpr, callee *types.Func, sum *Summary, args []val) {
	var sinkIdx []int
	var witness string
	switch {
	case fa.cfg.IntrinsicSink != nil:
		if idx, w, ok := fa.cfg.IntrinsicSink(callee); ok {
			sinkIdx, witness = idx, w
			break
		}
		fallthrough
	default:
		if sum != nil && len(sum.SinkParams) > 0 {
			sinkIdx, witness = sum.SinkParams, sum.SinkWitness
			if witness == "" {
				witness = callee.FullName()
			}
		} else if fa.annSink[callee] {
			sinkIdx = []int{-1}
			witness = callee.FullName()
		}
	}
	if witness == "" {
		return
	}
	// An exemption on the call line (or the enclosing function) vouches
	// for this flow entirely: the call stops being a sink, so the
	// exemption is not re-litigated in every caller up the chain.
	if fa.exempt(call.Pos()) {
		return
	}
	all := sinkIdx == nil || (len(sinkIdx) == 1 && sinkIdx[0] == -1)
	idxSet := map[int]bool{}
	for _, i := range sinkIdx {
		idxSet[i] = true
	}
	// Variadic overflow arguments map onto the callee's last entry index.
	lastEntry := calleeEntryCount(callee) - 1
	for i, a := range args {
		if a.bits == 0 {
			continue
		}
		ei := i
		if lastEntry >= 0 && ei > lastEntry {
			ei = lastEntry
		}
		if !all && !idxSet[ei] {
			continue
		}
		if a.hasOrigin() {
			if fa.report != nil {
				fa.report(call.Pos(), fa.cfg.Message(witness, a.witness))
			}
			continue
		}
		// Entry-derived taint: this function forwards its own inputs to
		// a sink — callers must know.
		for ei := 0; ei <= maxEntryBits; ei++ {
			if a.bits&entryBit(ei) != 0 && entryBit(ei) != originBit {
				if !fa.sinkEntry[ei] {
					fa.sinkEntry[ei] = true
					fa.changed = true
				}
				if fa.sinkWitness == "" {
					fa.sinkWitness = witness
				}
			}
		}
	}
}

// exempt reports whether the flagged position carries a taint-exempt
// directive: on its line, the line above, or the enclosing function doc.
func (fa *funcAnalysis) exempt(pos token.Pos) bool {
	if _, ok := analysis.GroupDirective(fa.fn.Doc, exemptVerb); ok {
		return true
	}
	for file, lines := range fa.lines {
		f := fa.pass.Fset.File(file.Pos())
		if f == nil || f != fa.pass.Fset.File(pos) {
			continue
		}
		return analysis.HasLineDirective(lines, fa.pass.Fset, pos, exemptVerb)
	}
	return false
}

// cleanResults returns all-clean results sized to the callee.
func (fa *funcAnalysis) cleanResults(callee *types.Func) []val {
	return make([]val, resultCount(callee))
}

// originResults taints the listed result indices (nil = all), keeping
// argument propagation for the rest.
func (fa *funcAnalysis) originResults(callee *types.Func, resIdx []int, witness string, args []val) []val {
	n := resultCount(callee)
	out := make([]val, n)
	if resIdx == nil {
		for i := range out {
			out[i] = val{bits: originBit, witness: witness}
		}
		return out
	}
	for _, i := range resIdx {
		if i >= 0 && i < n {
			out[i] = val{bits: originBit, witness: witness}
		}
	}
	return out
}

// summaryResults applies a callee summary to the argument taints.
func (fa *funcAnalysis) summaryResults(callee *types.Func, sum *Summary, args []val) []val {
	n := resultCount(callee)
	out := make([]val, n)
	if len(sum.Origin) == 1 && sum.Origin[0] == -1 {
		for i := range out {
			out[i] = val{bits: originBit, witness: sum.OriginWitness}
		}
	} else {
		for _, ri := range sum.Origin {
			if ri >= 0 && ri < n {
				out[ri] = val{bits: originBit, witness: sum.OriginWitness}
			}
		}
	}
	// Propagation: taint of listed entry args spreads to every result
	// (result-level precision inside the callee is not worth the fact
	// size), except bool/numeric/error results — a predicate, count or
	// failure derived from a tainted value is not the value.
	var carried val
	for _, ei := range sum.Propagate {
		if ei < len(args) {
			carried = carried.or(args[ei])
		}
	}
	if carried.bits != 0 {
		sig, _ := callee.Type().(*types.Signature)
		for i := range out {
			if sig != nil && i < sig.Results().Len() && cleanResultType(sig.Results().At(i).Type()) {
				continue
			}
			out[i] = out[i].or(carried)
		}
	}
	return out
}

// spreadResults distributes v across the callee's results, skipping
// bool/numeric/error-typed ones.
func (fa *funcAnalysis) spreadResults(callee *types.Func, v val) []val {
	n := resultCount(callee)
	out := make([]val, n)
	sig, _ := callee.Type().(*types.Signature)
	for i := range out {
		if sig != nil && i < sig.Results().Len() && cleanResultType(sig.Results().At(i).Type()) {
			continue
		}
		out[i] = v
	}
	return out
}

// calleeEntryCount is the number of entry values (receiver plus
// parameters) of the callee, or -1 if its type is not a signature.
func calleeEntryCount(callee *types.Func) int {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return -1
	}
	n := sig.Params().Len()
	if sig.Recv() != nil {
		n++
	}
	return n
}

func resultCount(callee *types.Func) int {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return 1
	}
	n := sig.Results().Len()
	if n == 0 {
		return 1
	}
	return n
}

// cleanResultType reports result types that drop taint when crossing a
// call with no precise model: bool, numeric and error. A predicate over
// a secret is not the secret; a length is not the input; stdlib error
// values are assumed not to embed the payload (locally-built errors are
// caught at their fmt.Errorf construction, which is a sink).
func cleanResultType(t types.Type) bool {
	if types.Identical(t, errorType) {
		return true
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsBoolean|types.IsNumeric) != 0
}

var errorType = types.Universe.Lookup("error").Type()

// PathMatch is a small helper for intrinsic tables: it reports whether
// the callee is pkgPath.Name or (pkgPath.Recv).Name, using the compact
// spec "pkgpath.Name" / "(pkgpath.Recv).Name" / "(*pkgpath.Recv).Name".
func PathMatch(callee *types.Func, specs ...string) bool {
	if callee == nil {
		return false
	}
	full := callee.FullName()
	for _, s := range specs {
		if s == full {
			return true
		}
	}
	return false
}

// PrefixMatch reports whether the callee lives in pkgPath and its name
// starts with one of the prefixes.
func PrefixMatch(callee *types.Func, pkgPath string, prefixes ...string) bool {
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != pkgPath {
		return false
	}
	for _, p := range prefixes {
		if strings.HasPrefix(callee.Name(), p) {
			return true
		}
	}
	return false
}
