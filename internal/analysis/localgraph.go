package analysis

import (
	"go/ast"
	"go/types"
)

// FuncNode is one function declaration plus its same-package static
// callees. Calls made inside nested function literals are attributed to
// the enclosing declaration: for the properties seclint propagates
// ("performs I/O", "reaches an access-control gate") the work a function
// delegates to its closures is still its work.
type FuncNode struct {
	Decl  *ast.FuncDecl
	Obj   *types.Func
	Calls []*types.Func
}

// LocalFuncs collects every function declared in the package's non-test
// files, with local call edges resolved through the type checker.
func LocalFuncs(pass *Pass) map[*types.Func]*FuncNode {
	funcs := make(map[*types.Func]*FuncNode)
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			node := &FuncNode{Decl: fn, Obj: obj}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := Callee(pass.TypesInfo, call); callee != nil && callee.Pkg() == pass.Pkg {
					node.Calls = append(node.Calls, callee)
				}
				return true
			})
			funcs[obj] = node
		}
	}
	return funcs
}

// Callee resolves a call's static callee, or nil for indirect calls
// through function values.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	if fn != nil {
		// Instantiated generics resolve to a distinct *types.Func per
		// instantiation; summaries, facts and annotations are all keyed
		// by the declared (origin) object.
		fn = fn.Origin()
	}
	return fn
}

// Propagate closes a property over the local call graph: any function
// that calls a marked function inherits its witness string. The seed
// marks functions with direct evidence (e.g. "net/http.(*Client).Do");
// the fixpoint answers "can this function reach one".
func Propagate(funcs map[*types.Func]*FuncNode, seed map[*types.Func]string) map[*types.Func]string {
	marked := make(map[*types.Func]string, len(seed))
	for fn, w := range seed {
		marked[fn] = w
	}
	for changed := true; changed; {
		changed = false
		for obj, node := range funcs {
			if _, ok := marked[obj]; ok {
				continue
			}
			for _, callee := range node.Calls {
				if w, ok := marked[callee]; ok {
					marked[obj] = w
					changed = true
					break
				}
			}
		}
	}
	return marked
}
