package uddi

import (
	"testing"

	"webdbsec/internal/policy"
)

func TestSubscriptionDeliversMatchingChanges(t *testing.T) {
	r := NewRegistry(nil)
	req := &policy.Subject{ID: "watcher"}
	sub := r.Subscribe("watcher", "acme")

	// Changes after subscribing.
	if err := r.SaveBusiness("p1", &BusinessEntity{BusinessKey: "be-1", Name: "Acme Shipping"}); err != nil {
		t.Fatal(err)
	}
	if err := r.SaveBusiness("p2", &BusinessEntity{BusinessKey: "be-2", Name: "Beta Freight"}); err != nil {
		t.Fatal(err)
	}
	changes, high, err := r.SubscriptionResults(req, sub.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 1 || changes[0].BusinessKey != "be-1" || changes[0].Op != ChangeSaved {
		t.Fatalf("changes = %+v", changes)
	}
	if high < changes[0].Seq {
		t.Errorf("high-water %d < delivered seq %d", high, changes[0].Seq)
	}
	// Next poll from the high-water mark: nothing new.
	changes, _, err = r.SubscriptionResults(req, sub.ID, high)
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 0 {
		t.Errorf("duplicate delivery: %+v", changes)
	}
	// An update and a deletion both show up.
	r.SaveBusiness("p1", &BusinessEntity{BusinessKey: "be-1", Name: "Acme Shipping v2"})
	r.DeleteBusiness("p1", "be-1")
	changes, _, err = r.SubscriptionResults(req, sub.ID, high)
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 2 || changes[0].Op != ChangeSaved || changes[1].Op != ChangeDeleted {
		t.Fatalf("changes = %+v", changes)
	}
}

func TestSubscriptionRespectsVisibility(t *testing.T) {
	r := NewRegistry(nil)
	sub := r.Subscribe("watcher", "")
	if err := r.SaveBusiness("p1", &BusinessEntity{BusinessKey: "be-1", Name: "Secret Corp"}); err != nil {
		t.Fatal(err)
	}
	if err := r.SetVisibility("p1", "be-1", &policy.SubjectSpec{Roles: []string{"partner"}}); err != nil {
		t.Fatal(err)
	}
	stranger := &policy.Subject{ID: "watcher"}
	changes, _, err := r.SubscriptionResults(stranger, sub.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range changes {
		if c.Op == ChangeSaved && c.BusinessKey == "be-1" {
			t.Error("restricted entity leaked through change feed")
		}
	}
	partner := &policy.Subject{ID: "watcher", Roles: []string{"partner"}}
	changes, _, err = r.SubscriptionResults(partner, sub.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 1 {
		t.Errorf("partner changes = %+v", changes)
	}
}

func TestSubscriptionLifecycle(t *testing.T) {
	r := NewRegistry(nil)
	sub := r.Subscribe("alice", "x")
	if err := r.Unsubscribe("mallory", sub.ID); err == nil {
		t.Error("foreign unsubscribe accepted")
	}
	if err := r.Unsubscribe("alice", sub.ID); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.SubscriptionResults(&policy.Subject{ID: "alice"}, sub.ID, 0); err == nil {
		t.Error("results served for dead subscription")
	}
	if err := r.Unsubscribe("alice", "ghost"); err == nil {
		t.Error("unknown subscription unsubscribed")
	}
}
