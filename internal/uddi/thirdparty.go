package uddi

import (
	"fmt"

	"webdbsec/internal/accessctl"
	"webdbsec/internal/decisioncache"
	"webdbsec/internal/merkle"
	"webdbsec/internal/policy"
	"webdbsec/internal/resilience"
	"webdbsec/internal/wsig"
	"webdbsec/internal/xmldoc"
)

// This file implements the untrusted third-party deployment of §4.1: "the
// service provider sends the discovery agency a summary signature,
// generated using a technique based on Merkle hash trees, for each entry
// it is entitled to manage. When a service requestor queries the UDDI
// registry, the discovery agency sends it, besides the query result, also
// the signatures of the entries ... the requestor can locally recompute
// the same hash value signed by the service provider ... since a requestor
// may be returned only selected portions of an entry ... the discovery
// agency sends the requestor a set of additional hash values, referring to
// the missing portions."

// SignedEntry is what a provider hands a discovery agency: the entry in
// its XML form plus the Merkle summary signature over it.
type SignedEntry struct {
	Entity  *xmldoc.Document
	Summary merkle.SummarySignature
}

// Provider is the service-provider actor: it owns entries and signs them.
type Provider struct {
	Name   string
	signer *wsig.Signer
}

// NewProvider creates a provider with a fresh signing key.
func NewProvider(name string) (*Provider, error) {
	s, err := wsig.NewSigner(name)
	if err != nil {
		return nil, err
	}
	return &Provider{Name: name, signer: s}, nil
}

// PublicKey returns the provider's verification key, to be registered in
// requestors' key directories out of band.
func (p *Provider) PublicKey() *wsig.Signer { return p.signer }

// Signer returns the provider's signer (for registering in a
// wsig.KeyDirectory).
func (p *Provider) Signer() *wsig.Signer { return p.signer }

// Sign converts the entity to XML and produces the signed entry.
func (p *Provider) Sign(e *BusinessEntity) (SignedEntry, error) {
	if err := e.Validate(); err != nil {
		return SignedEntry{}, err
	}
	doc := e.ToXML()
	return SignedEntry{Entity: doc, Summary: merkle.Sign(doc, p.signer)}, nil
}

// AuthenticatedResult is what the untrusted agency returns for a drill-
// down query: the (possibly pruned) view, the Merkle proof for the pruned
// portions, and the provider's summary signature.
type AuthenticatedResult struct {
	View    *xmldoc.Document
	Proof   *merkle.Proof
	Summary merkle.SummarySignature
}

// UntrustedAgency is a discovery agency that is NOT trusted for
// authenticity: it stores provider-signed entries, applies the providers'
// access control policies when answering queries (a malicious agency may
// of course fail to — which verification then exposes as either a missing
// portion covered by an auxiliary hash, or a signature failure), and
// attaches Merkle proofs to every answer.
type UntrustedAgency struct {
	store   *xmldoc.Store
	engine  *decisioncache.Engine
	entries map[string]SignedEntry // businessKey -> entry
}

// NewUntrustedAgency creates an agency enforcing the given policy base
// over the entries it hosts. Policies address entries by document name
// "uddi:<businessKey>". Decisions run through a cache: repeated inquiries
// by the same role class reuse one label vector per entry until the base
// or the entry changes.
func NewUntrustedAgency(base *policy.Base) *UntrustedAgency {
	store := xmldoc.NewStore()
	return &UntrustedAgency{
		store:   store,
		engine:  decisioncache.NewEngine(accessctl.NewEngine(store, base), 0),
		entries: make(map[string]SignedEntry),
	}
}

// CacheStats snapshots the agency's decision-cache counters.
func (a *UntrustedAgency) CacheStats() decisioncache.EngineStats { return a.engine.Stats() }

// Publish stores a signed entry. The agency does not (and cannot) validate
// the signature against content it might later tamper with — requestors
// verify.
func (a *UntrustedAgency) Publish(entry SignedEntry) error {
	if entry.Entity == nil || entry.Entity.Root == nil {
		return fmt.Errorf("uddi: empty signed entry")
	}
	key, ok := entry.Entity.Root.Attr("businessKey")
	if !ok || key == "" {
		return fmt.Errorf("uddi: signed entry missing businessKey")
	}
	a.store.Put(entry.Entity)
	a.entries[key] = entry
	return nil
}

// DocName returns the store name of an entry's document.
func DocName(businessKey string) string { return "uddi:" + businessKey }

// Query answers a drill-down inquiry for one entry: the view is the entry
// pruned to what the requestor may see under the installed policies, and
// the proof lets the requestor verify authenticity and completeness.
func (a *UntrustedAgency) Query(req *policy.Subject, businessKey string) (*AuthenticatedResult, error) {
	entry, ok := a.entries[businessKey]
	if !ok {
		// Terminal: retrying the same key cannot make it exist.
		return nil, resilience.MarkTerminal(fmt.Errorf("uddi: invalid key %s", businessKey))
	}
	labels := a.engine.Labels(entry.Entity, req, policy.Read)
	view, proof := merkle.PruneWithProof(entry.Entity, func(n *xmldoc.Node) bool {
		return labels[n.ID()]
	})
	if view == nil {
		return nil, resilience.MarkTerminal(fmt.Errorf("uddi: access denied to %s", businessKey))
	}
	return &AuthenticatedResult{View: view, Proof: proof, Summary: entry.Summary}, nil
}

// Verify is the requestor-side check: it validates the result's view and
// proof against the providers' key directory. On success the view can be
// trusted to be authentic (exactly what the provider published) and
// complete (every omission is covered by a disclosed hash).
func (r *AuthenticatedResult) Verify(dir *wsig.KeyDirectory) error {
	return merkle.VerifyView(r.View, r.Proof, r.Summary, dir)
}

// Entity parses the verified view back into struct form. Call Verify
// first; Entity does not re-verify. Pruned views may lack fields the
// original had — Validate still applies to what remains.
func (r *AuthenticatedResult) Entity() (*BusinessEntity, error) {
	return EntityFromXML(r.View)
}

// TrustedAgency is the trusted third-party baseline: it enforces the same
// policies but serves plaintext views with no proofs — requestors must
// take its answers on faith ("the main drawback of this solution is that
// large web-based systems cannot be easily verified to be trusted and can
// be easily penetrated", §4.1). Benchmarks compare the two.
type TrustedAgency struct {
	store  *xmldoc.Store
	engine *accessctl.Engine
}

// NewTrustedAgency creates the baseline agency.
func NewTrustedAgency(base *policy.Base) *TrustedAgency {
	store := xmldoc.NewStore()
	return &TrustedAgency{store: store, engine: accessctl.NewEngine(store, base)}
}

// Publish stores a plaintext entry.
func (a *TrustedAgency) Publish(e *BusinessEntity) error {
	if err := e.Validate(); err != nil {
		return err
	}
	a.store.Put(e.ToXML())
	return nil
}

// Query returns the policy-filtered view with no authenticity evidence.
func (a *TrustedAgency) Query(req *policy.Subject, businessKey string) (*xmldoc.Document, error) {
	v := a.engine.View(DocName(businessKey), req, policy.Read)
	if v == nil {
		return nil, fmt.Errorf("uddi: access denied or unknown key %s", businessKey)
	}
	return v, nil
}
