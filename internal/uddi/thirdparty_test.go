package uddi

import (
	"strings"
	"testing"

	"webdbsec/internal/policy"
	"webdbsec/internal/wsig"
	"webdbsec/internal/xmldoc"
)

// thirdPartySetup builds: a provider with a signed Acme entry, an
// untrusted agency hosting it with a policy that hides binding templates
// from non-partners, and the requestors' key directory.
func thirdPartySetup(t *testing.T) (*Provider, *UntrustedAgency, *wsig.KeyDirectory) {
	t.Helper()
	prov, err := NewProvider("acme-provider")
	if err != nil {
		t.Fatal(err)
	}
	base := policy.NewBase(nil)
	base.MustAdd(&policy.Policy{
		Name:    "entry-public",
		Subject: policy.SubjectSpec{IDs: []string{"*"}},
		Object:  policy.ObjectSpec{Doc: DocName("be-acme")},
		Priv:    policy.Read,
		Sign:    policy.Permit,
		Prop:    policy.Cascade,
	})
	base.MustAdd(&policy.Policy{
		Name:    "bindings-partner-only",
		Subject: policy.SubjectSpec{NotRoles: []string{"partner"}},
		Object:  policy.ObjectSpec{Doc: DocName("be-acme"), Path: "//bindingTemplate"},
		Priv:    policy.Read,
		Sign:    policy.Deny,
		Prop:    policy.Cascade,
	})
	agency := NewUntrustedAgency(base)
	entry, err := prov.Sign(sampleEntity())
	if err != nil {
		t.Fatal(err)
	}
	if err := agency.Publish(entry); err != nil {
		t.Fatal(err)
	}
	dir := wsig.NewKeyDirectory()
	dir.RegisterSigner(prov.Signer())
	return prov, agency, dir
}

func TestHonestAgencyVerifies(t *testing.T) {
	_, agency, dir := thirdPartySetup(t)
	res, err := agency.Query(&policy.Subject{ID: "anyone"}, "be-acme")
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(dir); err != nil {
		t.Fatalf("honest result rejected: %v", err)
	}
	// Non-partner view must not contain bindings, and that omission is
	// covered by the proof.
	if strings.Contains(res.View.Canonical(), "bindingTemplate") {
		t.Error("bindings visible to non-partner")
	}
	if res.Proof.NumAuxHashes() == 0 {
		t.Error("expected auxiliary hashes for pruned bindings")
	}
}

func TestPartnerSeesBindingsAndVerifies(t *testing.T) {
	_, agency, dir := thirdPartySetup(t)
	res, err := agency.Query(&policy.Subject{ID: "p1", Roles: []string{"partner"}}, "be-acme")
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(dir); err != nil {
		t.Fatalf("partner result rejected: %v", err)
	}
	if !strings.Contains(res.View.Canonical(), "bindingTemplate") {
		t.Error("partner cannot see bindings")
	}
	e, err := res.Entity()
	if err != nil {
		t.Fatalf("Entity: %v", err)
	}
	if len(e.Services) != 2 || len(e.Services[0].Bindings) != 1 {
		t.Errorf("parsed entity shape wrong: %+v", e)
	}
}

func TestTamperingAgencyCaught(t *testing.T) {
	_, agency, dir := thirdPartySetup(t)
	res, err := agency.Query(&policy.Subject{ID: "p1", Roles: []string{"partner"}}, "be-acme")
	if err != nil {
		t.Fatal(err)
	}
	// The agency rewrites the access point to hijack traffic.
	ap := xmldoc.MustCompilePath("//accessPoint").Select(res.View)
	if len(ap) == 0 {
		t.Fatal("no accessPoint in view")
	}
	ap[0].Children[0].Value = "https://evil.example/intercept"
	if err := res.Verify(dir); err == nil {
		t.Error("tampered access point verified")
	}
}

func TestOmittingAgencyCaught(t *testing.T) {
	_, agency, dir := thirdPartySetup(t)
	res, err := agency.Query(&policy.Subject{ID: "p1", Roles: []string{"partner"}}, "be-acme")
	if err != nil {
		t.Fatal(err)
	}
	// The agency silently drops the shipping service (e.g. to favour a
	// competitor) without disclosing the omission.
	root := res.View.Root
	for i, c := range root.Children {
		if c.Kind == xmldoc.KindElement && c.Name == "businessService" {
			root.Children = append(root.Children[:i], root.Children[i+1:]...)
			break
		}
	}
	if err := res.Verify(dir); err == nil {
		t.Error("silent omission verified: completeness broken")
	}
}

func TestUnknownProviderRejected(t *testing.T) {
	_, agency, _ := thirdPartySetup(t)
	res, err := agency.Query(&policy.Subject{ID: "anyone"}, "be-acme")
	if err != nil {
		t.Fatal(err)
	}
	emptyDir := wsig.NewKeyDirectory()
	if err := res.Verify(emptyDir); err == nil {
		t.Error("result verified with no trusted providers")
	}
}

func TestQueryUnknownKey(t *testing.T) {
	_, agency, _ := thirdPartySetup(t)
	if _, err := agency.Query(nil, "be-ghost"); err == nil {
		t.Error("unknown key accepted")
	}
}

func TestPublishRejectsMalformedEntries(t *testing.T) {
	agency := NewUntrustedAgency(policy.NewBase(nil))
	if err := agency.Publish(SignedEntry{}); err == nil {
		t.Error("empty entry accepted")
	}
	doc := xmldoc.MustParseString("x", `<businessEntity/>`)
	if err := agency.Publish(SignedEntry{Entity: doc}); err == nil {
		t.Error("entry without businessKey accepted")
	}
}

func TestTrustedAgencyBaseline(t *testing.T) {
	base := policy.NewBase(nil)
	base.MustAdd(&policy.Policy{
		Name:    "public",
		Subject: policy.SubjectSpec{IDs: []string{"*"}},
		Object:  policy.ObjectSpec{Doc: DocName("be-acme")},
		Priv:    policy.Read,
		Sign:    policy.Permit,
		Prop:    policy.Cascade,
	})
	agency := NewTrustedAgency(base)
	if err := agency.Publish(sampleEntity()); err != nil {
		t.Fatal(err)
	}
	v, err := agency.Query(&policy.Subject{ID: "anyone"}, "be-acme")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(v.Canonical(), "Acme Logistics") {
		t.Error("trusted agency view incomplete")
	}
	if _, err := agency.Query(&policy.Subject{ID: "x"}, "be-ghost"); err == nil {
		t.Error("unknown key accepted")
	}
}

func TestProviderSignRejectsInvalidEntity(t *testing.T) {
	prov, err := NewProvider("p")
	if err != nil {
		t.Fatal(err)
	}
	bad := sampleEntity()
	bad.Name = ""
	if _, err := prov.Sign(bad); err == nil {
		t.Error("invalid entity signed")
	}
}
