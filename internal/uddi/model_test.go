package uddi

import (
	"testing"
)

func sampleEntity() *BusinessEntity {
	return &BusinessEntity{
		BusinessKey: "be-acme",
		Name:        "Acme Logistics",
		Description: "Shipping and billing services",
		Contacts:    []Contact{{Name: "Ada", Email: "ada@acme.example", Phone: "555-0100"}},
		CategoryBag: []KeyedReference{{TModelKey: "tm-naics", KeyName: "naics", KeyValue: "4885"}},
		Services: []BusinessService{
			{
				ServiceKey: "svc-ship",
				Name:       "shipping",
				Bindings: []BindingTemplate{
					{BindingKey: "bind-ship-1", AccessPoint: "https://acme.example/ship", TModelKeys: []string{"tm-soap"}},
				},
				CategoryBag: []KeyedReference{{TModelKey: "tm-cat", KeyName: "kind", KeyValue: "transport"}},
			},
			{
				ServiceKey: "svc-bill",
				Name:       "billing",
				Bindings: []BindingTemplate{
					{BindingKey: "bind-bill-1", AccessPoint: "https://acme.example/bill"},
				},
			},
		},
	}
}

func TestValidateFillsKeys(t *testing.T) {
	e := sampleEntity()
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if e.Services[0].BusinessKey != "be-acme" {
		t.Error("service businessKey not filled")
	}
	if e.Services[0].Bindings[0].ServiceKey != "svc-ship" {
		t.Error("binding serviceKey not filled")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*BusinessEntity)
	}{
		{"missing businessKey", func(e *BusinessEntity) { e.BusinessKey = "" }},
		{"missing name", func(e *BusinessEntity) { e.Name = "" }},
		{"missing serviceKey", func(e *BusinessEntity) { e.Services[0].ServiceKey = "" }},
		{"duplicate serviceKey", func(e *BusinessEntity) { e.Services[1].ServiceKey = "svc-ship" }},
		{"foreign businessKey on service", func(e *BusinessEntity) { e.Services[0].BusinessKey = "be-other" }},
		{"missing bindingKey", func(e *BusinessEntity) { e.Services[0].Bindings[0].BindingKey = "" }},
		{"foreign serviceKey on binding", func(e *BusinessEntity) { e.Services[0].Bindings[0].ServiceKey = "svc-bill" }},
		{"duplicate bindingKey", func(e *BusinessEntity) {
			e.Services[0].Bindings = append(e.Services[0].Bindings, BindingTemplate{BindingKey: "bind-ship-1"})
		}},
	}
	for _, c := range cases {
		e := sampleEntity()
		c.mut(e)
		if err := e.Validate(); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestTModelValidate(t *testing.T) {
	if err := (&TModel{TModelKey: "tm", Name: "soap"}).Validate(); err != nil {
		t.Error(err)
	}
	if err := (&TModel{Name: "soap"}).Validate(); err == nil {
		t.Error("missing key accepted")
	}
	if err := (&TModel{TModelKey: "tm"}).Validate(); err == nil {
		t.Error("missing name accepted")
	}
}

func TestToXMLRoundTrip(t *testing.T) {
	e := sampleEntity()
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	doc := e.ToXML()
	got, err := EntityFromXML(doc)
	if err != nil {
		t.Fatalf("EntityFromXML: %v", err)
	}
	if got.BusinessKey != e.BusinessKey || got.Name != e.Name || got.Description != e.Description {
		t.Error("entity header fields lost")
	}
	if len(got.Contacts) != 1 || got.Contacts[0].Email != "ada@acme.example" {
		t.Errorf("contacts lost: %+v", got.Contacts)
	}
	if len(got.CategoryBag) != 1 || got.CategoryBag[0].KeyValue != "4885" {
		t.Errorf("categoryBag lost: %+v", got.CategoryBag)
	}
	if len(got.Services) != 2 {
		t.Fatalf("services = %d", len(got.Services))
	}
	s := got.Services[0]
	if s.ServiceKey != "svc-ship" || s.Name != "shipping" {
		t.Errorf("service lost: %+v", s)
	}
	if len(s.Bindings) != 1 || s.Bindings[0].AccessPoint != "https://acme.example/ship" {
		t.Errorf("binding lost: %+v", s.Bindings)
	}
	if len(s.Bindings[0].TModelKeys) != 1 || s.Bindings[0].TModelKeys[0] != "tm-soap" {
		t.Errorf("tModel refs lost: %+v", s.Bindings[0].TModelKeys)
	}
}

func TestToXMLDeterministic(t *testing.T) {
	a := sampleEntity().ToXML().Canonical()
	b := sampleEntity().ToXML().Canonical()
	if a != b {
		t.Error("ToXML not deterministic")
	}
}

func TestEntityFromXMLRejectsWrongRoot(t *testing.T) {
	e := sampleEntity()
	doc := e.ToXML()
	doc.Root.Name = "notAnEntity"
	if _, err := EntityFromXML(doc); err == nil {
		t.Error("wrong root accepted")
	}
	if _, err := EntityFromXML(nil); err == nil {
		t.Error("nil doc accepted")
	}
}

func TestNameMatches(t *testing.T) {
	cases := []struct {
		name, pattern string
		want          bool
	}{
		{"Acme Logistics", "", true},
		{"Acme Logistics", "acme", true},
		{"Acme Logistics", "ACME LOG", true},
		{"Acme Logistics", "logistics", false},
		{"Acme Logistics", `"Acme Logistics"`, true},
		{"Acme Logistics", `"acme logistics"`, true},
		{"Acme Logistics", `"Acme"`, false},
	}
	for _, c := range cases {
		if got := nameMatches(c.name, c.pattern); got != c.want {
			t.Errorf("nameMatches(%q,%q) = %v, want %v", c.name, c.pattern, got, c.want)
		}
	}
}
