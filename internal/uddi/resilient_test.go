package uddi

import (
	"context"
	"errors"
	"testing"
	"time"

	"webdbsec/internal/policy"
	"webdbsec/internal/resilience"
)

// flakyAgency fails a scripted number of times before succeeding.
type flakyAgency struct {
	failures int
	err      error
	calls    int
}

func (a *flakyAgency) Query(req *policy.Subject, businessKey string) (*AuthenticatedResult, error) {
	a.calls++
	if a.calls <= a.failures {
		return nil, a.err
	}
	return &AuthenticatedResult{}, nil
}

var instant = func(context.Context, time.Duration) error { return nil }

func TestResilientAgencyRetriesTransientFailures(t *testing.T) {
	inner := &flakyAgency{failures: 2, err: errors.New("connection reset")}
	ra := &ResilientAgency{
		Inner: inner,
		Retry: resilience.RetryPolicy{MaxAttempts: 4, Sleep: instant},
	}
	res, err := ra.Query(context.Background(), &policy.Subject{ID: "r"}, "k")
	if err != nil || res == nil {
		t.Fatalf("Query = (%v, %v)", res, err)
	}
	if inner.calls != 3 {
		t.Errorf("calls = %d, want 3", inner.calls)
	}
}

func TestResilientAgencyTerminalErrorsNotRetried(t *testing.T) {
	// The real UntrustedAgency marks invalid keys and access denials
	// terminal; verify they pass through on the first attempt.
	base := policyBaseDenyAll(t)
	agency := NewUntrustedAgency(base)
	ra := &ResilientAgency{
		Inner: agency,
		Retry: resilience.RetryPolicy{MaxAttempts: 5, Sleep: instant},
	}
	_, err := ra.Query(context.Background(), &policy.Subject{ID: "r"}, "no-such-key")
	if err == nil {
		t.Fatal("unknown key accepted")
	}
	if resilience.Classify(err) != resilience.Terminal {
		t.Errorf("unknown-key error classified retryable: %v", err)
	}
}

func TestResilientAgencyBreakerOpens(t *testing.T) {
	inner := &flakyAgency{failures: 1 << 30, err: errors.New("down")}
	br := resilience.NewBreaker(resilience.BreakerConfig{FailureThreshold: 3, Cooldown: time.Hour})
	ra := &ResilientAgency{
		Inner:   inner,
		Retry:   resilience.RetryPolicy{MaxAttempts: 3, Sleep: instant},
		Breaker: br,
	}
	if _, err := ra.Query(context.Background(), &policy.Subject{ID: "r"}, "k"); err == nil {
		t.Fatal("query against dead agency succeeded")
	}
	if br.State() != resilience.Open {
		t.Fatalf("breaker = %v after %d failures", br.State(), inner.calls)
	}
	wire := inner.calls
	if _, err := ra.Query(context.Background(), &policy.Subject{ID: "r"}, "k"); !errors.Is(err, resilience.ErrOpen) {
		t.Errorf("open-circuit query error = %v", err)
	}
	if inner.calls != wire {
		t.Errorf("open circuit still reached the agency: %d → %d calls", wire, inner.calls)
	}
}

// policyBaseDenyAll builds an empty policy base: no policies, so every
// entry is invisible and every key lookup fails.
func policyBaseDenyAll(t *testing.T) *policy.Base {
	t.Helper()
	return policy.NewBase(nil)
}
