package uddi

import "testing"

func TestFindBusinessByTModel(t *testing.T) {
	r := regWithAcme(t)
	got := r.FindBusinessByTModel(nil, "tm-soap")
	if len(got) != 1 || got[0].BusinessKey != "be-acme" {
		t.Fatalf("by tModel = %+v", got)
	}
	if got := r.FindBusinessByTModel(nil, "tm-ghost"); len(got) != 0 {
		t.Errorf("unknown tModel matched: %+v", got)
	}
}

func TestGetRegisteredInfo(t *testing.T) {
	r := regWithAcme(t)
	if err := r.SaveTModel("acme-pub", &TModel{TModelKey: "tm-acme", Name: "acme iface"}); err != nil {
		t.Fatal(err)
	}
	info := r.GetRegisteredInfo("acme-pub")
	if len(info.BusinessKeys) != 1 || info.BusinessKeys[0] != "be-acme" {
		t.Errorf("business keys = %v", info.BusinessKeys)
	}
	if len(info.TModelKeys) != 1 || info.TModelKeys[0] != "tm-acme" {
		t.Errorf("tModel keys = %v", info.TModelKeys)
	}
	empty := r.GetRegisteredInfo("stranger")
	if len(empty.BusinessKeys) != 0 || len(empty.TModelKeys) != 0 {
		t.Errorf("stranger info = %+v", empty)
	}
}

func TestDeleteService(t *testing.T) {
	r := regWithAcme(t)
	if err := r.DeleteService("other", "svc-ship"); err == nil {
		t.Error("non-owner service delete accepted")
	}
	if err := r.DeleteService("acme-pub", "svc-ghost"); err == nil {
		t.Error("unknown service delete accepted")
	}
	if err := r.DeleteService("acme-pub", "svc-ship"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.GetServiceDetail(nil, "svc-ship"); err == nil {
		t.Error("deleted service still resolvable")
	}
	if _, err := r.GetBindingDetail(nil, "bind-ship-1"); err == nil {
		t.Error("deleted service's binding still resolvable")
	}
	// The other service survives.
	if _, err := r.GetServiceDetail(nil, "svc-bill"); err != nil {
		t.Errorf("sibling service lost: %v", err)
	}
	ents, err := r.GetBusinessDetail(nil, "be-acme")
	if err != nil || len(ents[0].Services) != 1 {
		t.Errorf("entity services = %+v, %v", ents, err)
	}
}

func TestDeleteTModelHidesButResolves(t *testing.T) {
	r := NewRegistry(nil)
	if err := r.SaveTModel("pub", &TModel{TModelKey: "tm-x", Name: "x-spec"}); err != nil {
		t.Fatal(err)
	}
	if err := r.DeleteTModel("other", "tm-x"); err == nil {
		t.Error("non-owner tModel delete accepted")
	}
	if err := r.DeleteTModel("pub", "tm-ghost"); err == nil {
		t.Error("unknown tModel delete accepted")
	}
	if err := r.DeleteTModel("pub", "tm-x"); err != nil {
		t.Fatal(err)
	}
	// Hidden from browse...
	if got := r.FindTModel(nil, "x-spec"); len(got) != 0 {
		t.Errorf("hidden tModel browsable: %+v", got)
	}
	// ...but still resolvable by key (bindings may reference it).
	got, err := r.GetTModelDetail(nil, "tm-x")
	if err != nil || len(got) != 1 {
		t.Errorf("hidden tModel not resolvable: %v, %v", got, err)
	}
}
