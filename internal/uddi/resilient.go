package uddi

import (
	"context"

	"webdbsec/internal/policy"
	"webdbsec/internal/resilience"
)

// AgencyQuerier is the drill-down call a requestor makes against a
// third-party discovery agency — implemented by UntrustedAgency locally
// and by remote-backed adapters in deployments where the agency lives
// across the network.
type AgencyQuerier interface {
	Query(req *policy.Subject, businessKey string) (*AuthenticatedResult, error)
}

// ResilientAgency decorates third-party agency calls with retries and a
// circuit breaker: the Trust Brokerage setting assumes brokers that
// degrade gracefully when counterparties misbehave, so a flaky agency is
// retried with backoff and a persistently sick one trips the circuit.
// Terminal errors — invalid keys, access denials — pass through on the
// first attempt and never count against the breaker.
type ResilientAgency struct {
	Inner AgencyQuerier
	// Retry configures backoff; its zero value means 3 attempts.
	Retry resilience.RetryPolicy
	// Breaker, when non-nil, guards every call.
	Breaker *resilience.Breaker
}

// Query runs the drill-down under ctx with retry and breaker protection.
func (a *ResilientAgency) Query(ctx context.Context, req *policy.Subject, businessKey string) (*AuthenticatedResult, error) {
	return resilience.RetryValue(ctx, a.Retry, func(ctx context.Context) (*AuthenticatedResult, error) {
		if a.Breaker != nil {
			if err := a.Breaker.Allow(); err != nil {
				return nil, err
			}
		}
		res, err := a.Inner.Query(req, businessKey)
		if a.Breaker != nil {
			a.Breaker.Record(err)
		}
		return res, err
	})
}
