// Package uddi implements the UDDI registry the paper's Web Service
// Architecture rests on (§2.2): "an UDDI registry is a collection of
// entries, each of one providing information on a specific web service.
// Each entry is in turn composed by five main data structures —
// businessEntity, businessService, bindingTemplate, publisherAssertion,
// and tModel", with the two inquiry styles the paper names: "drill-down
// pattern inquiries (i.e., get_xxx API functions), which return a whole
// core data structure ... and browse pattern inquiries (i.e., find_xxx API
// functions), which return overview information about the registered
// data."
//
// Registries can be deployed two-party (the provider manages its own
// registry) or third-party (a separate discovery agency), and in the
// third-party case either trusted — enforcing the provider's access
// control policies itself — or untrusted, serving Merkle-authenticated
// views the requestor verifies against provider-signed summary signatures
// (see thirdparty.go and §4.1 of the paper).
package uddi

import (
	"fmt"
	"strings"

	"webdbsec/internal/xmldoc"
)

// KeyedReference categorizes an entity against a taxonomy tModel.
type KeyedReference struct {
	TModelKey string
	KeyName   string
	KeyValue  string
}

// Contact is a point of contact of a business entity.
type Contact struct {
	Name  string
	Email string
	Phone string
}

// BindingTemplate carries the technical access information of a service.
type BindingTemplate struct {
	BindingKey  string
	ServiceKey  string
	AccessPoint string
	// TModelKeys reference the interface specifications (tModels) the
	// binding implements.
	TModelKeys []string
}

// BusinessService describes one service offered by a business entity.
type BusinessService struct {
	ServiceKey  string
	BusinessKey string
	Name        string
	Description string
	Bindings    []BindingTemplate
	CategoryBag []KeyedReference
}

// BusinessEntity provides "overall information about the organization
// providing the web service" (§2.2). It is the root of a registry entry.
type BusinessEntity struct {
	BusinessKey string
	Name        string
	Description string
	Contacts    []Contact
	Services    []BusinessService
	CategoryBag []KeyedReference
}

// TModel is a reusable technical specification ("technical model").
type TModel struct {
	TModelKey   string
	Name        string
	Description string
	OverviewURL string
}

// PublisherAssertion records a relationship asserted between two business
// entities (e.g. parent/subsidiary). UDDI only exposes an assertion once
// both sides have asserted it; the registry enforces that.
type PublisherAssertion struct {
	FromKey      string
	ToKey        string
	Relationship string
}

// Validate checks that an entity is well-formed for publication.
func (e *BusinessEntity) Validate() error {
	if e.BusinessKey == "" {
		return fmt.Errorf("uddi: businessEntity missing businessKey")
	}
	if e.Name == "" {
		return fmt.Errorf("uddi: businessEntity %s missing name", e.BusinessKey)
	}
	seen := map[string]bool{}
	for i := range e.Services {
		s := &e.Services[i]
		if s.ServiceKey == "" {
			return fmt.Errorf("uddi: businessEntity %s: service %d missing serviceKey", e.BusinessKey, i)
		}
		if seen[s.ServiceKey] {
			return fmt.Errorf("uddi: businessEntity %s: duplicate serviceKey %s", e.BusinessKey, s.ServiceKey)
		}
		seen[s.ServiceKey] = true
		if s.BusinessKey == "" {
			s.BusinessKey = e.BusinessKey
		} else if s.BusinessKey != e.BusinessKey {
			return fmt.Errorf("uddi: service %s claims businessKey %s inside entity %s",
				s.ServiceKey, s.BusinessKey, e.BusinessKey)
		}
		bseen := map[string]bool{}
		for j := range s.Bindings {
			b := &s.Bindings[j]
			if b.BindingKey == "" {
				return fmt.Errorf("uddi: service %s: binding %d missing bindingKey", s.ServiceKey, j)
			}
			if bseen[b.BindingKey] {
				return fmt.Errorf("uddi: service %s: duplicate bindingKey %s", s.ServiceKey, b.BindingKey)
			}
			bseen[b.BindingKey] = true
			if b.ServiceKey == "" {
				b.ServiceKey = s.ServiceKey
			} else if b.ServiceKey != s.ServiceKey {
				return fmt.Errorf("uddi: binding %s claims serviceKey %s inside service %s",
					b.BindingKey, b.ServiceKey, s.ServiceKey)
			}
		}
	}
	return nil
}

// Validate checks a tModel for publication.
func (t *TModel) Validate() error {
	if t.TModelKey == "" {
		return fmt.Errorf("uddi: tModel missing tModelKey")
	}
	if t.Name == "" {
		return fmt.Errorf("uddi: tModel %s missing name", t.TModelKey)
	}
	return nil
}

// ToXML converts a business entity into the graph-structured document form
// the signing and Merkle machinery operate on. The conversion is
// deterministic: equal entities produce equal canonical documents.
func (e *BusinessEntity) ToXML() *xmldoc.Document {
	b := xmldoc.NewBuilder("uddi:"+e.BusinessKey, "businessEntity")
	b.Attrib("businessKey", e.BusinessKey)
	b.Element("name", e.Name)
	if e.Description != "" {
		b.Element("description", e.Description)
	}
	for _, c := range e.Contacts {
		b.Begin("contact")
		b.Element("personName", c.Name)
		if c.Email != "" {
			b.Element("email", c.Email)
		}
		if c.Phone != "" {
			b.Element("phone", c.Phone)
		}
		b.End()
	}
	writeCategoryBag(b, e.CategoryBag)
	for _, s := range e.Services {
		b.Begin("businessService")
		b.Attrib("serviceKey", s.ServiceKey)
		b.Attrib("businessKey", s.BusinessKey)
		b.Element("name", s.Name)
		if s.Description != "" {
			b.Element("description", s.Description)
		}
		writeCategoryBag(b, s.CategoryBag)
		for _, bt := range s.Bindings {
			b.Begin("bindingTemplate")
			b.Attrib("bindingKey", bt.BindingKey)
			b.Attrib("serviceKey", bt.ServiceKey)
			b.Element("accessPoint", bt.AccessPoint)
			for _, tk := range bt.TModelKeys {
				b.Begin("tModelInstanceInfo").Attrib("tModelKey", tk).End()
			}
			b.End()
		}
		b.End()
	}
	return b.Freeze()
}

func writeCategoryBag(b *xmldoc.Builder, bag []KeyedReference) {
	if len(bag) == 0 {
		return
	}
	b.Begin("categoryBag")
	for _, kr := range bag {
		b.Begin("keyedReference").
			Attrib("tModelKey", kr.TModelKey).
			Attrib("keyName", kr.KeyName).
			Attrib("keyValue", kr.KeyValue).
			End()
	}
	b.End()
}

// EntityFromXML parses a businessEntity document back into its struct
// form; inverse of ToXML.
// seclint:sanitizer
func EntityFromXML(d *xmldoc.Document) (*BusinessEntity, error) {
	if d == nil || d.Root == nil || d.Root.Name != "businessEntity" {
		return nil, fmt.Errorf("uddi: document is not a businessEntity")
	}
	e := &BusinessEntity{}
	e.BusinessKey, _ = d.Root.Attr("businessKey")
	for _, c := range d.Root.ElementChildren() {
		switch c.Name {
		case "name":
			e.Name = c.Text()
		case "description":
			e.Description = c.Text()
		case "contact":
			ct := Contact{}
			if n := c.Child("personName"); n != nil {
				ct.Name = n.Text()
			}
			if n := c.Child("email"); n != nil {
				ct.Email = n.Text()
			}
			if n := c.Child("phone"); n != nil {
				ct.Phone = n.Text()
			}
			e.Contacts = append(e.Contacts, ct)
		case "categoryBag":
			e.CategoryBag = readCategoryBag(c)
		case "businessService":
			s := BusinessService{}
			s.ServiceKey, _ = c.Attr("serviceKey")
			s.BusinessKey, _ = c.Attr("businessKey")
			for _, sc := range c.ElementChildren() {
				switch sc.Name {
				case "name":
					s.Name = sc.Text()
				case "description":
					s.Description = sc.Text()
				case "categoryBag":
					s.CategoryBag = readCategoryBag(sc)
				case "bindingTemplate":
					bt := BindingTemplate{}
					bt.BindingKey, _ = sc.Attr("bindingKey")
					bt.ServiceKey, _ = sc.Attr("serviceKey")
					if ap := sc.Child("accessPoint"); ap != nil {
						bt.AccessPoint = ap.Text()
					}
					for _, ti := range sc.ElementChildren() {
						if ti.Name == "tModelInstanceInfo" {
							if k, ok := ti.Attr("tModelKey"); ok {
								bt.TModelKeys = append(bt.TModelKeys, k)
							}
						}
					}
					s.Bindings = append(s.Bindings, bt)
				}
			}
			e.Services = append(e.Services, s)
		}
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return e, nil
}

func readCategoryBag(n *xmldoc.Node) []KeyedReference {
	var out []KeyedReference
	for _, kr := range n.ElementChildren() {
		if kr.Name != "keyedReference" {
			continue
		}
		var k KeyedReference
		k.TModelKey, _ = kr.Attr("tModelKey")
		k.KeyName, _ = kr.Attr("keyName")
		k.KeyValue, _ = kr.Attr("keyValue")
		out = append(out, k)
	}
	return out
}

// nameMatches implements UDDI-style browse matching: case-insensitive
// prefix by default, with "%" as a trailing wildcard already implied; an
// exact match is requested by surrounding the pattern with quotes.
func nameMatches(name, pattern string) bool {
	if pattern == "" {
		return true
	}
	if len(pattern) >= 2 && strings.HasPrefix(pattern, `"`) && strings.HasSuffix(pattern, `"`) {
		return strings.EqualFold(name, pattern[1:len(pattern)-1])
	}
	return strings.HasPrefix(strings.ToLower(name), strings.ToLower(pattern))
}
