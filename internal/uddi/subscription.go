package uddi

import (
	"fmt"
	"sync/atomic"

	"webdbsec/internal/policy"
)

// UDDI v3 subscription API: requestors register standing queries and poll
// for the registry changes matching them — how a service requestor learns
// that a provider rotated an access point or withdrew a service without
// re-crawling the registry. Results are visibility-filtered at DELIVERY
// time, so an entry that became restricted after the change is not leaked
// through the change feed.

// ChangeOp classifies a registry change.
type ChangeOp string

// Change operations.
const (
	ChangeSaved   ChangeOp = "saved"
	ChangeDeleted ChangeOp = "deleted"
)

// ChangeRecord is one journal entry.
type ChangeRecord struct {
	Seq         int64
	Op          ChangeOp
	BusinessKey string
	// Name is the entity name at change time (for deleted entries the
	// last known name).
	Name string
}

// Subscription is a standing find_business query.
type Subscription struct {
	ID          string
	Subscriber  string
	NamePattern string
}

var subSeq int64

// Subscribe registers a standing query for the requestor and returns the
// subscription.
func (r *Registry) Subscribe(subscriber, namePattern string) *Subscription {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.subs == nil {
		r.subs = make(map[string]*Subscription)
	}
	s := &Subscription{
		ID:          fmt.Sprintf("sub-%d", atomic.AddInt64(&subSeq, 1)),
		Subscriber:  subscriber,
		NamePattern: namePattern,
	}
	r.subs[s.ID] = s
	return s
}

// Unsubscribe removes a subscription; only the subscriber may.
func (r *Registry) Unsubscribe(subscriber, subID string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.subs[subID]
	if !ok {
		return fmt.Errorf("uddi: unknown subscription %s", subID)
	}
	if s.Subscriber != subscriber {
		return fmt.Errorf("uddi: subscription %s belongs to %s", subID, s.Subscriber)
	}
	delete(r.subs, subID)
	return nil
}

// journalLocked appends a change record. Caller holds the write lock.
func (r *Registry) journalLocked(op ChangeOp, businessKey, name string) {
	r.journalSeq++
	r.journal = append(r.journal, ChangeRecord{
		Seq: r.journalSeq, Op: op, BusinessKey: businessKey, Name: name,
	})
}

// SubscriptionResults returns the changes after sinceSeq that match the
// subscription's pattern AND are visible to the requestor now. The
// returned high-water mark feeds the next poll.
func (r *Registry) SubscriptionResults(req *policy.Subject, subID string, sinceSeq int64) ([]ChangeRecord, int64, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.subs[subID]
	if !ok {
		return nil, 0, fmt.Errorf("uddi: unknown subscription %s", subID)
	}
	var out []ChangeRecord
	high := sinceSeq
	for _, c := range r.journal {
		if c.Seq <= sinceSeq {
			continue
		}
		if c.Seq > high {
			high = c.Seq
		}
		if !nameMatches(c.Name, s.NamePattern) {
			continue
		}
		// Visibility at delivery time: deletions of entries the requestor
		// could never see are withheld; surviving entries re-check the
		// current ACL.
		if c.Op == ChangeSaved && !r.visibleLocked(c.BusinessKey, req) {
			continue
		}
		if c.Op == ChangeDeleted {
			// The entry is gone; its ACL went with it. Deliver (the
			// pattern match already scoped it to the subscriber's
			// interest).
		}
		out = append(out, c)
	}
	return out, high, nil
}
