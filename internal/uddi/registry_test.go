package uddi

import (
	"strings"
	"testing"

	"webdbsec/internal/policy"
)

func regWithAcme(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry(nil)
	if err := r.SaveBusiness("acme-pub", sampleEntity()); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSaveAndGetBusinessDetail(t *testing.T) {
	r := regWithAcme(t)
	got, err := r.GetBusinessDetail(&policy.Subject{ID: "anyone"}, "be-acme")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "Acme Logistics" {
		t.Fatalf("detail = %+v", got)
	}
	// The returned copy must not alias registry state.
	got[0].Name = "Mallory Inc"
	again, _ := r.GetBusinessDetail(nil, "be-acme")
	if again[0].Name != "Acme Logistics" {
		t.Error("GetBusinessDetail returns aliased state")
	}
}

func TestOwnershipEnforced(t *testing.T) {
	r := regWithAcme(t)
	e := sampleEntity()
	e.Name = "Acme v2"
	if err := r.SaveBusiness("other-pub", e); err == nil {
		t.Error("non-owner update accepted")
	}
	if err := r.SaveBusiness("acme-pub", e); err != nil {
		t.Errorf("owner update rejected: %v", err)
	}
	if err := r.DeleteBusiness("other-pub", "be-acme"); err == nil {
		t.Error("non-owner delete accepted")
	}
	if err := r.DeleteBusiness("acme-pub", "be-acme"); err != nil {
		t.Errorf("owner delete rejected: %v", err)
	}
	if r.Len() != 0 {
		t.Error("entity survives delete")
	}
	if err := r.DeleteBusiness("acme-pub", "be-acme"); err == nil {
		t.Error("double delete accepted")
	}
}

func TestAnonymousPublishRejected(t *testing.T) {
	r := NewRegistry(nil)
	if err := r.SaveBusiness("", sampleEntity()); err == nil {
		t.Error("anonymous publish accepted")
	}
}

func TestServiceKeyHijackRejected(t *testing.T) {
	r := regWithAcme(t)
	thief := &BusinessEntity{
		BusinessKey: "be-thief",
		Name:        "Thief Corp",
		Services:    []BusinessService{{ServiceKey: "svc-ship", Name: "stolen"}},
	}
	if err := r.SaveBusiness("thief-pub", thief); err == nil {
		t.Error("serviceKey hijack accepted")
	}
	thief.Services[0].ServiceKey = "svc-new"
	thief.Services[0].Bindings = []BindingTemplate{{BindingKey: "bind-ship-1"}}
	if err := r.SaveBusiness("thief-pub", thief); err == nil {
		t.Error("bindingKey hijack accepted")
	}
}

func TestUpdateReindexesServices(t *testing.T) {
	r := regWithAcme(t)
	e := sampleEntity()
	e.Services = e.Services[:1] // drop billing
	if err := r.SaveBusiness("acme-pub", e); err != nil {
		t.Fatal(err)
	}
	if _, err := r.GetServiceDetail(nil, "svc-bill"); err == nil {
		t.Error("stale service index entry")
	}
	// The dropped key is now free for another publisher.
	other := &BusinessEntity{
		BusinessKey: "be-other", Name: "Other",
		Services: []BusinessService{{ServiceKey: "svc-bill", Name: "billing2"}},
	}
	if err := r.SaveBusiness("other-pub", other); err != nil {
		t.Errorf("freed key rejected: %v", err)
	}
}

func TestGetServiceAndBindingDetail(t *testing.T) {
	r := regWithAcme(t)
	svcs, err := r.GetServiceDetail(nil, "svc-ship")
	if err != nil {
		t.Fatal(err)
	}
	if len(svcs) != 1 || svcs[0].Name != "shipping" {
		t.Fatalf("service = %+v", svcs)
	}
	binds, err := r.GetBindingDetail(nil, "bind-bill-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(binds) != 1 || binds[0].AccessPoint != "https://acme.example/bill" {
		t.Fatalf("binding = %+v", binds)
	}
	if _, err := r.GetServiceDetail(nil, "svc-ghost"); err == nil {
		t.Error("unknown service key accepted")
	}
	if _, err := r.GetBindingDetail(nil, "bind-ghost"); err == nil {
		t.Error("unknown binding key accepted")
	}
}

func TestTModels(t *testing.T) {
	r := NewRegistry(nil)
	if err := r.SaveTModel("pub", &TModel{TModelKey: "tm-soap", Name: "SOAP 1.1"}); err != nil {
		t.Fatal(err)
	}
	if err := r.SaveTModel("other", &TModel{TModelKey: "tm-soap", Name: "hijack"}); err == nil {
		t.Error("tModel hijack accepted")
	}
	got, err := r.GetTModelDetail(nil, "tm-soap")
	if err != nil || len(got) != 1 || got[0].Name != "SOAP 1.1" {
		t.Fatalf("tModel detail = %+v, %v", got, err)
	}
	infos := r.FindTModel(nil, "soap")
	if len(infos) != 1 {
		t.Errorf("FindTModel = %+v", infos)
	}
}

func TestVisibilitySpec(t *testing.T) {
	r := regWithAcme(t)
	spec := &policy.SubjectSpec{Roles: []string{"partner"}}
	if err := r.SetVisibility("other-pub", "be-acme", spec); err == nil {
		t.Error("non-owner visibility change accepted")
	}
	if err := r.SetVisibility("acme-pub", "be-acme", spec); err != nil {
		t.Fatal(err)
	}
	stranger := &policy.Subject{ID: "stranger"}
	partner := &policy.Subject{ID: "p1", Roles: []string{"partner"}}

	if _, err := r.GetBusinessDetail(stranger, "be-acme"); err == nil {
		t.Error("hidden entity visible to stranger")
	}
	if _, err := r.GetBusinessDetail(partner, "be-acme"); err != nil {
		t.Errorf("partner denied: %v", err)
	}
	if got := r.FindBusiness(stranger, "acme", nil); len(got) != 0 {
		t.Error("hidden entity listed in browse for stranger")
	}
	if got := r.FindBusiness(partner, "acme", nil); len(got) != 1 {
		t.Error("partner cannot browse")
	}
	// nil requestor is anonymous: denied on restricted entries.
	if _, err := r.GetBusinessDetail(nil, "be-acme"); err == nil {
		t.Error("anonymous sees restricted entry")
	}
	// Reset to public.
	if err := r.SetVisibility("acme-pub", "be-acme", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r.GetBusinessDetail(stranger, "be-acme"); err != nil {
		t.Errorf("public entity denied: %v", err)
	}
}

func TestFindBusinessPatternsAndCategories(t *testing.T) {
	r := regWithAcme(t)
	beta := &BusinessEntity{BusinessKey: "be-beta", Name: "Beta Freight"}
	if err := r.SaveBusiness("beta-pub", beta); err != nil {
		t.Fatal(err)
	}
	if got := r.FindBusiness(nil, "", nil); len(got) != 2 {
		t.Errorf("browse all = %d, want 2", len(got))
	}
	if got := r.FindBusiness(nil, "beta", nil); len(got) != 1 || got[0].Name != "Beta Freight" {
		t.Errorf("prefix browse = %+v", got)
	}
	cat := &KeyedReference{TModelKey: "tm-naics", KeyValue: "4885"}
	if got := r.FindBusiness(nil, "", cat); len(got) != 1 || got[0].BusinessKey != "be-acme" {
		t.Errorf("category browse = %+v", got)
	}
	// Browse returns overview info, not full structures.
	got := r.FindBusiness(nil, "acme", nil)
	if len(got[0].ServiceNames) != 2 || got[0].ServiceNames[0] != "billing" {
		t.Errorf("service names = %v", got[0].ServiceNames)
	}
}

func TestFindService(t *testing.T) {
	r := regWithAcme(t)
	got := r.FindService(nil, "ship")
	if len(got) != 1 || got[0].ServiceKey != "svc-ship" {
		t.Errorf("FindService = %+v", got)
	}
	if got := r.FindService(nil, "zzz"); len(got) != 0 {
		t.Errorf("FindService(zzz) = %+v", got)
	}
}

func TestPublisherAssertionsRequireBothSides(t *testing.T) {
	r := regWithAcme(t)
	beta := &BusinessEntity{BusinessKey: "be-beta", Name: "Beta Freight"}
	if err := r.SaveBusiness("beta-pub", beta); err != nil {
		t.Fatal(err)
	}
	a := PublisherAssertion{FromKey: "be-acme", ToKey: "be-beta", Relationship: "partner"}

	if err := r.AddAssertion("stranger", a); err == nil {
		t.Error("assertion by non-owner accepted")
	}
	if err := r.AddAssertion("acme-pub", a); err != nil {
		t.Fatal(err)
	}
	// One-sided: not visible yet.
	if got := r.FindRelatedBusinesses(nil, "be-acme"); len(got) != 0 {
		t.Errorf("one-sided assertion visible: %+v", got)
	}
	if err := r.AddAssertion("beta-pub", a); err != nil {
		t.Fatal(err)
	}
	got := r.FindRelatedBusinesses(nil, "be-acme")
	if len(got) != 1 || got[0].BusinessKey != "be-beta" {
		t.Errorf("related = %+v", got)
	}
	// Symmetric lookup.
	got = r.FindRelatedBusinesses(nil, "be-beta")
	if len(got) != 1 || got[0].BusinessKey != "be-acme" {
		t.Errorf("related (reverse) = %+v", got)
	}
	if err := r.AddAssertion("acme-pub", PublisherAssertion{FromKey: "be-acme", ToKey: "be-ghost"}); err == nil {
		t.Error("assertion to unknown entity accepted")
	}
}

func TestMissingKeysReportedInError(t *testing.T) {
	r := regWithAcme(t)
	got, err := r.GetBusinessDetail(nil, "be-acme", "be-ghost")
	if err == nil || !strings.Contains(err.Error(), "be-ghost") {
		t.Errorf("err = %v", err)
	}
	if len(got) != 1 {
		t.Errorf("partial result = %d entities", len(got))
	}
}

func TestOwnerQuery(t *testing.T) {
	r := regWithAcme(t)
	if o, ok := r.Owner("be-acme"); !ok || o != "acme-pub" {
		t.Errorf("Owner = %q, %v", o, ok)
	}
	if _, ok := r.Owner("be-ghost"); ok {
		t.Error("Owner of unknown key")
	}
}
