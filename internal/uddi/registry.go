package uddi

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"webdbsec/internal/credential"
	"webdbsec/internal/policy"
)

// Registry is a UDDI registry: the store the paper describes as "a
// repository of information ... which can be queried by service requestors
// and populated by service providers" (§4). It enforces ownership on the
// publish API and per-entry visibility policies on the inquiry API —
// addressing the paper's observation that "a service provider may not want
// that the information about its web services are accessible to everyone."
//
// A Registry used directly by its provider is the two-party deployment; a
// trusted discovery agency wraps the same type. The untrusted third-party
// deployment is in thirdparty.go. All methods are safe for concurrent use.
type Registry struct {
	mu sync.RWMutex

	entities map[string]*BusinessEntity
	owners   map[string]string // businessKey -> publisher
	tmodels  map[string]*TModel
	towners  map[string]string // tModelKey -> publisher

	// svcIndex/bindIndex locate services and bindings inside entities.
	svcIndex  map[string]string    // serviceKey -> businessKey
	bindIndex map[string][2]string // bindingKey -> (businessKey, serviceKey)

	// assertions: both sides must assert before the relationship is
	// visible (standard UDDI publisherAssertion semantics).
	assertions map[PublisherAssertion]map[string]bool // assertion -> asserting publishers

	// acl maps a businessKey to its visibility spec; absent means public.
	acl map[string]*policy.SubjectSpec

	// hiddenTModels holds keys removed from find_tModel (delete_tModel
	// hides rather than destroys, per the UDDI spec).
	hiddenTModels map[string]bool

	// Subscription state (subscription.go).
	subs       map[string]*Subscription
	journal    []ChangeRecord
	journalSeq int64

	verifier *credential.Verifier
}

// NewRegistry returns an empty registry. verifier may be nil (credential
// signatures in visibility specs are then not checked).
func NewRegistry(verifier *credential.Verifier) *Registry {
	return &Registry{
		entities:   make(map[string]*BusinessEntity),
		owners:     make(map[string]string),
		tmodels:    make(map[string]*TModel),
		towners:    make(map[string]string),
		svcIndex:   make(map[string]string),
		bindIndex:  make(map[string][2]string),
		assertions: make(map[PublisherAssertion]map[string]bool),
		acl:        make(map[string]*policy.SubjectSpec),
		verifier:   verifier,
	}
}

// --- Publish API (the provider side) ---

// SaveBusiness creates or replaces a business entity. Updates require the
// publisher that created the entity ("data are modified according to the
// specified access control policies", §4.1's integrity property).
func (r *Registry) SaveBusiness(publisher string, e *BusinessEntity) error {
	if publisher == "" {
		return fmt.Errorf("uddi: anonymous publish rejected")
	}
	if err := e.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if owner, ok := r.owners[e.BusinessKey]; ok && owner != publisher {
		return fmt.Errorf("uddi: businessEntity %s is owned by %s", e.BusinessKey, owner)
	}
	// Reject key hijacking: a serviceKey or bindingKey may not move into a
	// different business entity.
	for _, s := range e.Services {
		if bk, ok := r.svcIndex[s.ServiceKey]; ok && bk != e.BusinessKey {
			return fmt.Errorf("uddi: serviceKey %s already registered under businessEntity %s", s.ServiceKey, bk)
		}
		for _, bt := range s.Bindings {
			if loc, ok := r.bindIndex[bt.BindingKey]; ok && loc[0] != e.BusinessKey {
				return fmt.Errorf("uddi: bindingKey %s already registered under businessEntity %s", bt.BindingKey, loc[0])
			}
		}
	}
	// Drop old index entries for this entity, then re-index.
	if old, ok := r.entities[e.BusinessKey]; ok {
		r.unindexLocked(old)
	}
	cp := copyEntity(e)
	r.entities[e.BusinessKey] = cp
	r.owners[e.BusinessKey] = publisher
	for _, s := range cp.Services {
		r.svcIndex[s.ServiceKey] = cp.BusinessKey
		for _, bt := range s.Bindings {
			r.bindIndex[bt.BindingKey] = [2]string{cp.BusinessKey, s.ServiceKey}
		}
	}
	r.journalLocked(ChangeSaved, cp.BusinessKey, cp.Name)
	return nil
}

// DeleteBusiness removes an entity and its index entries.
func (r *Registry) DeleteBusiness(publisher, businessKey string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	owner, ok := r.owners[businessKey]
	if !ok {
		return fmt.Errorf("uddi: unknown businessEntity %s", businessKey)
	}
	if owner != publisher {
		return fmt.Errorf("uddi: businessEntity %s is owned by %s", businessKey, owner)
	}
	name := r.entities[businessKey].Name
	r.unindexLocked(r.entities[businessKey])
	delete(r.entities, businessKey)
	delete(r.owners, businessKey)
	delete(r.acl, businessKey)
	r.journalLocked(ChangeDeleted, businessKey, name)
	return nil
}

func (r *Registry) unindexLocked(e *BusinessEntity) {
	for _, s := range e.Services {
		delete(r.svcIndex, s.ServiceKey)
		for _, bt := range s.Bindings {
			delete(r.bindIndex, bt.BindingKey)
		}
	}
}

// SaveTModel creates or replaces a tModel.
func (r *Registry) SaveTModel(publisher string, t *TModel) error {
	if err := t.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if owner, ok := r.towners[t.TModelKey]; ok && owner != publisher {
		return fmt.Errorf("uddi: tModel %s is owned by %s", t.TModelKey, owner)
	}
	cp := *t
	r.tmodels[t.TModelKey] = &cp
	r.towners[t.TModelKey] = publisher
	return nil
}

// SetVisibility installs a visibility spec for an entity; nil makes it
// public again. Only the owner may change visibility.
func (r *Registry) SetVisibility(publisher, businessKey string, spec *policy.SubjectSpec) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	owner, ok := r.owners[businessKey]
	if !ok {
		return fmt.Errorf("uddi: unknown businessEntity %s", businessKey)
	}
	if owner != publisher {
		return fmt.Errorf("uddi: businessEntity %s is owned by %s", businessKey, owner)
	}
	if spec == nil {
		delete(r.acl, businessKey)
	} else {
		r.acl[businessKey] = spec
	}
	return nil
}

// AddAssertion records one side of a publisher assertion. The publisher
// must own one of the two entities; the relationship becomes visible once
// the owners of BOTH entities have asserted it.
func (r *Registry) AddAssertion(publisher string, a PublisherAssertion) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	fromOwner, okF := r.owners[a.FromKey]
	toOwner, okT := r.owners[a.ToKey]
	if !okF || !okT {
		return fmt.Errorf("uddi: assertion references unknown business entities")
	}
	if publisher != fromOwner && publisher != toOwner {
		return fmt.Errorf("uddi: publisher %s owns neither side of the assertion", publisher)
	}
	set := r.assertions[a]
	if set == nil {
		set = make(map[string]bool)
		r.assertions[a] = set
	}
	set[publisher] = true
	return nil
}

// --- Inquiry API (the requestor side) ---

// visibleLocked applies the entity's visibility spec to a requestor.
func (r *Registry) visibleLocked(businessKey string, req *policy.Subject) bool {
	spec, ok := r.acl[businessKey]
	if !ok {
		return true
	}
	if req == nil {
		return false
	}
	return spec.Matches(req, r.verifier)
}

// GetBusinessDetail is the drill-down inquiry: it returns whole entities
// for the given keys. Keys that do not exist or are not visible to the
// requestor are reported in the error (UDDI's E_invalidKeyPassed).
func (r *Registry) GetBusinessDetail(req *policy.Subject, keys ...string) ([]*BusinessEntity, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*BusinessEntity
	var missing []string
	for _, k := range keys {
		e, ok := r.entities[k]
		if !ok || !r.visibleLocked(k, req) {
			missing = append(missing, k)
			continue
		}
		out = append(out, copyEntity(e))
	}
	if len(missing) > 0 {
		return out, fmt.Errorf("uddi: invalid key(s): %s", strings.Join(missing, ", "))
	}
	return out, nil
}

// GetServiceDetail drills down to whole services.
func (r *Registry) GetServiceDetail(req *policy.Subject, serviceKeys ...string) ([]*BusinessService, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*BusinessService
	var missing []string
	for _, sk := range serviceKeys {
		bk, ok := r.svcIndex[sk]
		if !ok || !r.visibleLocked(bk, req) {
			missing = append(missing, sk)
			continue
		}
		for i := range r.entities[bk].Services {
			if r.entities[bk].Services[i].ServiceKey == sk {
				cp := copyService(&r.entities[bk].Services[i])
				out = append(out, cp)
			}
		}
	}
	if len(missing) > 0 {
		return out, fmt.Errorf("uddi: invalid key(s): %s", strings.Join(missing, ", "))
	}
	return out, nil
}

// GetBindingDetail drills down to binding templates.
func (r *Registry) GetBindingDetail(req *policy.Subject, bindingKeys ...string) ([]*BindingTemplate, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*BindingTemplate
	var missing []string
	for _, bk := range bindingKeys {
		loc, ok := r.bindIndex[bk]
		if !ok || !r.visibleLocked(loc[0], req) {
			missing = append(missing, bk)
			continue
		}
		for i := range r.entities[loc[0]].Services {
			s := &r.entities[loc[0]].Services[i]
			if s.ServiceKey != loc[1] {
				continue
			}
			for j := range s.Bindings {
				if s.Bindings[j].BindingKey == bk {
					cp := s.Bindings[j]
					cp.TModelKeys = append([]string(nil), cp.TModelKeys...)
					out = append(out, &cp)
				}
			}
		}
	}
	if len(missing) > 0 {
		return out, fmt.Errorf("uddi: invalid key(s): %s", strings.Join(missing, ", "))
	}
	return out, nil
}

// GetTModelDetail drills down to tModels. TModels are always public in
// this implementation (they carry interface specs, not business data).
func (r *Registry) GetTModelDetail(req *policy.Subject, keys ...string) ([]*TModel, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*TModel
	var missing []string
	for _, k := range keys {
		t, ok := r.tmodels[k]
		if !ok {
			missing = append(missing, k)
			continue
		}
		cp := *t
		out = append(out, &cp)
	}
	if len(missing) > 0 {
		return out, fmt.Errorf("uddi: invalid key(s): %s", strings.Join(missing, ", "))
	}
	return out, nil
}

// BusinessInfo is the overview row a browse inquiry returns.
type BusinessInfo struct {
	BusinessKey string
	Name        string
	Description string
	// ServiceNames are the names of the entity's services — overview data,
	// not the full structures.
	ServiceNames []string
}

// ServiceInfo is the overview row of find_service.
type ServiceInfo struct {
	ServiceKey  string
	BusinessKey string
	Name        string
}

// TModelInfo is the overview row of find_tModel.
type TModelInfo struct {
	TModelKey string
	Name      string
}

// FindBusiness is the browse inquiry: overview information for entities
// whose name matches the pattern (case-insensitive prefix; quote for exact
// match) and, when category is non-nil, whose category bag contains it.
// Results are filtered by visibility and sorted by name.
func (r *Registry) FindBusiness(req *policy.Subject, namePattern string, category *KeyedReference) []BusinessInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []BusinessInfo
	for k, e := range r.entities {
		if !r.visibleLocked(k, req) {
			continue
		}
		if !nameMatches(e.Name, namePattern) {
			continue
		}
		if category != nil && !hasCategory(e.CategoryBag, category) {
			continue
		}
		info := BusinessInfo{BusinessKey: e.BusinessKey, Name: e.Name, Description: e.Description}
		for _, s := range e.Services {
			info.ServiceNames = append(info.ServiceNames, s.Name)
		}
		sort.Strings(info.ServiceNames)
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FindService browses services across all visible entities.
func (r *Registry) FindService(req *policy.Subject, namePattern string) []ServiceInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []ServiceInfo
	for k, e := range r.entities {
		if !r.visibleLocked(k, req) {
			continue
		}
		for _, s := range e.Services {
			if nameMatches(s.Name, namePattern) {
				out = append(out, ServiceInfo{ServiceKey: s.ServiceKey, BusinessKey: e.BusinessKey, Name: s.Name})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FindTModel browses tModels by name.
func (r *Registry) FindTModel(req *policy.Subject, namePattern string) []TModelInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []TModelInfo
	for _, t := range r.tmodels {
		if r.hiddenTModels[t.TModelKey] {
			continue
		}
		if nameMatches(t.Name, namePattern) {
			out = append(out, TModelInfo{TModelKey: t.TModelKey, Name: t.Name})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FindRelatedBusinesses returns the businesses related to the given key by
// completed (two-sided) publisher assertions, visibility-filtered.
func (r *Registry) FindRelatedBusinesses(req *policy.Subject, businessKey string) []BusinessInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []BusinessInfo
	for a, asserters := range r.assertions {
		if a.FromKey != businessKey && a.ToKey != businessKey {
			continue
		}
		// Completed = both owners asserted.
		if !asserters[r.owners[a.FromKey]] || !asserters[r.owners[a.ToKey]] {
			continue
		}
		other := a.FromKey
		if other == businessKey {
			other = a.ToKey
		}
		e, ok := r.entities[other]
		if !ok || !r.visibleLocked(other, req) {
			continue
		}
		out = append(out, BusinessInfo{BusinessKey: e.BusinessKey, Name: e.Name, Description: e.Description})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of registered business entities.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entities)
}

// Owner reports the publisher that owns a business entity.
func (r *Registry) Owner(businessKey string) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	o, ok := r.owners[businessKey]
	return o, ok
}

func hasCategory(bag []KeyedReference, want *KeyedReference) bool {
	for _, kr := range bag {
		if kr.TModelKey == want.TModelKey && kr.KeyValue == want.KeyValue {
			return true
		}
	}
	return false
}

func copyEntity(e *BusinessEntity) *BusinessEntity {
	cp := *e
	cp.Contacts = append([]Contact(nil), e.Contacts...)
	cp.CategoryBag = append([]KeyedReference(nil), e.CategoryBag...)
	cp.Services = make([]BusinessService, len(e.Services))
	for i := range e.Services {
		cp.Services[i] = *copyService(&e.Services[i])
	}
	return &cp
}

func copyService(s *BusinessService) *BusinessService {
	cp := *s
	cp.CategoryBag = append([]KeyedReference(nil), s.CategoryBag...)
	cp.Bindings = make([]BindingTemplate, len(s.Bindings))
	for i, b := range s.Bindings {
		cp.Bindings[i] = b
		cp.Bindings[i].TModelKeys = append([]string(nil), b.TModelKeys...)
	}
	return &cp
}
