package uddi

import (
	"fmt"
	"sort"

	"webdbsec/internal/policy"
)

// Additional publish/inquiry operations from the UDDI v3 API surface:
// find_business by tModel reference, get_registeredInfo, delete_service,
// and delete_tModel with the spec's "hidden, not destroyed" semantics
// (a deleted tModel disappears from find_tModel but stays resolvable by
// key, because published bindings may still reference it).

// FindBusinessByTModel returns overview info for the visible entities with
// at least one binding template referencing the tModel.
func (r *Registry) FindBusinessByTModel(req *policy.Subject, tModelKey string) []BusinessInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []BusinessInfo
	for key, e := range r.entities {
		if !r.visibleLocked(key, req) {
			continue
		}
		if !entityReferencesTModel(e, tModelKey) {
			continue
		}
		out = append(out, BusinessInfo{BusinessKey: e.BusinessKey, Name: e.Name, Description: e.Description})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func entityReferencesTModel(e *BusinessEntity, tModelKey string) bool {
	for _, s := range e.Services {
		for _, b := range s.Bindings {
			for _, tk := range b.TModelKeys {
				if tk == tModelKey {
					return true
				}
			}
		}
	}
	return false
}

// RegisteredInfo summarizes what one publisher has registered.
type RegisteredInfo struct {
	BusinessKeys []string
	TModelKeys   []string
}

// GetRegisteredInfo returns the keys a publisher owns — the publish-side
// inventory call.
func (r *Registry) GetRegisteredInfo(publisher string) RegisteredInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var info RegisteredInfo
	for key, owner := range r.owners {
		if owner == publisher {
			info.BusinessKeys = append(info.BusinessKeys, key)
		}
	}
	for key, owner := range r.towners {
		if owner == publisher {
			info.TModelKeys = append(info.TModelKeys, key)
		}
	}
	sort.Strings(info.BusinessKeys)
	sort.Strings(info.TModelKeys)
	return info
}

// DeleteService removes one service (and its bindings) from its entity.
// Only the entity owner may do it.
func (r *Registry) DeleteService(publisher, serviceKey string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	bk, ok := r.svcIndex[serviceKey]
	if !ok {
		return fmt.Errorf("uddi: unknown serviceKey %s", serviceKey)
	}
	if r.owners[bk] != publisher {
		return fmt.Errorf("uddi: businessEntity %s is owned by %s", bk, r.owners[bk])
	}
	e := r.entities[bk]
	for i := range e.Services {
		if e.Services[i].ServiceKey != serviceKey {
			continue
		}
		for _, b := range e.Services[i].Bindings {
			delete(r.bindIndex, b.BindingKey)
		}
		e.Services = append(e.Services[:i], e.Services[i+1:]...)
		delete(r.svcIndex, serviceKey)
		return nil
	}
	return fmt.Errorf("uddi: serviceKey %s not found in entity %s", serviceKey, bk)
}

// DeleteTModel hides a tModel: it no longer appears in find_tModel but
// remains resolvable through get_tModelDetail, per the UDDI specification
// (published bindings may still reference it).
func (r *Registry) DeleteTModel(publisher, tModelKey string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	owner, ok := r.towners[tModelKey]
	if !ok {
		return fmt.Errorf("uddi: unknown tModelKey %s", tModelKey)
	}
	if owner != publisher {
		return fmt.Errorf("uddi: tModel %s is owned by %s", tModelKey, owner)
	}
	if r.hiddenTModels == nil {
		r.hiddenTModels = make(map[string]bool)
	}
	r.hiddenTModels[tModelKey] = true
	return nil
}
