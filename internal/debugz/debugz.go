// Package debugz mounts the optional operational debug surface shared by
// the server commands: the net/http/pprof profiling handlers and the
// expvar counter endpoint. It exists so every server exposes the same
// paths — and so none of them exposes anything unless explicitly asked:
// profiles and cache counters reveal operational detail (hot documents,
// query shapes, subject traffic), so commands mount this only behind an
// off-by-default -debug flag.
package debugz

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// Mount attaches the pprof handlers under /debug/pprof/ and the expvar
// handler at /debug/vars on the given mux. The pprof handlers are
// registered explicitly rather than via the net/http/pprof import side
// effect, because the servers use their own mux, not http.DefaultServeMux.
func Mount(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
}

// Publish registers fn as the expvar named name, skipping names already
// taken (expvar.Publish panics on duplicates, which matters under test
// re-registration). The function's result is rendered as JSON at
// /debug/vars — cache Stats structs serialize directly.
// seclint:sink
func Publish(name string, fn func() any) {
	if expvar.Get(name) == nil {
		expvar.Publish(name, expvar.Func(fn))
	}
}
