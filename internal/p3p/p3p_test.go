package p3p

import (
	"testing"
)

func shopPolicy() *Policy {
	return &Policy{
		Entity:          "shop.example",
		AllowsAnonymous: false,
		Statements: []Statement{
			{
				Purposes:   []Purpose{PurposeCurrent, PurposeAdmin},
				Recipients: []Recipient{RecipientOurs, RecipientDelivery},
				Categories: []Category{CategoryPhysical, CategoryOnline},
				Retention:  30,
			},
			{
				Purposes:   []Purpose{PurposeMarketing},
				Recipients: []Recipient{RecipientOurs},
				Categories: []Category{CategoryClickstream},
				Retention:  90,
			},
		},
	}
}

func TestValidate(t *testing.T) {
	if err := shopPolicy().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Policy{
		{Entity: ""},
		{Entity: "x", Statements: []Statement{{}}},
		{Entity: "x", Statements: []Statement{{Purposes: []Purpose{PurposeCurrent}}}},
		{Entity: "x", Statements: []Statement{{
			Purposes: []Purpose{PurposeCurrent}, Categories: []Category{CategoryHealth}, Retention: -1}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad policy %d accepted", i)
		}
	}
}

func TestXMLRoundTrip(t *testing.T) {
	p := shopPolicy()
	p.AllowsAnonymous = true
	got, err := FromXML(p.ToXML())
	if err != nil {
		t.Fatal(err)
	}
	if got.Entity != p.Entity || !got.AllowsAnonymous {
		t.Errorf("header lost: %+v", got)
	}
	if len(got.Statements) != 2 {
		t.Fatalf("statements = %d", len(got.Statements))
	}
	s := got.Statements[0]
	if len(s.Purposes) != 2 || s.Retention != 30 || len(s.Categories) != 2 {
		t.Errorf("statement lost: %+v", s)
	}
	if _, err := FromXML(nil); err == nil {
		t.Error("nil document accepted")
	}
}

func TestPreferenceEvaluation(t *testing.T) {
	p := shopPolicy()
	cases := []struct {
		name   string
		pref   Preference
		accept bool
	}{
		{
			"no rules accepts",
			Preference{},
			true,
		},
		{
			"blocks marketing on clickstream",
			Preference{Rules: []PreferenceRule{{
				Name: "no-marketing", Categories: []Category{CategoryClickstream},
				Purposes: []Purpose{PurposeMarketing},
			}}},
			false,
		},
		{
			"marketing rule on health does not fire",
			Preference{Rules: []PreferenceRule{{
				Name: "no-health-marketing", Categories: []Category{CategoryHealth},
				Purposes: []Purpose{PurposeMarketing},
			}}},
			true,
		},
		{
			"blocks third-party sharing",
			Preference{Rules: []PreferenceRule{{
				Name: "no-sharing", Recipients: []Recipient{RecipientDelivery},
			}}},
			false,
		},
		{
			"blocks long retention",
			Preference{Rules: []PreferenceRule{{
				Name: "short-retention", Categories: []Category{CategoryClickstream}, MaxRetention: 30,
			}}},
			false,
		},
		{
			"retention within bound accepted",
			Preference{Rules: []PreferenceRule{{
				Name: "short-retention", Categories: []Category{CategoryPhysical}, MaxRetention: 30,
			}}},
			true,
		},
		{
			"requires anonymity",
			Preference{RequireAnonymous: true},
			false,
		},
	}
	for _, c := range cases {
		v := c.pref.Evaluate(p)
		if v.Accept != c.accept {
			t.Errorf("%s: accept = %v (reason %q), want %v", c.name, v.Accept, v.Reason, c.accept)
		}
		if !v.Accept && v.Reason == "" {
			t.Errorf("%s: rejection without reason", c.name)
		}
	}
}

func TestAnonymousSupportAccepted(t *testing.T) {
	p := shopPolicy()
	p.AllowsAnonymous = true
	v := (&Preference{RequireAnonymous: true}).Evaluate(p)
	if !v.Accept {
		t.Errorf("anonymous-supporting service rejected: %q", v.Reason)
	}
}

func TestRestrictivenessOrder(t *testing.T) {
	base := shopPolicy()
	// Strictly tighter: fewer purposes, shorter retention, fewer recipients.
	tight := &Policy{
		Entity: "courier.example",
		Statements: []Statement{{
			Purposes:   []Purpose{PurposeCurrent},
			Recipients: []Recipient{RecipientOurs},
			Categories: []Category{CategoryPhysical},
			Retention:  7,
		}},
	}
	if !tight.AtMostAsPermissiveAs(base) {
		t.Error("tighter policy judged more permissive")
	}
	// New purpose on the same category: more permissive.
	loose := &Policy{
		Entity: "adnet.example",
		Statements: []Statement{{
			Purposes:   []Purpose{PurposeProfiling},
			Recipients: []Recipient{RecipientOurs},
			Categories: []Category{CategoryPhysical},
			Retention:  7,
		}},
	}
	if loose.AtMostAsPermissiveAs(base) {
		t.Error("new purpose not detected as weakening")
	}
	// Longer retention: more permissive.
	longRet := &Policy{
		Entity: "archive.example",
		Statements: []Statement{{
			Purposes:   []Purpose{PurposeCurrent},
			Recipients: []Recipient{RecipientOurs},
			Categories: []Category{CategoryPhysical},
			Retention:  365,
		}},
	}
	if longRet.AtMostAsPermissiveAs(base) {
		t.Error("longer retention not detected")
	}
	// Broader recipients: more permissive.
	shareAll := &Policy{
		Entity: "broker.example",
		Statements: []Statement{{
			Purposes:   []Purpose{PurposeCurrent},
			Recipients: []Recipient{RecipientPublic},
			Categories: []Category{CategoryPhysical},
			Retention:  7,
		}},
	}
	if shareAll.AtMostAsPermissiveAs(base) {
		t.Error("recipient broadening not detected")
	}
}

func TestDirectoryAndDelegation(t *testing.T) {
	d := NewDirectory()
	base := shopPolicy()
	if err := d.Advertise("shop", base); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.PolicyFor("shop"); !ok {
		t.Fatal("advertised policy not retrievable")
	}
	if _, ok := d.PolicyFor("ghost"); ok {
		t.Error("unknown service has a policy")
	}
	tight := &Policy{
		Entity: "courier",
		Statements: []Statement{{
			Purposes:   []Purpose{PurposeCurrent},
			Recipients: []Recipient{RecipientOurs},
			Categories: []Category{CategoryPhysical},
			Retention:  7,
		}},
	}
	if err := d.Advertise("courier", tight); err != nil {
		t.Fatal(err)
	}
	if err := d.Delegate("shop", "courier"); err != nil {
		t.Fatalf("valid delegation rejected: %v", err)
	}
	loose := &Policy{
		Entity: "adnet",
		Statements: []Statement{{
			Purposes:   []Purpose{PurposeProfiling},
			Recipients: []Recipient{RecipientPublic},
			Categories: []Category{CategoryPhysical},
			Retention:  999,
		}},
	}
	d.Advertise("adnet", loose)
	if err := d.Delegate("shop", "adnet"); err == nil {
		t.Error("privacy-weakening delegation accepted")
	}
	if err := d.Delegate("ghost", "courier"); err == nil {
		t.Error("delegation from unknown service accepted")
	}
	if err := d.Delegate("shop", "ghost"); err == nil {
		t.Error("delegation to unknown service accepted")
	}
	chain := d.DelegationChain("shop")
	if len(chain) != 1 || chain[0] != "courier" {
		t.Errorf("chain = %v", chain)
	}
}

func TestDelegationChainTransitive(t *testing.T) {
	d := NewDirectory()
	mk := func(entity string, ret int) *Policy {
		return &Policy{Entity: entity, Statements: []Statement{{
			Purposes: []Purpose{PurposeCurrent}, Recipients: []Recipient{RecipientOurs},
			Categories: []Category{CategoryPhysical}, Retention: ret,
		}}}
	}
	d.Advertise("a", mk("a", 30))
	d.Advertise("b", mk("b", 20))
	d.Advertise("c", mk("c", 10))
	if err := d.Delegate("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := d.Delegate("b", "c"); err != nil {
		t.Fatal(err)
	}
	chain := d.DelegationChain("a")
	if len(chain) != 2 || chain[0] != "b" || chain[1] != "c" {
		t.Errorf("chain = %v", chain)
	}
}

func TestEnforcerPurposeBinding(t *testing.T) {
	e, err := NewEnforcer(shopPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Collect("addr-42", CategoryPhysical, PurposeCurrent); err != nil {
		t.Fatal(err)
	}
	if err := e.Use("addr-42", PurposeCurrent); err != nil {
		t.Errorf("declared use rejected: %v", err)
	}
	if err := e.Use("addr-42", PurposeMarketing); err == nil {
		t.Error("undeclared purpose accepted")
	}
	if err := e.Use("ghost", PurposeCurrent); err == nil {
		t.Error("unknown item usable")
	}
	// Consent opens the purpose.
	if err := e.Consent("addr-42", PurposeMarketing); err != nil {
		t.Fatal(err)
	}
	if err := e.Use("addr-42", PurposeMarketing); err != nil {
		t.Errorf("consented use rejected: %v", err)
	}
}

func TestEnforcerCollectionCoverage(t *testing.T) {
	e, _ := NewEnforcer(shopPolicy())
	// Health data is not in the policy at all.
	if err := e.Collect("h1", CategoryHealth, PurposeCurrent); err == nil {
		t.Error("collection outside policy accepted")
	}
	// Physical data for profiling is not declared either.
	if err := e.Collect("a1", CategoryPhysical, PurposeProfiling); err == nil {
		t.Error("undeclared purpose collection accepted")
	}
	if err := e.Collect("a1", CategoryPhysical); err == nil {
		t.Error("purposeless collection accepted")
	}
}

func TestEnforcerRetention(t *testing.T) {
	p := shopPolicy()
	p.Statements[0].Retention = 2
	e, _ := NewEnforcer(p)
	e.Collect("addr", CategoryPhysical, PurposeCurrent)
	if !e.Retained("addr") {
		t.Fatal("item gone immediately")
	}
	e.Tick()
	e.Tick()
	if err := e.Use("addr", PurposeCurrent); err != nil {
		t.Errorf("use within retention rejected: %v", err)
	}
	e.Tick() // clock = 3 > expires = 2
	if e.Retained("addr") {
		t.Error("item retained past its period")
	}
	if err := e.Use("addr", PurposeCurrent); err == nil {
		t.Error("use after retention accepted")
	}
	if err := e.Consent("addr", PurposeAdmin); err == nil {
		t.Error("consent on erased item accepted")
	}
	if e.Clock() != 3 {
		t.Errorf("clock = %d", e.Clock())
	}
}
