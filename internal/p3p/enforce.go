package p3p

import (
	"fmt"
	"sync"
)

// Enforcer implements the W3C task-force rule the paper quotes in §4.2:
// "collected personal information must not be used or disclosed for
// purposes other than performing the operations for which it was
// collected, except with the consent of the subject or as required by
// law. Additionally, such information must be retained only as long as
// necessary for performing the required operations."
//
// Time is a logical tick counter advanced by the caller, which keeps the
// retention rule deterministic and testable.
type Enforcer struct {
	mu     sync.Mutex
	policy *Policy
	clock  int
	items  map[string]*collected
}

type collected struct {
	category Category
	purposes map[Purpose]bool
	expires  int // clock tick after which the item is gone
	consent  map[Purpose]bool
	erased   bool
}

// NewEnforcer builds an enforcer for the service's advertised policy.
func NewEnforcer(p *Policy) (*Enforcer, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Enforcer{policy: p, items: make(map[string]*collected)}, nil
}

// Tick advances logical time, erasing items whose retention expired.
func (e *Enforcer) Tick() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.clock++
	for _, it := range e.items {
		if !it.erased && e.clock > it.expires {
			it.erased = true
		}
	}
}

// Clock returns the current logical time.
func (e *Enforcer) Clock() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.clock
}

// Collect records that a data item of the category was collected for the
// purposes. Collection must be covered by the advertised policy —
// collecting outside the policy is itself a violation.
func (e *Enforcer) Collect(key string, cat Category, purposes ...Purpose) error {
	if len(purposes) == 0 {
		return fmt.Errorf("p3p: collection of %q needs at least one purpose", key)
	}
	retention := -1
	for _, pur := range purposes {
		if !e.policy.collects(cat, pur) {
			return fmt.Errorf("p3p: policy of %s does not cover collecting %s for %s",
				e.policy.Entity, cat, pur)
		}
	}
	for _, s := range e.policy.Statements {
		if containsCat(s.Categories, cat) && s.Retention > retention {
			retention = s.Retention
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	ps := make(map[Purpose]bool, len(purposes))
	for _, p := range purposes {
		ps[p] = true
	}
	e.items[key] = &collected{
		category: cat,
		purposes: ps,
		expires:  e.clock + retention,
		consent:  make(map[Purpose]bool),
	}
	return nil
}

// Consent records the data subject's consent to an additional purpose for
// one item — the "except with the consent of the subject" escape hatch.
func (e *Enforcer) Consent(key string, pur Purpose) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	it, ok := e.items[key]
	if !ok || it.erased {
		return fmt.Errorf("p3p: no collected item %q", key)
	}
	it.consent[pur] = true
	return nil
}

// Use authorizes one use of the item for the purpose: the purpose must be
// among the collection purposes (or consented), and the item must still be
// within retention.
func (e *Enforcer) Use(key string, pur Purpose) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	it, ok := e.items[key]
	if !ok {
		return fmt.Errorf("p3p: no collected item %q", key)
	}
	if it.erased {
		return fmt.Errorf("p3p: item %q passed its retention period", key)
	}
	if !it.purposes[pur] && !it.consent[pur] {
		return fmt.Errorf("p3p: item %q was not collected for purpose %s", key, pur)
	}
	return nil
}

// Retained reports whether the item is still held.
func (e *Enforcer) Retained(key string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	it, ok := e.items[key]
	return ok && !it.erased
}
