// Package p3p implements the privacy side of the Web Service Architecture
// (§4.2). The paper lists the five W3C WSA privacy requirements: "the WSA
// must enable privacy policy statements to be expressed about web
// services; advertised web service privacy policies must be expressed in
// P3P; the WSA must enable a consumer to access a web service's advertised
// privacy policy statement; the WSA must enable delegation and propagation
// of privacy policy; web services must not be precluded from supporting
// interactions where one or more parties of the interaction are
// anonymous."
//
// This package provides the P3P-style policy model, APPEL-like consumer
// preferences and their evaluation, the restrictiveness order that makes
// delegation checkable, a policy directory for services, and a usage
// enforcer implementing the paper's retention/purpose rule: "collected
// personal information must not be used or disclosed for purposes other
// than performing the operations for which it was collected ... such
// information must be retained only as long as necessary."
package p3p

import (
	"fmt"
	"sort"
	"sync"

	"webdbsec/internal/xmldoc"
)

// Purpose is a data-use purpose.
type Purpose string

// Common purposes.
const (
	PurposeCurrent   Purpose = "current"   // the requested operation itself
	PurposeAdmin     Purpose = "admin"     // system administration
	PurposeDevelop   Purpose = "develop"   // research & development
	PurposeMarketing Purpose = "marketing" // promotion
	PurposeProfiling Purpose = "profiling" // building user profiles
)

// Recipient classifies who receives collected data.
type Recipient string

// Recipients, orderable by exposure.
const (
	RecipientOurs      Recipient = "ours"      // the service itself
	RecipientDelivery  Recipient = "delivery"  // delivery partners
	RecipientUnrelated Recipient = "unrelated" // unrelated third parties
	RecipientPublic    Recipient = "public"    // public fora
)

// Category classifies collected data.
type Category string

// Data categories.
const (
	CategoryPhysical    Category = "physical" // name, address
	CategoryOnline      Category = "online"   // email, identifiers
	CategoryFinancial   Category = "financial"
	CategoryHealth      Category = "health"
	CategoryLocation    Category = "location"
	CategoryClickstream Category = "clickstream"
)

// Statement is one P3P statement: the service collects data of the given
// categories for the given purposes, shares it with the given recipients,
// and retains it for Retention logical ticks (0 = not retained).
type Statement struct {
	Purposes   []Purpose
	Recipients []Recipient
	Categories []Category
	Retention  int
}

// Policy is a service's privacy policy.
type Policy struct {
	// Entity names the service or agency the policy speaks for.
	Entity string
	// AllowsAnonymous declares that the service supports interactions
	// where the requestor stays anonymous (WSA requirement five).
	AllowsAnonymous bool
	Statements      []Statement
}

// Validate checks well-formedness.
func (p *Policy) Validate() error {
	if p.Entity == "" {
		return fmt.Errorf("p3p: policy missing entity")
	}
	for i, s := range p.Statements {
		if len(s.Purposes) == 0 || len(s.Categories) == 0 {
			return fmt.Errorf("p3p: statement %d of %s needs purposes and categories", i, p.Entity)
		}
		if s.Retention < 0 {
			return fmt.Errorf("p3p: statement %d of %s has negative retention", i, p.Entity)
		}
	}
	return nil
}

// collects reports whether the policy collects the category for the
// purpose.
func (p *Policy) collects(cat Category, pur Purpose) bool {
	for _, s := range p.Statements {
		if containsCat(s.Categories, cat) && containsPur(s.Purposes, pur) {
			return true
		}
	}
	return false
}

// ToXML renders the policy in an XML form (the paper's requirement two:
// policies are advertised in P3P, an XML vocabulary).
func (p *Policy) ToXML() *xmldoc.Document {
	b := xmldoc.NewBuilder("p3p:"+p.Entity, "policy")
	b.Attrib("entity", p.Entity)
	if p.AllowsAnonymous {
		b.Attrib("anonymous", "true")
	}
	for _, s := range p.Statements {
		b.Begin("statement")
		b.Attrib("retention", fmt.Sprintf("%d", s.Retention))
		for _, x := range s.Purposes {
			b.Begin("purpose").Attrib("v", string(x)).End()
		}
		for _, x := range s.Recipients {
			b.Begin("recipient").Attrib("v", string(x)).End()
		}
		for _, x := range s.Categories {
			b.Begin("category").Attrib("v", string(x)).End()
		}
		b.End()
	}
	return b.Freeze()
}

// FromXML parses a policy document.
func FromXML(d *xmldoc.Document) (*Policy, error) {
	if d == nil || d.Root == nil || d.Root.Name != "policy" {
		return nil, fmt.Errorf("p3p: not a policy document")
	}
	p := &Policy{}
	p.Entity, _ = d.Root.Attr("entity")
	if v, ok := d.Root.Attr("anonymous"); ok && v == "true" {
		p.AllowsAnonymous = true
	}
	for _, sn := range d.Root.ElementChildren() {
		if sn.Name != "statement" {
			continue
		}
		var s Statement
		if r, ok := sn.Attr("retention"); ok {
			fmt.Sscanf(r, "%d", &s.Retention)
		}
		for _, c := range sn.ElementChildren() {
			v, _ := c.Attr("v")
			switch c.Name {
			case "purpose":
				s.Purposes = append(s.Purposes, Purpose(v))
			case "recipient":
				s.Recipients = append(s.Recipients, Recipient(v))
			case "category":
				s.Categories = append(s.Categories, Category(v))
			}
		}
		p.Statements = append(p.Statements, s)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// PreferenceRule is one APPEL-like consumer rule: block policies that use
// any of Categories for any of Purposes or share them with any of
// Recipients (empty lists are wildcards within the triggered dimension
// only when another dimension is set).
type PreferenceRule struct {
	Name       string
	Categories []Category
	Purposes   []Purpose
	Recipients []Recipient
	// MaxRetention, when > 0, blocks statements retaining matched
	// categories longer.
	MaxRetention int
}

// Preference is the consumer's rule set plus a default stance.
type Preference struct {
	Rules []PreferenceRule
	// RequireAnonymous blocks services that do not support anonymous
	// interaction.
	RequireAnonymous bool
}

// Verdict is the outcome of evaluating a preference against a policy.
type Verdict struct {
	Accept bool
	// Reason names the violated rule when rejected.
	Reason string
}

// Evaluate checks the policy against the preference.
func (pref *Preference) Evaluate(p *Policy) Verdict {
	if pref.RequireAnonymous && !p.AllowsAnonymous {
		return Verdict{Accept: false, Reason: "anonymous interaction not supported"}
	}
	for _, r := range pref.Rules {
		for _, s := range p.Statements {
			if !overlapCats(s.Categories, r.Categories) {
				continue
			}
			if len(r.Purposes) > 0 && !overlapPurs(s.Purposes, r.Purposes) &&
				len(r.Recipients) == 0 && r.MaxRetention == 0 {
				continue
			}
			if len(r.Purposes) > 0 && overlapPurs(s.Purposes, r.Purposes) {
				return Verdict{Accept: false, Reason: r.Name}
			}
			if len(r.Recipients) > 0 && overlapRecs(s.Recipients, r.Recipients) {
				return Verdict{Accept: false, Reason: r.Name}
			}
			if r.MaxRetention > 0 && s.Retention > r.MaxRetention {
				return Verdict{Accept: false, Reason: r.Name}
			}
		}
	}
	return Verdict{Accept: true}
}

// AtMostAsPermissiveAs reports whether policy q could stand in for policy
// p without weakening privacy: every statement of q must be covered by
// some statement of p collecting the same categories for at least the
// same purposes/recipients and retention. This is the propagation check
// behind WSA requirement four: a delegatee must not use delegated data
// more liberally than the policy the consumer accepted.
func (q *Policy) AtMostAsPermissiveAs(p *Policy) bool {
	for _, sq := range q.Statements {
		for _, cat := range sq.Categories {
			for _, pur := range sq.Purposes {
				if !p.collects(cat, pur) {
					return false
				}
			}
			// Retention for this category must not exceed any covering
			// statement's maximum in p.
			maxRet := -1
			for _, sp := range p.Statements {
				if containsCat(sp.Categories, cat) && sp.Retention > maxRet {
					maxRet = sp.Retention
				}
			}
			if sq.Retention > maxRet {
				return false
			}
			// Recipients must be a subset of the union p exposes for cat.
			var allowed []Recipient
			for _, sp := range p.Statements {
				if containsCat(sp.Categories, cat) {
					allowed = append(allowed, sp.Recipients...)
				}
			}
			for _, r := range sq.Recipients {
				if !containsRec(allowed, r) {
					return false
				}
			}
		}
	}
	return true
}

// Directory maps service names to their advertised policies — WSA
// requirement three (consumer access) — and validates delegations.
type Directory struct {
	mu       sync.RWMutex
	policies map[string]*Policy
	// delegations: delegator -> delegatees.
	delegations map[string][]string
}

// NewDirectory returns an empty policy directory.
func NewDirectory() *Directory {
	return &Directory{policies: make(map[string]*Policy), delegations: make(map[string][]string)}
}

// Advertise publishes a service's policy.
func (d *Directory) Advertise(service string, p *Policy) error {
	if err := p.Validate(); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.policies[service] = p
	return nil
}

// PolicyFor returns a service's advertised policy.
func (d *Directory) PolicyFor(service string) (*Policy, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	p, ok := d.policies[service]
	return p, ok
}

// Delegate records that delegator passes collected data to delegatee,
// enforcing propagation: the delegatee's policy must be at most as
// permissive as the delegator's.
func (d *Directory) Delegate(delegator, delegatee string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	from, ok := d.policies[delegator]
	if !ok {
		return fmt.Errorf("p3p: %s has no advertised policy", delegator)
	}
	to, ok := d.policies[delegatee]
	if !ok {
		return fmt.Errorf("p3p: %s has no advertised policy", delegatee)
	}
	if !to.AtMostAsPermissiveAs(from) {
		return fmt.Errorf("p3p: delegation %s -> %s would weaken privacy", delegator, delegatee)
	}
	d.delegations[delegator] = append(d.delegations[delegator], delegatee)
	return nil
}

// DelegationChain returns every service reachable from the given one
// through delegations, sorted (the consumer can audit where data may
// flow).
func (d *Directory) DelegationChain(service string) []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	seen := map[string]bool{}
	stack := []string{service}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, next := range d.delegations[s] {
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func containsCat(s []Category, v Category) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func containsPur(s []Purpose, v Purpose) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func containsRec(s []Recipient, v Recipient) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func overlapCats(a []Category, b []Category) bool {
	if len(b) == 0 {
		return true
	}
	for _, x := range b {
		if containsCat(a, x) {
			return true
		}
	}
	return false
}

func overlapPurs(a []Purpose, b []Purpose) bool {
	for _, x := range b {
		if containsPur(a, x) {
			return true
		}
	}
	return false
}

func overlapRecs(a []Recipient, b []Recipient) bool {
	for _, x := range b {
		if containsRec(a, x) {
			return true
		}
	}
	return false
}
