package rdf

// Provenance-aware inference control. §5: "We also need to examine the
// inference problem for the semantic web. Inference is the process of
// posing queries and deducing new information. It becomes a problem when
// the deduced information is something the user is unauthorized to know.
// ... the semantic web exacerbates the inference problem."
//
// Plain Store.InferRDFS materializes entailments with no idea where they
// came from: a Secret subClassOf axiom plus an Unclassified rdf:type
// triple entail a new rdf:type triple that, unlabeled, would hand a
// low-cleared subject exactly the conclusion the axiom was protecting.
// Guard.InferRDFS tracks each entailment's premises and pins the derived
// triple at the MAXIMUM level over every premise of its cheapest
// derivation — no inference step may declassify.

// derivation records the premises a derived triple came from.
type derivation struct {
	derived  Triple
	premises []Triple
}

// InferRDFS materializes the RDFS entailments into the guarded store,
// installing an exact-match classification rule for every derived triple
// at the max level of its premises (evaluated in the CURRENT context —
// rules are pinned, so derive after setting the operative context). It
// returns the number of triples added.
func (g *Guard) InferRDFS() int {
	s := g.store
	added := 0
	for {
		var ds []derivation
		typeIRI := NewIRI(RDFType)
		// rdfs11: subClassOf transitivity.
		for _, ab := range s.Query(Pattern{P: T(NewIRI(RDFSSubClassOf))}) {
			for _, bc := range s.Query(Pattern{S: T(ab.O), P: T(NewIRI(RDFSSubClassOf))}) {
				ds = append(ds, derivation{
					derived:  Triple{S: ab.S, P: NewIRI(RDFSSubClassOf), O: bc.O},
					premises: []Triple{ab, bc},
				})
			}
		}
		// rdfs5: subPropertyOf transitivity.
		for _, ab := range s.Query(Pattern{P: T(NewIRI(RDFSSubPropertyOf))}) {
			for _, bc := range s.Query(Pattern{S: T(ab.O), P: T(NewIRI(RDFSSubPropertyOf))}) {
				ds = append(ds, derivation{
					derived:  Triple{S: ab.S, P: NewIRI(RDFSSubPropertyOf), O: bc.O},
					premises: []Triple{ab, bc},
				})
			}
		}
		// rdfs9: type propagation.
		for _, sub := range s.Query(Pattern{P: T(NewIRI(RDFSSubClassOf))}) {
			for _, inst := range s.Query(Pattern{P: T(typeIRI), O: T(sub.S)}) {
				ds = append(ds, derivation{
					derived:  Triple{S: inst.S, P: typeIRI, O: sub.O},
					premises: []Triple{sub, inst},
				})
			}
		}
		// rdfs7: property subsumption.
		for _, sp := range s.Query(Pattern{P: T(NewIRI(RDFSSubPropertyOf))}) {
			for _, use := range s.Query(Pattern{P: T(sp.S)}) {
				ds = append(ds, derivation{
					derived:  Triple{S: use.S, P: sp.O, O: use.O},
					premises: []Triple{sp, use},
				})
			}
		}
		// rdfs2/rdfs3: domain and range typing.
		for _, dom := range s.Query(Pattern{P: T(NewIRI(RDFSDomain))}) {
			for _, use := range s.Query(Pattern{P: T(dom.S)}) {
				ds = append(ds, derivation{
					derived:  Triple{S: use.S, P: typeIRI, O: dom.O},
					premises: []Triple{dom, use},
				})
			}
		}
		for _, rng := range s.Query(Pattern{P: T(NewIRI(RDFSRange))}) {
			for _, use := range s.Query(Pattern{P: T(rng.S)}) {
				if use.O.Kind == Literal {
					continue
				}
				ds = append(ds, derivation{
					derived:  Triple{S: use.O, P: typeIRI, O: rng.O},
					premises: []Triple{rng, use},
				})
			}
		}

		n := 0
		for _, d := range ds {
			if s.Has(d.derived) {
				// Already present (asserted or derived earlier): keep the
				// LOWEST pin across derivations? No — security requires the
				// level of information content; an independently asserted
				// triple keeps its own classification, and a cheaper
				// derivation may lower the pin to its own premise max,
				// because the subject could reach the conclusion that way.
				g.maybeLowerPin(d)
				continue
			}
			lvl := g.premiseLevel(d.premises)
			s.Add(d.derived)
			if lvl > Unclassified {
				g.AddClassRule(&ClassRule{
					Name:    "inferred",
					Pattern: exactPattern(d.derived),
					Level:   lvl,
				})
				g.rememberPin(d.derived, lvl)
			}
			n++
		}
		if n == 0 {
			return added
		}
		added += n
	}
}

// premiseLevel is the max effective level over the premises.
func (g *Guard) premiseLevel(premises []Triple) Level {
	lvl := Unclassified
	for _, p := range premises {
		if l := g.LevelOf(p); l > lvl {
			lvl = l
		}
	}
	return lvl
}

func exactPattern(t Triple) Pattern {
	return Pattern{S: T(t.S), P: T(t.P), O: T(t.O)}
}

// pins tracks the rules installed for derived triples so a cheaper
// derivation can lower them. Stored on the guard lazily.
func (g *Guard) rememberPin(t Triple, lvl Level) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.inferredPins == nil {
		g.inferredPins = make(map[Triple]*ClassRule)
	}
	for _, r := range g.rules {
		if r.Name == "inferred" && r.Pattern.Matches(t) {
			g.inferredPins[t] = r
		}
	}
}

// maybeLowerPin lowers an inferred triple's pinned level when a derivation
// with cheaper premises exists (the conclusion is reachable at that lower
// level, so pinning it higher protects nothing).
func (g *Guard) maybeLowerPin(d derivation) {
	lvl := g.premiseLevel(d.premises)
	g.mu.Lock()
	defer g.mu.Unlock()
	r, ok := g.inferredPins[d.derived]
	if ok && lvl < r.Level {
		r.Level = lvl
	}
}
