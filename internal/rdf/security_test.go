package rdf

import (
	"testing"

	"webdbsec/internal/policy"
)

func analystClearance(lvl Level) *Clearance {
	return NewClearance(&policy.Subject{ID: "analyst", Roles: []string{"analyst"}}, lvl)
}

func TestMandatoryLevels(t *testing.T) {
	s := NewStore()
	troop := tr("unit7", "locatedAt", "grid-42")
	weather := trLit("grid-42", "weather", "sunny")
	s.AddAll(troop, weather)
	g := NewGuard(s)
	g.AddClassRule(&ClassRule{
		Name:    "troop-movements",
		Pattern: Pattern{P: T(NewIRI("locatedAt"))},
		Level:   Secret,
	})
	// Classified data is closed: clearance alone is not enough, the
	// analyst role also needs a discretionary permit.
	g.AddPolicy(&TriplePolicy{
		Name:    "analysts-read-movements",
		Subject: policy.SubjectSpec{Roles: []string{"analyst"}},
		Pattern: Pattern{P: T(NewIRI("locatedAt"))},
		Sign:    policy.Permit,
	})

	low := analystClearance(Unclassified)
	high := analystClearance(Secret)
	if g.Readable(low, troop) {
		t.Error("secret triple readable at unclassified")
	}
	if !g.Readable(high, troop) {
		t.Error("secret triple unreadable at secret clearance")
	}
	if !g.Readable(low, weather) {
		t.Error("unclassified triple unreadable")
	}
	if got := g.View(low); len(got) != 1 {
		t.Errorf("low view = %d triples", len(got))
	}
	if got := g.View(high); len(got) != 2 {
		t.Errorf("high view = %d triples", len(got))
	}
}

func TestContextDependentDeclassification(t *testing.T) {
	// The paper's example: "one could declassify an RDF document, once the
	// war is over."
	s := NewStore()
	plan := tr("op-neptune", "targets", "objective-x")
	s.Add(plan)
	g := NewGuard(s)
	g.AddClassRule(&ClassRule{
		Name:    "wartime-secrecy",
		Pattern: Pattern{S: T(NewIRI("op-neptune"))},
		Level:   Secret,
		Context: "wartime",
	})
	low := analystClearance(Unclassified)

	g.SetContext("wartime")
	if g.Readable(low, plan) {
		t.Error("plan readable during wartime")
	}
	if g.LevelOf(plan) != Secret {
		t.Errorf("wartime level = %v", g.LevelOf(plan))
	}
	g.SetContext("peacetime")
	if !g.Readable(low, plan) {
		t.Error("plan not declassified after the war")
	}
	if g.LevelOf(plan) != Unclassified {
		t.Errorf("peacetime level = %v", g.LevelOf(plan))
	}
}

func TestHighestApplicableLevelWins(t *testing.T) {
	s := NewStore()
	tt := tr("x", "p", "y")
	s.Add(tt)
	g := NewGuard(s)
	g.AddClassRule(&ClassRule{Pattern: Pattern{S: T(NewIRI("x"))}, Level: Confidential})
	g.AddClassRule(&ClassRule{Pattern: Pattern{P: T(NewIRI("p"))}, Level: TopSecret})
	if g.LevelOf(tt) != TopSecret {
		t.Errorf("level = %v, want top-secret", g.LevelOf(tt))
	}
}

func TestDiscretionaryPolicies(t *testing.T) {
	s := NewStore()
	salary := trLit("bob", "salary", "100k")
	email := trLit("bob", "email", "bob@x")
	s.AddAll(salary, email)
	g := NewGuard(s)
	// Classify salaries confidential; HR may read them; interns explicitly
	// denied emails.
	g.AddClassRule(&ClassRule{Pattern: Pattern{P: T(NewIRI("salary"))}, Level: Confidential})
	g.AddPolicy(&TriplePolicy{
		Name:    "hr-reads-salaries",
		Subject: policy.SubjectSpec{Roles: []string{"hr"}},
		Pattern: Pattern{P: T(NewIRI("salary"))},
		Sign:    policy.Permit,
	})
	g.AddPolicy(&TriplePolicy{
		Name:    "interns-no-email",
		Subject: policy.SubjectSpec{Roles: []string{"intern"}},
		Pattern: Pattern{P: T(NewIRI("email"))},
		Sign:    policy.Deny,
	})

	hr := NewClearance(&policy.Subject{ID: "h", Roles: []string{"hr"}}, Confidential)
	intern := NewClearance(&policy.Subject{ID: "i", Roles: []string{"intern"}}, Confidential)

	if !g.Readable(hr, salary) {
		t.Error("hr cannot read salary")
	}
	// Intern has the clearance but no discretionary permit above
	// Unclassified: closed.
	if g.Readable(intern, salary) {
		t.Error("intern reads salary without permit")
	}
	if g.Readable(intern, email) {
		t.Error("deny policy ignored")
	}
	if !g.Readable(hr, email) {
		t.Error("hr denied email (deny should only hit interns)")
	}
}

func TestSchemaProtection(t *testing.T) {
	s := NewStore()
	schema := tr("Physician", RDFSSubClassOf, "Employee")
	inst := tr("drho", RDFType, "Physician")
	s.AddAll(schema, inst)
	g := NewGuard(s)
	g.ProtectSchema(true)

	plain := NewClearance(&policy.Subject{ID: "u"}, TopSecret)
	reader := NewClearance(&policy.Subject{ID: "r", Roles: []string{"schema-reader"}}, TopSecret)
	if g.Readable(plain, schema) {
		t.Error("schema triple visible without schema-reader role")
	}
	if !g.Readable(reader, schema) {
		t.Error("schema-reader denied schema")
	}
	if !g.Readable(plain, inst) {
		t.Error("instance triple wrongly hidden")
	}
	g.ProtectSchema(false)
	if !g.Readable(plain, schema) {
		t.Error("schema still protected after toggle off")
	}
}

func TestReifiedStatementDoesNotLeak(t *testing.T) {
	// "What are the security implications of statements about statements?"
	// If the base triple is secret, its reification arcs must be too.
	s := NewStore()
	secret := tr("unit7", "locatedAt", "grid-42")
	s.Add(secret)
	stmt := s.Reify(secret)
	s.Add(Triple{S: stmt, P: NewIRI("assertedBy"), O: NewIRI("hq")})

	g := NewGuard(s)
	g.AddClassRule(&ClassRule{Pattern: Pattern{P: T(NewIRI("locatedAt"))}, Level: Secret})
	g.AddPolicy(&TriplePolicy{
		Name:    "analysts-read-movements",
		Subject: policy.SubjectSpec{Roles: []string{"analyst"}},
		Pattern: Pattern{P: T(NewIRI("locatedAt"))},
		Sign:    policy.Permit,
	})

	low := analystClearance(Unclassified)
	view := g.View(low)
	for _, tt := range view {
		switch tt.P.Value {
		case RDFSubject, RDFPredicate, RDFObject:
			t.Errorf("reification arc leaked: %v", tt)
		}
	}
	// The provenance arc and the type arc don't reveal the triple's terms.
	found := false
	for _, tt := range view {
		if tt.P.Value == "assertedBy" {
			found = true
		}
	}
	if !found {
		t.Error("harmless provenance arc over-hidden")
	}
	// With clearance everything is visible.
	high := analystClearance(Secret)
	if got := len(g.View(high)); got != s.Len() {
		t.Errorf("high view = %d, want %d", got, s.Len())
	}
}

func TestContainerMemberProtection(t *testing.T) {
	s := NewStore()
	g := NewGuard(s)
	m1, m2, m3 := NewIRI("doc-pub"), NewIRI("doc-secret"), NewIRI("doc-other")
	bag, _ := s.NewContainer(RDFBag, m1, m2, m3)
	// Hide the membership arc pointing at doc-secret; analysts with
	// clearance may still see it.
	g.AddClassRule(&ClassRule{Pattern: Pattern{O: T(m2)}, Level: Secret})
	g.AddPolicy(&TriplePolicy{
		Name:    "analysts-read-secret-doc",
		Subject: policy.SubjectSpec{Roles: []string{"analyst"}},
		Pattern: Pattern{O: T(m2)},
		Sign:    policy.Permit,
	})

	low := analystClearance(Unclassified)
	got := g.VisibleContainerMembers(low, bag)
	if len(got) != 2 || got[0] != m1 || got[1] != m3 {
		t.Errorf("visible members = %v", got)
	}
	high := analystClearance(Secret)
	if got := g.VisibleContainerMembers(high, bag); len(got) != 3 {
		t.Errorf("cleared members = %v", got)
	}
}

func TestGuardQueryFilters(t *testing.T) {
	s := NewStore()
	s.AddAll(
		tr("a", "p", "pub"),
		tr("a", "p", "sec"),
	)
	g := NewGuard(s)
	g.AddClassRule(&ClassRule{Pattern: Pattern{O: T(NewIRI("sec"))}, Level: Secret})
	low := analystClearance(Unclassified)
	got := g.Query(low, Pattern{S: T(NewIRI("a"))})
	if len(got) != 1 || got[0].O.Value != "pub" {
		t.Errorf("filtered query = %v", got)
	}
}

func TestPolicyNames(t *testing.T) {
	g := NewGuard(NewStore())
	g.AddPolicy(&TriplePolicy{Name: "zz"})
	g.AddPolicy(&TriplePolicy{Name: "aa"})
	got := g.PolicyNames()
	if len(got) != 2 || got[0] != "aa" {
		t.Errorf("names = %v", got)
	}
}

func TestNilSubjectClearance(t *testing.T) {
	s := NewStore()
	pub := tr("a", "p", "b")
	s.Add(pub)
	g := NewGuard(s)
	c := NewClearance(nil, Unclassified)
	if !g.Readable(c, pub) {
		t.Error("anonymous cannot read unclassified open triple")
	}
	g.AddClassRule(&ClassRule{Pattern: Pattern{}, Level: Confidential})
	if g.Readable(c, pub) {
		t.Error("anonymous reads classified triple")
	}
}
