package rdf

import (
	"fmt"
	"sort"
	"strings"
)

// Basic graph pattern (BGP) queries — the SPARQL core — over the triple
// store, with a guard-filtered variant so that semantic access control
// composes with real queries, not just single-pattern lookups. The paper's
// semantic web needs queries that join across triples ("RDF ... describes
// contents of documents as well as relationships between various
// entities", §3.2); joining is also exactly where protected triples would
// leak if filtering were applied after the fact, so the guarded evaluator
// filters per scan, not per result.

// Var is a query variable, e.g. Var("x").
type Var string

// TPItem is one position of a triple pattern: a concrete Term or a Var.
type TPItem struct {
	Term  Term
	Var   Var
	isVar bool
}

// T2 wraps a concrete term for use in a pattern.
func T2(t Term) TPItem { return TPItem{Term: t} }

// V wraps a variable.
func V(name string) TPItem { return TPItem{Var: Var(name), isVar: true} }

// TriplePattern is a triple with variables.
type TriplePattern struct {
	S, P, O TPItem
}

// BGP is a conjunction of triple patterns sharing variables.
type BGP []TriplePattern

// Binding maps variables to terms.
type Binding map[Var]Term

// clone copies a binding.
func (b Binding) clone() Binding {
	out := make(Binding, len(b)+1)
	for k, v := range b {
		out[k] = v
	}
	return out
}

// String renders a binding deterministically, for tests and logs.
func (b Binding) String() string {
	keys := make([]string, 0, len(b))
	for k := range b {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("?%s=%s", k, b[Var(k)])
	}
	return strings.Join(parts, " ")
}

// resolve instantiates a pattern item under a binding: a concrete pointer
// for bound positions, nil (wildcard) for unbound variables.
func (it TPItem) resolve(b Binding) (*Term, *Var) {
	if !it.isVar {
		t := it.Term
		return &t, nil
	}
	if t, ok := b[it.Var]; ok {
		return &t, nil
	}
	v := it.Var
	return nil, &v
}

// boundness counts the concrete positions of a pattern under a binding —
// the join-order heuristic (most selective first).
func (tp TriplePattern) boundness(b Binding) int {
	n := 0
	for _, it := range []TPItem{tp.S, tp.P, tp.O} {
		if t, _ := it.resolve(b); t != nil {
			n++
		}
	}
	return n
}

// Select evaluates the BGP over the raw store and returns all solution
// bindings, deterministically ordered by their String form.
func (s *Store) Select(bgp BGP) []Binding {
	return evalBGP(bgp, func(p Pattern) []Triple { return s.Query(p) })
}

// Select evaluates the BGP over the triples visible to the clearance:
// protected triples cannot contribute to any join, so no solution reveals
// them even indirectly.
func (g *Guard) Select(c *Clearance, bgp BGP) []Binding {
	return evalBGP(bgp, func(p Pattern) []Triple { return g.Query(c, p) })
}

// evalBGP is a backtracking join: repeatedly pick the most-bound remaining
// pattern, scan it, extend the binding.
func evalBGP(bgp BGP, scan func(Pattern) []Triple) []Binding {
	var out []Binding
	remaining := append(BGP(nil), bgp...)
	var recurse func(rem BGP, b Binding)
	recurse = func(rem BGP, b Binding) {
		if len(rem) == 0 {
			out = append(out, b.clone())
			return
		}
		// Pick the most-bound pattern.
		best := 0
		for i := 1; i < len(rem); i++ {
			if rem[i].boundness(b) > rem[best].boundness(b) {
				best = i
			}
		}
		tp := rem[best]
		rest := make(BGP, 0, len(rem)-1)
		rest = append(rest, rem[:best]...)
		rest = append(rest, rem[best+1:]...)

		st, sv := tp.S.resolve(b)
		pt, pv := tp.P.resolve(b)
		ot, ov := tp.O.resolve(b)
		for _, tr := range scan(Pattern{S: st, P: pt, O: ot}) {
			b2 := b
			cloned := false
			bind := func(v *Var, t Term) bool {
				if v == nil {
					return true
				}
				if bound, ok := b2[*v]; ok {
					return bound == t
				}
				if !cloned {
					b2 = b2.clone()
					cloned = true
				}
				b2[*v] = t
				return true
			}
			if !bind(sv, tr.S) || !bind(pv, tr.P) || !bind(ov, tr.O) {
				continue
			}
			recurse(rest, b2)
		}
	}
	recurse(remaining, Binding{})
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}
