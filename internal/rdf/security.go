package rdf

import (
	"fmt"
	"sort"
	"sync"

	"webdbsec/internal/policy"
)

// This file implements semantic-level access control over RDF: pattern
// policies on triples, multilevel classification with context-dependent
// declassification ("under certain contexts, portions of the document may
// be Unclassified while under certain other context the document may be
// Classified. As an example, one could declassify an RDF document, once
// the war is over", §5), protection of reified statements, containers and
// schemas, and a filtering view engine.

// Level is a multilevel-security classification level.
type Level int

// Levels, ordered.
const (
	Unclassified Level = iota
	Confidential
	Secret
	TopSecret
)

func (l Level) String() string {
	switch l {
	case Unclassified:
		return "unclassified"
	case Confidential:
		return "confidential"
	case Secret:
		return "secret"
	case TopSecret:
		return "top-secret"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// TriplePolicy grants or denies access to the triples matching a pattern
// for the subjects matching the spec.
type TriplePolicy struct {
	Name    string
	Subject policy.SubjectSpec
	Pattern Pattern
	Sign    policy.Sign
}

// ClassRule assigns a classification level to the triples matching a
// pattern, optionally only within a named context. Rules for the current
// context override context-free rules; among applicable rules the highest
// level wins (no write-down by rule interleaving).
type ClassRule struct {
	Name    string
	Pattern Pattern
	Level   Level
	// Context restricts the rule to a named situation; empty means always.
	Context string
}

// Guard is the semantic access control engine for a store.
type Guard struct {
	mu       sync.RWMutex
	store    *Store
	policies []*TriplePolicy
	rules    []*ClassRule
	context  string
	// protectSchema, when set, denies schema triples to subjects without
	// the schema-reader role regardless of pattern policies.
	protectSchema bool

	// inferredPins indexes the classification rules installed by guarded
	// inference, so cheaper derivations can lower them (inferguard.go).
	inferredPins map[Triple]*ClassRule
}

// NewGuard wraps a store.
func NewGuard(store *Store) *Guard { return &Guard{store: store} }

// Store returns the guarded store.
func (g *Guard) Store() *Store { return g.store }

// AddPolicy installs a triple policy.
func (g *Guard) AddPolicy(p *TriplePolicy) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.policies = append(g.policies, p)
}

// AddClassRule installs a classification rule.
func (g *Guard) AddClassRule(r *ClassRule) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.rules = append(g.rules, r)
}

// SetContext switches the active situation (e.g. "wartime" → "peacetime"),
// re-evaluating every context-dependent classification.
func (g *Guard) SetContext(ctx string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.context = ctx
}

// Context returns the active situation.
func (g *Guard) Context() string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.context
}

// ProtectSchema toggles schema protection: when on, schema triples are
// visible only to subjects holding the "schema-reader" role.
func (g *Guard) ProtectSchema(on bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.protectSchema = on
}

// LevelOf computes the effective classification of a triple in the active
// context: the maximum level over all applicable rules (context-specific
// and context-free). Unruled triples are Unclassified.
func (g *Guard) LevelOf(t Triple) Level {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.levelOfLocked(t)
}

func (g *Guard) levelOfLocked(t Triple) Level {
	level := Unclassified
	for _, r := range g.rules {
		if r.Context != "" && r.Context != g.context {
			continue
		}
		if r.Pattern.Matches(t) && r.Level > level {
			level = r.Level
		}
	}
	return level
}

// Clearance pairs a subject with its clearance level.
type Clearance struct {
	Subject   *policy.Subject
	Level     Level
	SchemaRdr bool
}

// NewClearance builds a clearance; SchemaRdr is derived from the subject's
// roles.
func NewClearance(s *policy.Subject, level Level) *Clearance {
	return &Clearance{Subject: s, Level: level, SchemaRdr: s != nil && s.HasRole("schema-reader")}
}

// Readable decides whether the cleared subject may read the triple:
//
//  1. its classification in the active context must not exceed the
//     clearance (mandatory, Bell–LaPadula simple security);
//  2. schema triples additionally require the schema-reader role when
//     schema protection is on;
//  3. pattern policies then apply discretionarily: an applicable deny
//     hides the triple; with no applicable permit the default is permit
//     at Unclassified and deny above (classified data is closed).
//  4. a triple REIFYING a hidden statement is hidden too (statements
//     about statements must not leak the statement).
func (g *Guard) Readable(c *Clearance, t Triple) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.readableLocked(c, t, 0)
}

const maxReifyDepth = 8

func (g *Guard) readableLocked(c *Clearance, t Triple, depth int) bool {
	lvl := g.levelOfLocked(t)
	if lvl > c.Level {
		return false
	}
	if g.protectSchema && IsSchemaTriple(t) && !c.SchemaRdr {
		return false
	}
	permitted := lvl == Unclassified // open below classification, closed above
	for _, p := range g.policies {
		if !p.Pattern.Matches(t) {
			continue
		}
		if c.Subject == nil || !p.Subject.Matches(c.Subject, nil) {
			continue
		}
		if p.Sign == policy.Deny {
			return false
		}
		permitted = true
	}
	if !permitted {
		return false
	}
	// Reification guard: rdf:subject/predicate/object arcs of a statement
	// node leak the reified triple — hide them when that triple would be
	// hidden.
	if depth < maxReifyDepth {
		switch t.P.Value {
		case RDFSubject, RDFPredicate, RDFObject:
			if rt, ok := g.store.ReifiedTriple(t.S); ok {
				if !g.readableLocked(c, rt, depth+1) {
					return false
				}
			}
		}
	}
	return true
}

// View returns the triples of the store visible to the clearance, in
// deterministic order.
func (g *Guard) View(c *Clearance) []Triple {
	all := g.store.All()
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []Triple
	for _, t := range all {
		if g.readableLocked(c, t, 0) {
			out = append(out, t)
		}
	}
	return out
}

// Query answers a pattern query under the clearance: matching triples the
// subject may read.
func (g *Guard) Query(c *Clearance, p Pattern) []Triple {
	matches := g.store.Query(p)
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []Triple
	for _, t := range matches {
		if g.readableLocked(c, t, 0) {
			out = append(out, t)
		}
	}
	return out
}

// VisibleContainerMembers returns the container members the clearance may
// see — the paper's "how can bags, lists and alternatives be protected?":
// a member is hidden when its membership triple is hidden.
func (g *Guard) VisibleContainerMembers(c *Clearance, container Term) []Term {
	members := g.store.ContainerMembers(container)
	arcs := g.store.Query(Pattern{S: T(container)})
	g.mu.RLock()
	defer g.mu.RUnlock()
	visible := map[Term]bool{}
	for _, t := range arcs {
		if g.readableLocked(c, t, 0) {
			visible[t.O] = true
		}
	}
	var out []Term
	for _, m := range members {
		if visible[m] {
			out = append(out, m)
		}
	}
	return out
}

// PolicyNames returns the installed policy names, sorted (for admin UIs
// and tests).
func (g *Guard) PolicyNames() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]string, 0, len(g.policies))
	for _, p := range g.policies {
		out = append(out, p.Name)
	}
	sort.Strings(out)
	return out
}
