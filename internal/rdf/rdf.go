// Package rdf implements the RDF substrate the paper calls "fundamental to
// the semantic web" (§3.2) together with the semantic-level protection it
// asks for: "with RDF we also need to ensure that security is preserved at
// the semantic level. The issues include the security implications of the
// concepts resource, properties and statements ... What are the security
// properties of the container model? How can bags, lists and alternatives
// be protected? ... What are the security implications of statements about
// statements? How can we protect RDF schemas?"
//
// This file holds the data model: terms, triples, an indexed store with
// pattern queries, the container model (bag/seq/alt), statement
// reification, and an RDFS-subset inference closure. Access control lives
// in security.go.
package rdf

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Well-known vocabulary IRIs (shortened; no namespace machinery needed).
const (
	RDFType      = "rdf:type"
	RDFSubject   = "rdf:subject"
	RDFPredicate = "rdf:predicate"
	RDFObject    = "rdf:object"
	RDFStatement = "rdf:Statement"
	RDFBag       = "rdf:Bag"
	RDFSeq       = "rdf:Seq"
	RDFAlt       = "rdf:Alt"

	RDFSSubClassOf    = "rdfs:subClassOf"
	RDFSSubPropertyOf = "rdfs:subPropertyOf"
	RDFSDomain        = "rdfs:domain"
	RDFSRange         = "rdfs:range"
	RDFSClass         = "rdfs:Class"
	RDFSProperty      = "rdf:Property"
)

// TermKind discriminates term variants.
type TermKind int

// Term kinds.
const (
	IRI TermKind = iota
	Literal
	Blank
)

// Term is an RDF term: an IRI reference, a literal, or a blank node.
type Term struct {
	Kind  TermKind
	Value string
}

// NewIRI returns an IRI term.
func NewIRI(v string) Term { return Term{Kind: IRI, Value: v} }

// NewLiteral returns a literal term.
func NewLiteral(v string) Term { return Term{Kind: Literal, Value: v} }

// NewBlank returns a blank-node term.
func NewBlank(v string) Term { return Term{Kind: Blank, Value: v} }

func (t Term) String() string {
	switch t.Kind {
	case Literal:
		return fmt.Sprintf("%q", t.Value)
	case Blank:
		return "_:" + t.Value
	default:
		return "<" + t.Value + ">"
	}
}

// Triple is one RDF statement.
type Triple struct {
	S Term
	P Term
	O Term
}

func (t Triple) String() string {
	return fmt.Sprintf("%s %s %s .", t.S, t.P, t.O)
}

// Pattern is a triple pattern: nil positions are wildcards.
type Pattern struct {
	S *Term
	P *Term
	O *Term
}

// Matches reports whether the pattern matches a triple.
func (p Pattern) Matches(t Triple) bool {
	if p.S != nil && *p.S != t.S {
		return false
	}
	if p.P != nil && *p.P != t.P {
		return false
	}
	if p.O != nil && *p.O != t.O {
		return false
	}
	return true
}

// T is a convenience pointer constructor for patterns.
func T(t Term) *Term { return &t }

// Store is an indexed triple store. All methods are safe for concurrent
// use.
type Store struct {
	mu      sync.RWMutex
	triples map[Triple]bool
	// Indexes: by subject, by predicate, by object.
	bySubject   map[Term][]Triple
	byPredicate map[Term][]Triple
	byObject    map[Term][]Triple
	blankSeq    int
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		triples:     make(map[Triple]bool),
		bySubject:   make(map[Term][]Triple),
		byPredicate: make(map[Term][]Triple),
		byObject:    make(map[Term][]Triple),
	}
}

// Add inserts a triple; duplicates are ignored. It reports whether the
// triple was new.
func (s *Store) Add(t Triple) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addLocked(t)
}

func (s *Store) addLocked(t Triple) bool {
	if s.triples[t] {
		return false
	}
	s.triples[t] = true
	s.bySubject[t.S] = append(s.bySubject[t.S], t)
	s.byPredicate[t.P] = append(s.byPredicate[t.P], t)
	s.byObject[t.O] = append(s.byObject[t.O], t)
	return true
}

// AddAll inserts multiple triples.
func (s *Store) AddAll(ts ...Triple) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range ts {
		s.addLocked(t)
	}
}

// Remove deletes a triple; it reports whether it was present.
func (s *Store) Remove(t Triple) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.triples[t] {
		return false
	}
	delete(s.triples, t)
	s.bySubject[t.S] = dropTriple(s.bySubject[t.S], t)
	s.byPredicate[t.P] = dropTriple(s.byPredicate[t.P], t)
	s.byObject[t.O] = dropTriple(s.byObject[t.O], t)
	return true
}

func dropTriple(ts []Triple, t Triple) []Triple {
	for i := range ts {
		if ts[i] == t {
			return append(ts[:i], ts[i+1:]...)
		}
	}
	return ts
}

// Has reports whether the store contains the triple.
func (s *Store) Has(t Triple) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.triples[t]
}

// Len returns the number of triples.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.triples)
}

// Query returns the triples matching the pattern, in deterministic order.
// It uses the most selective available index.
func (s *Store) Query(p Pattern) []Triple {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var candidates []Triple
	switch {
	case p.S != nil:
		candidates = s.bySubject[*p.S]
	case p.O != nil:
		candidates = s.byObject[*p.O]
	case p.P != nil:
		candidates = s.byPredicate[*p.P]
	default:
		candidates = make([]Triple, 0, len(s.triples))
		for t := range s.triples {
			candidates = append(candidates, t)
		}
	}
	var out []Triple
	for _, t := range candidates {
		if p.Matches(t) {
			out = append(out, t)
		}
	}
	sortTriples(out)
	return out
}

// All returns every triple in deterministic order.
func (s *Store) All() []Triple { return s.Query(Pattern{}) }

func sortTriples(ts []Triple) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if a.S != b.S {
			return termLess(a.S, b.S)
		}
		if a.P != b.P {
			return termLess(a.P, b.P)
		}
		return termLess(a.O, b.O)
	})
}

func termLess(a, b Term) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.Value < b.Value
}

// freshBlank returns a new unique blank node.
func (s *Store) freshBlank(prefix string) Term {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blankSeq++
	return NewBlank(fmt.Sprintf("%s%d", prefix, s.blankSeq))
}

// Reify records a statement about a statement: it mints a statement node
// typed rdf:Statement with rdf:subject/predicate/object arcs pointing at
// the reified triple's terms, and returns the node so callers can attach
// further assertions (provenance, certainty, classification...). The
// reified triple itself is NOT asserted — per RDF semantics reification
// does not imply assertion.
func (s *Store) Reify(t Triple) Term {
	stmt := s.freshBlank("stmt")
	s.AddAll(
		Triple{S: stmt, P: NewIRI(RDFType), O: NewIRI(RDFStatement)},
		Triple{S: stmt, P: NewIRI(RDFSubject), O: t.S},
		Triple{S: stmt, P: NewIRI(RDFPredicate), O: t.P},
		Triple{S: stmt, P: NewIRI(RDFObject), O: t.O},
	)
	return stmt
}

// ReifiedTriple reconstructs the triple described by a statement node.
func (s *Store) ReifiedTriple(stmt Term) (Triple, bool) {
	get := func(pred string) (Term, bool) {
		ts := s.Query(Pattern{S: T(stmt), P: T(NewIRI(pred))})
		if len(ts) != 1 {
			return Term{}, false
		}
		return ts[0].O, true
	}
	sub, ok1 := get(RDFSubject)
	pred, ok2 := get(RDFPredicate)
	obj, ok3 := get(RDFObject)
	if !ok1 || !ok2 || !ok3 {
		return Triple{}, false
	}
	return Triple{S: sub, P: pred, O: obj}, true
}

// Statements returns all reified statement nodes.
func (s *Store) Statements() []Term {
	var out []Term
	for _, t := range s.Query(Pattern{P: T(NewIRI(RDFType)), O: T(NewIRI(RDFStatement))}) {
		out = append(out, t.S)
	}
	return out
}

// NewContainer creates a container (RDFBag, RDFSeq or RDFAlt) holding the
// members in order, returning the container node. Members are linked with
// rdf:_1, rdf:_2, ...
func (s *Store) NewContainer(kind string, members ...Term) (Term, error) {
	switch kind {
	case RDFBag, RDFSeq, RDFAlt:
	default:
		return Term{}, fmt.Errorf("rdf: unknown container kind %q", kind)
	}
	c := s.freshBlank("container")
	s.Add(Triple{S: c, P: NewIRI(RDFType), O: NewIRI(kind)})
	for i, m := range members {
		s.Add(Triple{S: c, P: NewIRI(fmt.Sprintf("rdf:_%d", i+1)), O: m})
	}
	return c, nil
}

// ContainerMembers returns the members of a container in index order.
func (s *Store) ContainerMembers(c Term) []Term {
	type entry struct {
		idx int
		m   Term
	}
	var entries []entry
	for _, t := range s.Query(Pattern{S: T(c)}) {
		if !strings.HasPrefix(t.P.Value, "rdf:_") {
			continue
		}
		var idx int
		if _, err := fmt.Sscanf(t.P.Value, "rdf:_%d", &idx); err != nil {
			continue
		}
		entries = append(entries, entry{idx, t.O})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].idx < entries[j].idx })
	out := make([]Term, len(entries))
	for i, e := range entries {
		out[i] = e.m
	}
	return out
}

// ContainerKind returns the container type of a node ("" if none).
func (s *Store) ContainerKind(c Term) string {
	for _, t := range s.Query(Pattern{S: T(c), P: T(NewIRI(RDFType))}) {
		switch t.O.Value {
		case RDFBag, RDFSeq, RDFAlt:
			return t.O.Value
		}
	}
	return ""
}

// InferRDFS materializes the RDFS-subset entailments into the store and
// returns the number of triples added. Rules applied to fixpoint:
//
//	rdfs5  (subPropertyOf transitivity)
//	rdfs7  (x p y, p subPropertyOf q  ⇒  x q y)
//	rdfs9  (x type C, C subClassOf D  ⇒  x type D)
//	rdfs11 (subClassOf transitivity)
//	rdfs2  (x p y, p domain C  ⇒  x type C)
//	rdfs3  (x p y, p range C   ⇒  y type C)
func (s *Store) InferRDFS() int {
	added := 0
	typeIRI := NewIRI(RDFType)
	for {
		var newTriples []Triple
		// rdfs11: subClassOf transitivity.
		for _, ab := range s.Query(Pattern{P: T(NewIRI(RDFSSubClassOf))}) {
			for _, bc := range s.Query(Pattern{S: T(ab.O), P: T(NewIRI(RDFSSubClassOf))}) {
				newTriples = append(newTriples, Triple{S: ab.S, P: NewIRI(RDFSSubClassOf), O: bc.O})
			}
		}
		// rdfs5: subPropertyOf transitivity.
		for _, ab := range s.Query(Pattern{P: T(NewIRI(RDFSSubPropertyOf))}) {
			for _, bc := range s.Query(Pattern{S: T(ab.O), P: T(NewIRI(RDFSSubPropertyOf))}) {
				newTriples = append(newTriples, Triple{S: ab.S, P: NewIRI(RDFSSubPropertyOf), O: bc.O})
			}
		}
		// rdfs9: type propagation up the class hierarchy.
		for _, sub := range s.Query(Pattern{P: T(NewIRI(RDFSSubClassOf))}) {
			for _, inst := range s.Query(Pattern{P: T(typeIRI), O: T(sub.S)}) {
				newTriples = append(newTriples, Triple{S: inst.S, P: typeIRI, O: sub.O})
			}
		}
		// rdfs7: property subsumption.
		for _, sp := range s.Query(Pattern{P: T(NewIRI(RDFSSubPropertyOf))}) {
			for _, use := range s.Query(Pattern{P: T(sp.S)}) {
				newTriples = append(newTriples, Triple{S: use.S, P: sp.O, O: use.O})
			}
		}
		// rdfs2/rdfs3: domain and range typing.
		for _, dom := range s.Query(Pattern{P: T(NewIRI(RDFSDomain))}) {
			for _, use := range s.Query(Pattern{P: T(dom.S)}) {
				newTriples = append(newTriples, Triple{S: use.S, P: typeIRI, O: dom.O})
			}
		}
		for _, rng := range s.Query(Pattern{P: T(NewIRI(RDFSRange))}) {
			for _, use := range s.Query(Pattern{P: T(rng.S)}) {
				if use.O.Kind == Literal {
					continue
				}
				newTriples = append(newTriples, Triple{S: use.O, P: typeIRI, O: rng.O})
			}
		}
		n := 0
		for _, t := range newTriples {
			if s.Add(t) {
				n++
			}
		}
		if n == 0 {
			return added
		}
		added += n
	}
}

// IsSchemaTriple reports whether a triple belongs to the schema layer
// (class/property definitions) rather than instance data — the distinction
// behind the paper's "how can we protect RDF schemas?".
func IsSchemaTriple(t Triple) bool {
	switch t.P.Value {
	case RDFSSubClassOf, RDFSSubPropertyOf, RDFSDomain, RDFSRange:
		return true
	}
	if t.P.Value == RDFType {
		switch t.O.Value {
		case RDFSClass, RDFSProperty:
			return true
		}
	}
	return false
}
