package rdf

import (
	"strings"
	"testing"

	"webdbsec/internal/policy"
)

func socialStore() *Store {
	s := NewStore()
	s.AddAll(
		tr("alice", "knows", "bob"),
		tr("bob", "knows", "carol"),
		tr("alice", "knows", "dave"),
		tr("dave", "knows", "carol"),
		tr("carol", "worksAt", "acme"),
		tr("bob", "worksAt", "acme"),
		tr("dave", "worksAt", "globex"),
	)
	return s
}

func TestBGPSinglePattern(t *testing.T) {
	s := socialStore()
	out := s.Select(BGP{{S: T2(NewIRI("alice")), P: T2(NewIRI("knows")), O: V("who")}})
	if len(out) != 2 {
		t.Fatalf("solutions = %d", len(out))
	}
	if out[0][Var("who")].Value != "bob" || out[1][Var("who")].Value != "dave" {
		t.Errorf("out = %v", out)
	}
}

func TestBGPJoin(t *testing.T) {
	// Who do alice's acquaintances know? alice knows ?x, ?x knows ?y.
	s := socialStore()
	out := s.Select(BGP{
		{S: T2(NewIRI("alice")), P: T2(NewIRI("knows")), O: V("x")},
		{S: V("x"), P: T2(NewIRI("knows")), O: V("y")},
	})
	if len(out) != 2 {
		t.Fatalf("solutions = %v", out)
	}
	for _, b := range out {
		if b[Var("y")].Value != "carol" {
			t.Errorf("unexpected second hop: %v", b)
		}
	}
}

func TestBGPThreeWayJoin(t *testing.T) {
	// Friends-of-alice who work at acme.
	s := socialStore()
	out := s.Select(BGP{
		{S: T2(NewIRI("alice")), P: T2(NewIRI("knows")), O: V("x")},
		{S: V("x"), P: T2(NewIRI("worksAt")), O: T2(NewIRI("acme"))},
	})
	if len(out) != 1 || out[0][Var("x")].Value != "bob" {
		t.Fatalf("out = %v", out)
	}
}

func TestBGPSharedVariableWithinPattern(t *testing.T) {
	s := NewStore()
	s.AddAll(
		tr("a", "likes", "a"), // self-loop
		tr("a", "likes", "b"),
	)
	out := s.Select(BGP{{S: V("x"), P: T2(NewIRI("likes")), O: V("x")}})
	if len(out) != 1 || out[0][Var("x")].Value != "a" {
		t.Fatalf("self-loop join = %v", out)
	}
}

func TestBGPNoSolutions(t *testing.T) {
	s := socialStore()
	out := s.Select(BGP{
		{S: T2(NewIRI("carol")), P: T2(NewIRI("knows")), O: V("x")},
	})
	if len(out) != 0 {
		t.Errorf("out = %v", out)
	}
}

func TestBGPEmptyPatternListYieldsEmptyBinding(t *testing.T) {
	s := socialStore()
	out := s.Select(BGP{})
	if len(out) != 1 || len(out[0]) != 0 {
		t.Errorf("out = %v", out)
	}
}

func TestBGPAllVariables(t *testing.T) {
	s := socialStore()
	out := s.Select(BGP{{S: V("s"), P: V("p"), O: V("o")}})
	if len(out) != s.Len() {
		t.Errorf("solutions = %d, want %d", len(out), s.Len())
	}
}

func TestGuardedBGPDoesNotJoinThroughHiddenTriples(t *testing.T) {
	s := socialStore()
	g := NewGuard(s)
	// bob's employment is secret.
	g.AddClassRule(&ClassRule{
		Pattern: Pattern{S: T(NewIRI("bob")), P: T(NewIRI("worksAt"))},
		Level:   Secret,
	})
	low := NewClearance(&policy.Subject{ID: "u"}, Unclassified)
	out := g.Select(low, BGP{
		{S: T2(NewIRI("alice")), P: T2(NewIRI("knows")), O: V("x")},
		{S: V("x"), P: T2(NewIRI("worksAt")), O: V("org")},
	})
	// Without the guard, bob@acme and dave@globex both answer; with it,
	// only dave survives: the hidden triple cannot contribute to a join.
	if len(out) != 1 || out[0][Var("x")].Value != "dave" {
		t.Fatalf("guarded join leaked: %v", out)
	}
	high := NewClearance(&policy.Subject{ID: "u", Roles: []string{"analyst"}}, Secret)
	g.AddPolicy(&TriplePolicy{
		Name:    "analysts",
		Subject: policy.SubjectSpec{Roles: []string{"analyst"}},
		Pattern: Pattern{P: T(NewIRI("worksAt"))},
		Sign:    policy.Permit,
	})
	out = g.Select(high, BGP{
		{S: V("x"), P: T2(NewIRI("worksAt")), O: T2(NewIRI("acme"))},
	})
	if len(out) != 2 {
		t.Errorf("cleared join = %v", out)
	}
}

func TestBindingString(t *testing.T) {
	b := Binding{"z": NewIRI("v"), "a": NewLiteral("x")}
	s := b.String()
	if !strings.HasPrefix(s, "?a=") || !strings.Contains(s, "?z=") {
		t.Errorf("binding string = %q", s)
	}
}

func TestBGPDeterministicOrder(t *testing.T) {
	s := socialStore()
	a := s.Select(BGP{{S: V("s"), P: T2(NewIRI("knows")), O: V("o")}})
	b := s.Select(BGP{{S: V("s"), P: T2(NewIRI("knows")), O: V("o")}})
	if len(a) != len(b) {
		t.Fatal("nondeterministic count")
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatal("nondeterministic order")
		}
	}
}
