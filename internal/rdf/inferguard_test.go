package rdf

import (
	"testing"

	"webdbsec/internal/policy"
)

// TestInferenceDoesNotDeclassify: the §5 scenario. The axiom
// "CovertAsset ⊑ MilitaryAsset" is Secret; "drone-7 type CovertAsset" is
// visible. Plain inference would hand a low-cleared subject the derived
// "drone-7 type MilitaryAsset"... revealing that the covert class sits
// under MilitaryAsset. Guarded inference pins the conclusion at the
// premise level.
func TestInferenceDoesNotDeclassify(t *testing.T) {
	s := NewStore()
	axiom := tr("CovertAsset", RDFSSubClassOf, "MilitaryAsset")
	fact := tr("drone-7", RDFType, "CovertAsset")
	s.AddAll(axiom, fact)
	g := NewGuard(s)
	g.AddClassRule(&ClassRule{
		Name:    "covert-taxonomy",
		Pattern: Pattern{S: T(NewIRI("CovertAsset")), P: T(NewIRI(RDFSSubClassOf))},
		Level:   Secret,
	})
	// Facts and derived conclusions need a discretionary permit for
	// cleared analysts.
	g.AddPolicy(&TriplePolicy{
		Name:    "analysts",
		Subject: policy.SubjectSpec{Roles: []string{"analyst"}},
		Pattern: Pattern{},
		Sign:    policy.Permit,
	})

	added := g.InferRDFS()
	if added == 0 {
		t.Fatal("no entailments")
	}
	derived := tr("drone-7", RDFType, "MilitaryAsset")
	if !s.Has(derived) {
		t.Fatal("entailment missing")
	}
	if got := g.LevelOf(derived); got != Secret {
		t.Fatalf("derived level = %v, want secret (premise max)", got)
	}
	low := NewClearance(&policy.Subject{ID: "u", Roles: []string{"analyst"}}, Unclassified)
	high := NewClearance(&policy.Subject{ID: "a", Roles: []string{"analyst"}}, Secret)
	if g.Readable(low, derived) {
		t.Error("derived conclusion readable below premise level: inference declassified")
	}
	if !g.Readable(high, derived) {
		t.Error("cleared analyst denied the derived conclusion")
	}
	// The original fact stays readable at low clearance.
	if !g.Readable(low, fact) {
		t.Error("unclassified premise over-classified")
	}
}

func TestInferenceUnclassifiedPremisesStayOpen(t *testing.T) {
	s := NewStore()
	s.AddAll(
		tr("Cardiologist", RDFSSubClassOf, "Physician"),
		tr("drho", RDFType, "Cardiologist"),
	)
	g := NewGuard(s)
	g.InferRDFS()
	derived := tr("drho", RDFType, "Physician")
	if !s.Has(derived) {
		t.Fatal("entailment missing")
	}
	if got := g.LevelOf(derived); got != Unclassified {
		t.Errorf("derived level = %v, want unclassified", got)
	}
	low := NewClearance(&policy.Subject{ID: "u"}, Unclassified)
	if !g.Readable(low, derived) {
		t.Error("fully-unclassified entailment hidden")
	}
}

func TestInferenceChainedPremisesPropagateLevel(t *testing.T) {
	// A ⊑ B (secret), B ⊑ C (open), x type A (open):
	// x type B is Secret; x type C derived from (B⊑C, x type B) inherits
	// Secret through the chain.
	s := NewStore()
	s.AddAll(
		tr("A", RDFSSubClassOf, "B"),
		tr("B", RDFSSubClassOf, "C"),
		tr("x", RDFType, "A"),
	)
	g := NewGuard(s)
	g.AddClassRule(&ClassRule{
		Name:    "ab-secret",
		Pattern: Pattern{S: T(NewIRI("A")), P: T(NewIRI(RDFSSubClassOf)), O: T(NewIRI("B"))},
		Level:   Secret,
	})
	g.InferRDFS()
	for _, want := range []Triple{
		tr("x", RDFType, "B"),
		tr("x", RDFType, "C"),
		tr("A", RDFSSubClassOf, "C"),
	} {
		if !s.Has(want) {
			t.Fatalf("missing entailment %v", want)
		}
		if got := g.LevelOf(want); got != Secret {
			t.Errorf("level(%v) = %v, want secret", want, got)
		}
	}
}

func TestCheaperDerivationLowersPin(t *testing.T) {
	// The same conclusion is derivable two ways: through a secret axiom
	// and through an open one. The open path means the conclusion protects
	// nothing — the pin must come down to Unclassified.
	s := NewStore()
	s.AddAll(
		tr("A", RDFSSubClassOf, "C"), // secret path
		tr("x", RDFType, "A"),
	)
	g := NewGuard(s)
	g.AddClassRule(&ClassRule{
		Name:    "ac-secret",
		Pattern: Pattern{S: T(NewIRI("A")), P: T(NewIRI(RDFSSubClassOf)), O: T(NewIRI("C"))},
		Level:   Secret,
	})
	g.InferRDFS()
	derived := tr("x", RDFType, "C")
	if got := g.LevelOf(derived); got != Secret {
		t.Fatalf("level = %v, want secret before the open path exists", got)
	}
	// Now an open derivation appears: B ⊑ C with x type B.
	s.AddAll(
		tr("B", RDFSSubClassOf, "C"),
		tr("x", RDFType, "B"),
	)
	g.InferRDFS()
	if got := g.LevelOf(derived); got != Unclassified {
		t.Errorf("level = %v, want unclassified after open derivation", got)
	}
}

func TestGuardedInferenceIdempotent(t *testing.T) {
	s := NewStore()
	s.AddAll(
		tr("A", RDFSSubClassOf, "B"),
		tr("x", RDFType, "A"),
	)
	g := NewGuard(s)
	if g.InferRDFS() == 0 {
		t.Fatal("first run added nothing")
	}
	if again := g.InferRDFS(); again != 0 {
		t.Errorf("second run added %d", again)
	}
}
