package rdf

import (
	"testing"
)

func tr(s, p, o string) Triple {
	return Triple{S: NewIRI(s), P: NewIRI(p), O: NewIRI(o)}
}

func trLit(s, p, lit string) Triple {
	return Triple{S: NewIRI(s), P: NewIRI(p), O: NewLiteral(lit)}
}

func TestAddQueryRemove(t *testing.T) {
	s := NewStore()
	t1 := tr("alice", "knows", "bob")
	t2 := tr("alice", "knows", "carol")
	t3 := tr("bob", "knows", "carol")
	if !s.Add(t1) {
		t.Error("fresh add returned false")
	}
	if s.Add(t1) {
		t.Error("duplicate add returned true")
	}
	s.AddAll(t2, t3)
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	if got := s.Query(Pattern{S: T(NewIRI("alice"))}); len(got) != 2 {
		t.Errorf("by subject = %d", len(got))
	}
	if got := s.Query(Pattern{O: T(NewIRI("carol"))}); len(got) != 2 {
		t.Errorf("by object = %d", len(got))
	}
	if got := s.Query(Pattern{P: T(NewIRI("knows"))}); len(got) != 3 {
		t.Errorf("by predicate = %d", len(got))
	}
	if got := s.Query(Pattern{S: T(NewIRI("alice")), O: T(NewIRI("bob"))}); len(got) != 1 {
		t.Errorf("s+o = %d", len(got))
	}
	if !s.Remove(t1) || s.Remove(t1) {
		t.Error("remove semantics wrong")
	}
	if s.Has(t1) {
		t.Error("removed triple still present")
	}
	if got := s.Query(Pattern{S: T(NewIRI("alice"))}); len(got) != 1 {
		t.Errorf("index stale after remove: %d", len(got))
	}
}

func TestQueryDeterministicOrder(t *testing.T) {
	s := NewStore()
	s.AddAll(tr("c", "p", "x"), tr("a", "p", "x"), tr("b", "p", "x"))
	got := s.All()
	if got[0].S.Value != "a" || got[1].S.Value != "b" || got[2].S.Value != "c" {
		t.Errorf("order = %v", got)
	}
}

func TestTermKindsDistinct(t *testing.T) {
	s := NewStore()
	s.Add(Triple{S: NewIRI("x"), P: NewIRI("p"), O: NewIRI("v")})
	s.Add(Triple{S: NewIRI("x"), P: NewIRI("p"), O: NewLiteral("v")})
	if s.Len() != 2 {
		t.Error("IRI and literal with same value conflated")
	}
}

func TestReification(t *testing.T) {
	s := NewStore()
	claim := tr("bob", "salary", "100k")
	stmt := s.Reify(claim)
	// Reification does not assert.
	if s.Has(claim) {
		t.Error("reified triple was asserted")
	}
	got, ok := s.ReifiedTriple(stmt)
	if !ok || got != claim {
		t.Fatalf("reified triple = %v, %v", got, ok)
	}
	// Attach provenance to the statement node.
	s.Add(Triple{S: stmt, P: NewIRI("source"), O: NewLiteral("hr-db")})
	if len(s.Statements()) != 1 {
		t.Errorf("statements = %d", len(s.Statements()))
	}
	if _, ok := s.ReifiedTriple(NewBlank("nope")); ok {
		t.Error("ReifiedTriple of non-statement succeeded")
	}
}

func TestContainers(t *testing.T) {
	s := NewStore()
	members := []Term{NewIRI("m1"), NewIRI("m2"), NewIRI("m3")}
	bag, err := s.NewContainer(RDFBag, members...)
	if err != nil {
		t.Fatal(err)
	}
	if s.ContainerKind(bag) != RDFBag {
		t.Errorf("kind = %q", s.ContainerKind(bag))
	}
	got := s.ContainerMembers(bag)
	if len(got) != 3 || got[0] != members[0] || got[2] != members[2] {
		t.Errorf("members = %v", got)
	}
	if _, err := s.NewContainer("rdf:Nope"); err == nil {
		t.Error("unknown container kind accepted")
	}
	seq, _ := s.NewContainer(RDFSeq, NewLiteral("a"))
	if s.ContainerKind(seq) != RDFSeq {
		t.Error("seq kind wrong")
	}
	if s.ContainerKind(NewIRI("not-a-container")) != "" {
		t.Error("kind of non-container")
	}
}

func TestContainerOrderWithManyMembers(t *testing.T) {
	s := NewStore()
	var members []Term
	for i := 0; i < 12; i++ {
		members = append(members, NewLiteral(string(rune('a'+i))))
	}
	seq, _ := s.NewContainer(RDFSeq, members...)
	got := s.ContainerMembers(seq)
	if len(got) != 12 {
		t.Fatalf("members = %d", len(got))
	}
	// rdf:_10 must sort after rdf:_9 (numeric, not lexicographic).
	for i, m := range members {
		if got[i] != m {
			t.Fatalf("member %d = %v, want %v", i, got[i], m)
		}
	}
}

func TestInferRDFSSubclassChain(t *testing.T) {
	s := NewStore()
	s.AddAll(
		tr("Cardiologist", RDFSSubClassOf, "Physician"),
		tr("Physician", RDFSSubClassOf, "Employee"),
		tr("drho", RDFType, "Cardiologist"),
	)
	added := s.InferRDFS()
	if added == 0 {
		t.Fatal("no entailments")
	}
	for _, want := range []Triple{
		tr("drho", RDFType, "Physician"),
		tr("drho", RDFType, "Employee"),
		tr("Cardiologist", RDFSSubClassOf, "Employee"),
	} {
		if !s.Has(want) {
			t.Errorf("missing entailment %v", want)
		}
	}
	// Fixpoint: second run adds nothing.
	if again := s.InferRDFS(); again != 0 {
		t.Errorf("second inference added %d", again)
	}
}

func TestInferRDFSPropertiesDomainRange(t *testing.T) {
	s := NewStore()
	s.AddAll(
		tr("treats", RDFSSubPropertyOf, "caresFor"),
		tr("caresFor", RDFSDomain, "Physician"),
		tr("caresFor", RDFSRange, "Patient"),
		tr("drho", "treats", "p42"),
	)
	s.InferRDFS()
	for _, want := range []Triple{
		tr("drho", "caresFor", "p42"),
		tr("drho", RDFType, "Physician"),
		tr("p42", RDFType, "Patient"),
	} {
		if !s.Has(want) {
			t.Errorf("missing entailment %v", want)
		}
	}
}

func TestInferRDFSRangeSkipsLiterals(t *testing.T) {
	s := NewStore()
	s.AddAll(
		tr("name", RDFSRange, "Name"),
		trLit("p42", "name", "Bob"),
	)
	s.InferRDFS()
	if s.Has(Triple{S: NewLiteral("Bob"), P: NewIRI(RDFType), O: NewIRI("Name")}) {
		t.Error("literal got typed")
	}
}

func TestIsSchemaTriple(t *testing.T) {
	cases := []struct {
		t    Triple
		want bool
	}{
		{tr("A", RDFSSubClassOf, "B"), true},
		{tr("p", RDFSSubPropertyOf, "q"), true},
		{tr("p", RDFSDomain, "A"), true},
		{tr("p", RDFSRange, "A"), true},
		{tr("A", RDFType, RDFSClass), true},
		{tr("p", RDFType, RDFSProperty), true},
		{tr("x", RDFType, "A"), false},
		{tr("x", "knows", "y"), false},
	}
	for _, c := range cases {
		if got := IsSchemaTriple(c.t); got != c.want {
			t.Errorf("IsSchemaTriple(%v) = %v", c.t, got)
		}
	}
}

func TestPatternMatching(t *testing.T) {
	t1 := tr("a", "p", "b")
	if !(Pattern{}).Matches(t1) {
		t.Error("empty pattern should match")
	}
	if !(Pattern{S: T(NewIRI("a"))}).Matches(t1) {
		t.Error("subject pattern should match")
	}
	if (Pattern{S: T(NewIRI("z"))}).Matches(t1) {
		t.Error("wrong subject matched")
	}
	if (Pattern{O: T(NewLiteral("b"))}).Matches(t1) {
		t.Error("literal matched IRI")
	}
}

func TestTripleString(t *testing.T) {
	got := Triple{S: NewIRI("a"), P: NewIRI("p"), O: NewLiteral("v")}.String()
	if got != `<a> <p> "v" .` {
		t.Errorf("String = %q", got)
	}
	if NewBlank("b1").String() != "_:b1" {
		t.Error("blank node format")
	}
}
