package decisioncache

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"webdbsec/internal/accessctl"
	"webdbsec/internal/policy"
	"webdbsec/internal/xmldoc"
)

// hospitalDoc builds a small ward document; seed varies the content so
// successive Puts of the same name produce genuinely different trees.
func hospitalDoc(name string, patients, seed int) *xmldoc.Document {
	b := xmldoc.NewBuilder(name, "hospital")
	for i := 0; i < patients; i++ {
		b.Begin("patient")
		b.Attrib("ward", fmt.Sprintf("%d", (i+seed)%4))
		b.Element("name", fmt.Sprintf("p%d-%d", i, seed))
		b.Element("disease", "flu")
		b.End()
	}
	return b.Freeze()
}

func wardPolicy(name, role string, ward int, sign policy.Sign) *policy.Policy {
	return &policy.Policy{
		Name:    name,
		Subject: policy.SubjectSpec{Roles: []string{role}},
		Object:  policy.ObjectSpec{Doc: "h.xml", Path: fmt.Sprintf("//patient[@ward='%d']", ward)},
		Priv:    policy.Read,
		Sign:    sign,
		Prop:    policy.Cascade,
	}
}

// testEngines returns a cached engine and a SEPARATE plain engine over the
// same store and base, so every cached answer can be compared with a
// from-scratch computation.
func testEngines(t *testing.T) (*Engine, *accessctl.Engine, *xmldoc.Store, *policy.Base) {
	t.Helper()
	store := xmldoc.NewStore()
	store.Put(hospitalDoc("h.xml", 12, 0))
	base := policy.NewBase(nil)
	base.MustAdd(wardPolicy("w0", "staff", 0, policy.Permit))
	base.MustAdd(wardPolicy("w1", "staff", 1, policy.Permit))
	base.MustAdd(&policy.Policy{
		Name:    "deny-disease",
		Subject: policy.SubjectSpec{NotRoles: []string{"physician"}},
		Object:  policy.ObjectSpec{Doc: "h.xml", Path: "//disease"},
		Priv:    policy.Read,
		Sign:    policy.Deny,
		Prop:    policy.Cascade,
	})
	return NewEngine(accessctl.NewEngine(store, base), 256), accessctl.NewEngine(store, base), store, base
}

func equalLabels(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalViews(a, b *xmldoc.Document) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || a.Canonical() == b.Canonical()
}

func TestLabelsMatchUncached(t *testing.T) {
	cached, plain, store, _ := testEngines(t)
	doc, _ := store.Get("h.xml")
	subjects := []*policy.Subject{
		{ID: "a", Roles: []string{"staff"}},
		{ID: "b", Roles: []string{"physician", "staff"}},
		{ID: "c"},
	}
	for _, s := range subjects {
		for pass := 0; pass < 2; pass++ { // pass 1 is served from cache
			got := cached.Labels(doc, s, policy.Read)
			want := plain.Labels(doc, s, policy.Read)
			if !equalLabels(got, want) {
				t.Errorf("subject %s pass %d: cached labels differ from uncached", s.ID, pass)
			}
		}
	}
	if st := cached.Stats(); st.Labels.Hits == 0 {
		t.Error("second passes did not hit the labels cache")
	}
}

func TestLabelsReturnsCopy(t *testing.T) {
	cached, _, store, _ := testEngines(t)
	doc, _ := store.Get("h.xml")
	s := &policy.Subject{ID: "a", Roles: []string{"staff"}}
	l1 := cached.Labels(doc, s, policy.Read)
	for i := range l1 {
		l1[i] = !l1[i] // caller scribbles on its copy
	}
	l2 := cached.Labels(doc, s, policy.Read)
	if equalLabels(l1, l2) {
		t.Fatal("mutating a returned labels slice corrupted the cached entry")
	}
}

func TestViewCachedIncludingDenials(t *testing.T) {
	cached, plain, _, _ := testEngines(t)
	granted := &policy.Subject{ID: "a", Roles: []string{"staff"}}
	denied := &policy.Subject{ID: "z"}
	for pass := 0; pass < 2; pass++ {
		if !equalViews(cached.View("h.xml", granted, policy.Read), plain.View("h.xml", granted, policy.Read)) {
			t.Errorf("pass %d: cached view differs from uncached", pass)
		}
		if v := cached.View("h.xml", denied, policy.Read); v != nil {
			t.Errorf("pass %d: denied subject got a view", pass)
		}
	}
	st := cached.Stats()
	if st.Views.Hits < 2 {
		t.Errorf("views cache hits = %d, want >= 2 (grant and denial both cached)", st.Views.Hits)
	}
}

func TestCheckMatchesUncached(t *testing.T) {
	cached, plain, _, _ := testEngines(t)
	subjects := []*policy.Subject{
		{ID: "a", Roles: []string{"staff"}},
		{ID: "b", Roles: []string{"physician", "staff"}},
	}
	paths := []string{"//patient[@ward='0']", "//disease", "/hospital"}
	for _, s := range subjects {
		for _, p := range paths {
			for pass := 0; pass < 2; pass++ {
				got := cached.Check("h.xml", p, s, policy.Read)
				want := plain.Check("h.xml", p, s, policy.Read)
				if got != want {
					t.Errorf("Check(%s, %s) = %v, want %v", p, s.ID, got, want)
				}
			}
		}
	}
	if st := cached.Stats(); st.Paths.Hits == 0 {
		t.Error("repeated Check never hit the compiled-path cache")
	}
}

func TestInvalidationOnBaseMutation(t *testing.T) {
	cached, plain, store, base := testEngines(t)
	doc, _ := store.Get("h.xml")
	s := &policy.Subject{ID: "a", Roles: []string{"staff"}}
	before := cached.Labels(doc, s, policy.Read)

	// A deny at the SAME specificity as the w0 permit: conflict resolution
	// is most-specific-wins with deny breaking ties, so ward 0 flips to
	// denied while ward 1 stays permitted.
	base.MustAdd(wardPolicy("revoke-w0", "staff", 0, policy.Deny))
	after := cached.Labels(doc, s, policy.Read)
	if equalLabels(before, after) {
		t.Fatal("cache served pre-mutation labels after a policy Add")
	}
	if !equalLabels(after, plain.Labels(doc, s, policy.Read)) {
		t.Fatal("post-mutation cached labels differ from uncached")
	}

	base.Remove("revoke-w0")
	restored := cached.Labels(doc, s, policy.Read)
	if !equalLabels(restored, before) {
		t.Fatal("cache did not see the policy Remove")
	}
}

func TestInvalidationOnStorePut(t *testing.T) {
	cached, plain, store, _ := testEngines(t)
	s := &policy.Subject{ID: "a", Roles: []string{"staff"}}
	v1 := cached.View("h.xml", s, policy.Read)
	store.Put(hospitalDoc("h.xml", 12, 7)) // new content, same name
	v2 := cached.View("h.xml", s, policy.Read)
	if equalViews(v1, v2) {
		t.Fatal("cache served the old document's view after Put")
	}
	if !equalViews(v2, plain.View("h.xml", s, policy.Read)) {
		t.Fatal("post-Put cached view differs from uncached")
	}
}

func TestDetachedDocumentBypassesCache(t *testing.T) {
	cached, plain, store, _ := testEngines(t)
	old, _ := store.Get("h.xml")
	store.Put(hospitalDoc("h.xml", 12, 3))
	s := &policy.Subject{ID: "a", Roles: []string{"staff"}}
	// Labels of the detached old version must be computed against the old
	// tree, not aliased onto the current document's cache entries.
	got := cached.Labels(old, s, policy.Read)
	want := plain.Labels(old, s, policy.Read)
	if !equalLabels(got, want) {
		t.Fatal("detached document decision differs from uncached")
	}
}

func TestConfigurationsMemoized(t *testing.T) {
	cached, plain, store, base := testEngines(t)
	doc, _ := store.Get("h.xml")
	c1 := cached.Configurations(doc)
	c2 := cached.Configurations(doc)
	if c1 != c2 {
		t.Fatal("unchanged generations should return the shared cached partition")
	}
	if c1.NumClasses != plain.Configurations(doc).NumClasses {
		t.Fatal("cached partition differs from uncached")
	}
	base.MustAdd(wardPolicy("w2", "staff", 2, policy.Permit))
	c3 := cached.Configurations(doc)
	if c3 == c1 {
		t.Fatal("partition not recomputed after base mutation")
	}
	if c3.NumClasses != plain.Configurations(doc).NumClasses {
		t.Fatal("post-mutation cached partition differs from uncached")
	}
}

// TestPropertyCachedEqualsUncached drives a random interleaving of
// mutations and decisions and checks, at every step, that the cached
// answers are bit-identical to a from-scratch computation — the PR's
// acceptance property.
func TestPropertyCachedEqualsUncached(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	store := xmldoc.NewStore()
	store.Put(hospitalDoc("h.xml", 10, 0))
	store.Put(hospitalDoc("g.xml", 6, 1))
	store.AddToSet("records", "h.xml")
	store.AddToSet("records", "g.xml")
	base := policy.NewBase(nil)
	cached := NewEngine(accessctl.NewEngine(store, base), 128)
	plain := accessctl.NewEngine(store, base)

	subjects := []*policy.Subject{
		{ID: "a", Roles: []string{"staff"}},
		{ID: "b", Roles: []string{"physician"}},
		{ID: "c", Roles: []string{"staff", "physician"}},
		{ID: "d"},
	}
	docs := []string{"h.xml", "g.xml"}
	nextPol := 0
	var live []string

	for step := 0; step < 400; step++ {
		switch op := rng.Intn(10); {
		case op < 2: // add a policy (doc-, set- or wildcard-scoped)
			p := &policy.Policy{
				Name:    fmt.Sprintf("r%d", nextPol),
				Subject: policy.SubjectSpec{Roles: []string{[]string{"staff", "physician"}[rng.Intn(2)]}},
				Priv:    policy.Read,
				Sign:    []policy.Sign{policy.Permit, policy.Permit, policy.Deny}[rng.Intn(3)],
				Prop:    policy.Cascade,
			}
			switch rng.Intn(4) {
			case 0:
				p.Object = policy.ObjectSpec{Doc: "*"}
			case 1:
				p.Object = policy.ObjectSpec{Set: "records", Path: "//disease"}
			default:
				p.Object = policy.ObjectSpec{Doc: docs[rng.Intn(2)], Path: fmt.Sprintf("//patient[@ward='%d']", rng.Intn(4))}
			}
			nextPol++
			if err := base.Add(p); err != nil {
				t.Fatal(err)
			}
			live = append(live, p.Name)
		case op == 2 && len(live) > 0: // remove a random policy
			i := rng.Intn(len(live))
			base.Remove(live[i])
			live = append(live[:i], live[i+1:]...)
		case op == 3: // replace a document
			name := docs[rng.Intn(2)]
			store.Put(hospitalDoc(name, 6+rng.Intn(8), step))
		default: // decide, and compare against from-scratch
			name := docs[rng.Intn(2)]
			s := subjects[rng.Intn(len(subjects))]
			doc, _ := store.Get(name)
			if !equalLabels(cached.Labels(doc, s, policy.Read), plain.Labels(doc, s, policy.Read)) {
				t.Fatalf("step %d: cached labels diverged for %s on %s", step, s.ID, name)
			}
			if !equalViews(cached.View(name, s, policy.Read), plain.View(name, s, policy.Read)) {
				t.Fatalf("step %d: cached view diverged for %s on %s", step, s.ID, name)
			}
		}
	}
	st := cached.Stats()
	if st.Labels.Hits == 0 || st.Views.Hits == 0 {
		t.Errorf("property run never hit the cache: %+v", st)
	}
}

// TestConcurrentSnapshotCachedEqualsUncached extends the cached≡uncached
// property to racing readers on pinned snapshots. Writers churn document
// versions (one writer per name, so each name's generation sequence is
// the serial order of its Puts and generation g's content is
// reconstructible); readers pin store snapshots and decide through the
// cache, recording (name, docGen, snapshot content, labels). Afterwards
// every observation is replayed serially: the snapshot content must be
// exactly the state after the g-th Put — a consistent prefix of the
// mutation history, never a torn or future state — and the cached labels
// must be bit-identical to a from-scratch direct-path computation over
// that reconstructed version. Run under -race by make check.
func TestConcurrentSnapshotCachedEqualsUncached(t *testing.T) {
	store := xmldoc.NewStore()
	base := policy.NewBase(nil)
	for ward := 0; ward < 2; ward++ {
		base.MustAdd(&policy.Policy{
			Name:    fmt.Sprintf("w%d", ward),
			Subject: policy.SubjectSpec{Roles: []string{"staff"}},
			Object:  policy.ObjectSpec{Doc: "*", Path: fmt.Sprintf("//patient[@ward='%d']", ward)},
			Priv:    policy.Read,
			Sign:    policy.Permit,
			Prop:    policy.Cascade,
		})
	}
	base.MustAdd(&policy.Policy{
		Name:    "deny-disease",
		Subject: policy.SubjectSpec{NotRoles: []string{"physician"}},
		Object:  policy.ObjectSpec{Doc: "*", Path: "//disease"},
		Priv:    policy.Read,
		Sign:    policy.Deny,
		Prop:    policy.Cascade,
	})
	cached := NewEngine(accessctl.NewEngine(store, base), 128)
	s := &policy.Subject{ID: "a", Roles: []string{"staff"}}

	docs := []string{"h.xml", "g.xml"}
	const versions = 50
	// versionDoc is the deterministic content of name at document
	// generation g — writers build it, the serial replay rebuilds it.
	versionDoc := func(name string, g int) *xmldoc.Document {
		return hospitalDoc(name, 4+g%5, g)
	}

	type obs struct {
		name   string
		docGen uint64
		canon  string
		labels []bool
	}

	var writers, readers sync.WaitGroup
	for _, name := range docs {
		writers.Add(1)
		go func(name string) {
			defer writers.Done()
			for g := 1; g <= versions; g++ {
				store.Put(versionDoc(name, g))
				runtime.Gosched() // widen the overlap window with readers
			}
		}(name)
	}
	// Readers run a fixed number of decisions: the early ones race the
	// writers mid-history, the late ones observe the final versions —
	// every observation must replay serially either way.
	observed := make([][]obs, 4)
	for r := range observed {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for i := 0; i < 200; i++ {
				name := docs[i%len(docs)]
				sn := store.Snapshot()
				doc, ok := sn.Get(name)
				if !ok {
					sn.Release()
					continue
				}
				o := obs{name: name, docGen: sn.DocGeneration(name), canon: doc.Canonical()}
				sn.Release()
				o.labels = cached.Labels(doc, s, policy.Read)
				observed[r] = append(observed[r], o)
			}
		}(r)
	}
	writers.Wait()
	readers.Wait()

	// Serial replay: compute, once per (name, generation) actually
	// observed, the direct-path answer over the reconstructed version.
	type key struct {
		name   string
		docGen uint64
	}
	wantCanon := make(map[key]string)
	wantLabels := make(map[key][]bool)
	verify := func(k key) {
		if _, ok := wantCanon[k]; ok {
			return
		}
		doc := versionDoc(k.name, int(k.docGen))
		vstore := xmldoc.NewStore()
		vstore.Put(doc)
		wantCanon[k] = doc.Canonical()
		wantLabels[k] = accessctl.NewEngine(vstore, base).Labels(doc, s, policy.Read)
	}
	total := 0
	for _, obsRun := range observed {
		for _, o := range obsRun {
			total++
			if o.docGen == 0 || o.docGen > versions {
				t.Fatalf("snapshot reported impossible generation %d for %s", o.docGen, o.name)
			}
			k := key{o.name, o.docGen}
			verify(k)
			if o.canon != wantCanon[k] {
				t.Fatalf("snapshot of %s@%d is not the serial state after Put %d", o.name, o.docGen, o.docGen)
			}
			if !equalLabels(o.labels, wantLabels[k]) {
				t.Fatalf("cached labels for %s@%d differ from serial direct-path execution", o.name, o.docGen)
			}
		}
	}
	if total == 0 {
		t.Fatal("readers never observed a pinned snapshot")
	}
}

// TestConcurrentMutationNoStaleGrants hammers Base.Add/Remove and
// Store.Put while readers decide through the cache, then verifies the
// linearizability contract: once a mutation has completed, no reader can
// be served a decision from before it. Run under -race by make check.
func TestConcurrentMutationNoStaleGrants(t *testing.T) {
	store := xmldoc.NewStore()
	store.Put(hospitalDoc("h.xml", 8, 0))
	base := policy.NewBase(nil)
	base.MustAdd(wardPolicy("w0", "staff", 0, policy.Permit))
	cached := NewEngine(accessctl.NewEngine(store, base), 64)
	s := &policy.Subject{ID: "a", Roles: []string{"staff"}}

	stop := make(chan struct{})
	var readers, mutators sync.WaitGroup
	// Mutators: churn policies and documents until the readers finish.
	for g := 0; g < 2; g++ {
		mutators.Add(1)
		go func(g int) {
			defer mutators.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := fmt.Sprintf("churn-%d-%d", g, i%4)
				base.MustAdd(wardPolicy(name, "staff", 1+i%3, policy.Permit))
				base.Remove(name)
				if i%8 == 0 {
					store.Put(hospitalDoc("h.xml", 8, i))
				}
			}
		}(g)
	}
	// Readers: decide continuously; every answer must be internally
	// consistent (right length for the doc it was computed for).
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 2000; i++ {
				doc, _ := store.Get("h.xml")
				labels := cached.Labels(doc, s, policy.Read)
				if len(labels) != doc.NumNodes() && len(labels) != 0 {
					// A vector of the wrong length means a decision leaked
					// across document versions.
					cur, _ := store.Get("h.xml")
					if len(labels) != cur.NumNodes() {
						t.Errorf("labels length %d matches neither read doc (%d) nor current", len(labels), doc.NumNodes())
						return
					}
				}
				cached.View("h.xml", s, policy.Read)
			}
		}()
	}
	readers.Wait()
	close(stop)
	mutators.Wait()

	// The quiescent check: a mutation completed after all churn stopped
	// must be visible to the very next decision. Removing the only
	// remaining permit leaves the closed system with nothing granted.
	base.Remove("w0")
	doc, _ := store.Get("h.xml")
	for _, allowed := range cached.Labels(doc, s, policy.Read) {
		if allowed {
			t.Fatal("stale grant served after a completed revocation")
		}
	}
	if v := cached.View("h.xml", s, policy.Read); v != nil {
		t.Fatal("stale view served after a completed revocation")
	}
}
