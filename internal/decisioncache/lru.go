// Package decisioncache puts a sharded, bounded, generation-keyed cache
// under the access-control decision pipeline. The paper's §3.1 demands
// that *every* DBMS function honour access-control policies, which makes
// the policy decision the hottest path in the system; Author-X labeling
// (§3.2) recomputes a per-node vector over the whole document for every
// request. This package memoizes those vectors — and the pruned views and
// policy-configuration partitions derived from them — keyed by
// (document, document generation, policy-base generation, subject
// fingerprint, privilege), so a repeated request by the same role class
// costs a fingerprint hash and a map lookup instead of
// O(policies × nodes).
//
// Invalidation is by construction, not by broadcast: internal/policy and
// internal/xmldoc bump monotonic generation counters on every mutation,
// the generations are part of the cache key, and stale entries simply
// stop being addressable and age out of the LRU. Concurrent misses for
// the same key are collapsed singleflight-style so a thundering herd
// computes each decision once.
package decisioncache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// numShards spreads lock contention; decisions for different subjects or
// documents hash to different shards.
const numShards = 16

// Stats is a point-in-time counter snapshot of one cache.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Size      int    `json:"size"`
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is a sharded, bounded LRU from K to V with singleflight collapsing
// of concurrent misses. The zero value is not usable; call New.
type Cache[K comparable, V any] struct {
	hash      func(K) uint64
	shards    [numShards]shard[K, V]
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type entry[K comparable, V any] struct {
	key K
	val V
}

type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

type shard[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int                 // seclint:guardedby mu
	items    map[K]*list.Element // seclint:guardedby mu
	// order is the LRU list, front = most recently used.
	// seclint:guardedby mu
	order    *list.List
	inflight map[K]*flight[V] // seclint:guardedby mu
}

// New returns a cache bounded to roughly capacity entries overall (each of
// the 16 shards holds capacity/16, rounded up). hash maps a key to the
// shard space; HashString serves for string keys, and key types should
// fold every field in (a weak hash only costs shard balance, never
// correctness — lookups compare full keys).
func New[K comparable, V any](capacity int, hash func(K) uint64) *Cache[K, V] {
	if capacity < numShards {
		capacity = numShards
	}
	c := &Cache[K, V]{hash: hash}
	per := (capacity + numShards - 1) / numShards
	for i := range c.shards {
		c.shards[i] = shard[K, V]{
			capacity: per,
			items:    make(map[K]*list.Element),
			order:    list.New(),
			inflight: make(map[K]*flight[V]),
		}
	}
	return c
}

func (c *Cache[K, V]) shard(k K) *shard[K, V] {
	return &c.shards[c.hash(k)%numShards]
}

// Get returns the cached value for k, marking it most recently used.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[k]; ok {
		s.order.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*entry[K, V]).val, true
	}
	c.misses.Add(1)
	var zero V
	return zero, false
}

// Put installs a value for k unconditionally.
func (c *Cache[K, V]) Put(k K, v V) {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.put(k, v, &c.evictions)
}

// put inserts or refreshes an entry and evicts the LRU tail past
// capacity. Shard lock held.
//
// seclint:locked caller holds s.mu
func (s *shard[K, V]) put(k K, v V, evictions *atomic.Uint64) {
	if el, ok := s.items[k]; ok {
		el.Value.(*entry[K, V]).val = v
		s.order.MoveToFront(el)
		return
	}
	s.items[k] = s.order.PushFront(&entry[K, V]{key: k, val: v})
	if s.order.Len() > s.capacity {
		tail := s.order.Back()
		s.order.Remove(tail)
		delete(s.items, tail.Value.(*entry[K, V]).key)
		evictions.Add(1)
	}
}

// Do returns the cached value for k, or runs compute to fill it. When
// several goroutines miss on the same key concurrently, exactly one runs
// compute and the rest wait for its result (singleflight). A compute
// error is returned to every waiter and nothing is cached.
func (c *Cache[K, V]) Do(k K, compute func() (V, error)) (V, error) {
	s := c.shard(k)
	s.mu.Lock()
	if el, ok := s.items[k]; ok {
		s.order.MoveToFront(el)
		v := el.Value.(*entry[K, V]).val
		s.mu.Unlock()
		c.hits.Add(1)
		return v, nil
	}
	// seclint:locked still held here; the Unlock above is inside the returning hit branch
	if f, ok := s.inflight[k]; ok {
		s.mu.Unlock()
		<-f.done
		// A collapsed miss is a hit for accounting: the caller was served
		// without paying for a computation.
		c.hits.Add(1)
		return f.val, f.err
	}
	f := &flight[V]{done: make(chan struct{})}
	s.inflight[k] = f // seclint:locked still held; both miss branches above exit the function
	s.mu.Unlock()
	c.misses.Add(1)

	f.val, f.err = compute()

	s.mu.Lock()
	delete(s.inflight, k)
	if f.err == nil {
		s.put(k, f.val, &c.evictions)
	}
	s.mu.Unlock()
	close(f.done)
	return f.val, f.err
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.items)
		s.mu.Unlock()
	}
	return n
}

// Purge drops every cached entry (in-flight computations finish and
// install their results afterwards; the counters are not reset).
func (c *Cache[K, V]) Purge() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.items = make(map[K]*list.Element)
		s.order.Init()
		s.mu.Unlock()
	}
}

// Stats snapshots the hit/miss/eviction counters and current size.
func (c *Cache[K, V]) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Size:      c.Len(),
	}
}

// FNV-1a constants for the hash helpers.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// HashString is FNV-1a over the bytes of s, for string-keyed caches.
func HashString(s string) uint64 {
	return hashBytes(fnvOffset, s)
}

func hashBytes(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

func hashUint(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}
