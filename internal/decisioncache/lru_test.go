package decisioncache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// oneShard forces every key into shard 0 so capacity and LRU order are
// exact in tests.
func oneShard(string) uint64 { return 0 }

func TestGetPut(t *testing.T) {
	c := New[string, int](64, HashString)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache returned a value")
	}
	c.Put("a", 1)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v; want 1, true", v, ok)
	}
	c.Put("a", 2)
	if v, _ := c.Get("a"); v != 2 {
		t.Fatalf("Put did not refresh: got %d, want 2", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestEvictionLRUOrder(t *testing.T) {
	// capacity 32 over 16 shards = 2 per shard; all keys in shard 0.
	c := New[string, int](32, oneShard)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Get("a") // a is now MRU; b is the eviction candidate
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted as LRU")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("recently used a was evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("fresh c was evicted")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Size != 2 {
		t.Errorf("Stats = %+v, want 1 eviction and size 2", st)
	}
}

func TestMinimumCapacity(t *testing.T) {
	c := New[string, int](0, HashString)
	for i := 0; i < numShards; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	if c.Len() == 0 {
		t.Fatal("zero-capacity cache holds nothing")
	}
}

func TestDoCachesAndCounts(t *testing.T) {
	c := New[string, int](64, HashString)
	calls := 0
	compute := func() (int, error) { calls++; return 7, nil }
	for i := 0; i < 3; i++ {
		v, err := c.Do("k", compute)
		if err != nil || v != 7 {
			t.Fatalf("Do = %d, %v; want 7, nil", v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("Stats = %+v, want 1 miss and 2 hits", st)
	}
	if got := st.HitRate(); got < 0.66 || got > 0.67 {
		t.Errorf("HitRate = %f, want 2/3", got)
	}
}

func TestDoSingleflightCollapse(t *testing.T) {
	c := New[string, int](64, HashString)
	const waiters = 8
	var computes atomic.Int32
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.Do("k", func() (int, error) {
				computes.Add(1)
				<-release
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("Do = %d, %v; want 42, nil", v, err)
			}
		}()
	}
	// Let the herd pile up on the inflight entry, then release the one
	// computation. Polling the miss counter avoids a racy sleep.
	for c.Stats().Misses == 0 {
	}
	close(release)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times under concurrent misses, want 1", n)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != waiters-1 {
		t.Errorf("Stats = %+v, want 1 miss and %d collapsed hits", st, waiters-1)
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := New[string, int](64, HashString)
	boom := errors.New("boom")
	if _, err := c.Do("k", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("Do error = %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Fatal("failed computation was cached")
	}
	v, err := c.Do("k", func() (int, error) { return 5, nil })
	if err != nil || v != 5 {
		t.Fatalf("Do after error = %d, %v; want 5, nil", v, err)
	}
}

func TestPurge(t *testing.T) {
	c := New[string, int](64, HashString)
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len after Purge = %d, want 0", c.Len())
	}
	if _, ok := c.Get("k3"); ok {
		t.Error("purged entry still served")
	}
}

func TestConcurrentMixedOps(t *testing.T) {
	c := New[int, int](128, func(k int) uint64 { return uint64(k) })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := (g*31 + i) % 200
				switch i % 3 {
				case 0:
					c.Put(k, k)
				case 1:
					if v, ok := c.Get(k); ok && v != k {
						t.Errorf("Get(%d) = %d", k, v)
					}
				case 2:
					v, _ := c.Do(k, func() (int, error) { return k, nil })
					if v != k {
						t.Errorf("Do(%d) = %d", k, v)
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
