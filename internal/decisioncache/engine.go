package decisioncache

import (
	"webdbsec/internal/accessctl"
	"webdbsec/internal/policy"
	"webdbsec/internal/xmldoc"
)

// decisionKey addresses one cached per-subject decision artifact: a
// Labels vector or a pruned view. The two generations pin the exact
// document state and policy state the artifact was computed under; the
// subject fingerprint collapses equivalent subjects (same identity, roles
// and wallet) onto one entry.
type decisionKey struct {
	doc     string
	docGen  uint64
	baseGen uint64
	subject string
	priv    policy.Privilege
}

func hashDecision(k decisionKey) uint64 {
	h := hashBytes(fnvOffset, k.doc)
	h = hashUint(h, k.docGen)
	h = hashUint(h, k.baseGen)
	h = hashBytes(h, k.subject)
	return hashBytes(h, string(k.priv))
}

// configKey addresses a subject-independent policy-configuration
// partition.
type configKey struct {
	doc     string
	docGen  uint64
	baseGen uint64
}

func hashConfig(k configKey) uint64 {
	h := hashBytes(fnvOffset, k.doc)
	h = hashUint(h, k.docGen)
	return hashUint(h, k.baseGen)
}

// Engine wraps an accessctl.Engine with caches for every artifact the
// decision pipeline derives: Labels vectors, pruned views, policy-
// configuration partitions, and compiled path expressions. It exposes the
// same decision API, so serving layers (xquery, uddi agencies, the
// semantic stack, authorx publishers) can take either engine.
//
// Correctness contract: a cached artifact is bit-identical to what the
// wrapped engine would compute, for any interleaving of decisions with
// policy-base and store mutations — the generation counters in the key
// guarantee that a decision requested after a mutation completes can
// never be served from the pre-mutation state.
type Engine struct {
	inner   *accessctl.Engine
	labels  *Cache[decisionKey, []bool]
	views   *Cache[decisionKey, *xmldoc.Document]
	configs *Cache[configKey, *accessctl.PolicyConfiguration]
	paths   *Cache[string, *xmldoc.PathExpr]
}

// DefaultCapacity bounds each cache of an Engine when NewEngine is given
// a non-positive capacity.
const DefaultCapacity = 4096

// NewEngine wraps inner with caches bounded to capacity entries each
// (DefaultCapacity when capacity <= 0).
func NewEngine(inner *accessctl.Engine, capacity int) *Engine {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Engine{
		inner:   inner,
		labels:  New[decisionKey, []bool](capacity, hashDecision),
		views:   New[decisionKey, *xmldoc.Document](capacity, hashDecision),
		configs: New[configKey, *accessctl.PolicyConfiguration](capacity, hashConfig),
		paths:   New[string, *xmldoc.PathExpr](capacity, HashString),
	}
}

// Inner returns the wrapped engine.
func (e *Engine) Inner() *accessctl.Engine { return e.inner }

// Store returns the engine's document store.
func (e *Engine) Store() *xmldoc.Store { return e.inner.Store() }

// Base returns the engine's policy base.
func (e *Engine) Base() *policy.Base { return e.inner.Base() }

// keyAt builds the decision key for the generations of one pinned store
// snapshot. Reading the generations before computing is what makes caching
// sound: a computation can only ever observe state at or after its key's
// generations, and any reader that could be served a too-new artifact is
// by definition racing the mutation itself. The snapshot makes the
// generation read and the currency check (currentAt) observe the same
// store version, so a decision keys and validates against one consistent
// state no matter how many writers commit meanwhile.
func (e *Engine) keyAt(sn *xmldoc.StoreSnapshot, docName string, s *policy.Subject, priv policy.Privilege) decisionKey {
	return decisionKey{
		doc:     docName,
		docGen:  sn.DocGeneration(docName),
		baseGen: e.inner.Base().Generation(),
		subject: s.Fingerprint(),
		priv:    priv,
	}
}

// currentAt reports whether doc is the snapshot's binding for its name.
// Decisions about detached documents (a caller holding an old version
// after a Put) bypass the cache — their name+generation would alias the
// current document's entries.
func (e *Engine) currentAt(sn *xmldoc.StoreSnapshot, doc *xmldoc.Document) bool {
	cur, ok := sn.Get(doc.Name)
	return ok && cur == doc
}

// labelsSharedAt returns the cached per-node decision vector WITHOUT
// copying, keyed at the pinned snapshot. Internal callers must not mutate
// it.
func (e *Engine) labelsSharedAt(sn *xmldoc.StoreSnapshot, doc *xmldoc.Document, s *policy.Subject, priv policy.Privilege) []bool {
	// Key FIRST, currency check second — both against the same pinned
	// version: if doc is not that version's binding for its name, a vector
	// computed from doc's tree must never be installed under the version's
	// generation, so the cache is bypassed.
	k := e.keyAt(sn, doc.Name, s, priv)
	if !e.currentAt(sn, doc) {
		return e.inner.Labels(doc, s, priv)
	}
	v, _ := e.labels.Do(k, func() ([]bool, error) {
		return e.inner.Labels(doc, s, priv), nil
	})
	return v
}

// Labels computes (or recalls) the per-node decision vector for a subject
// requesting priv on the document: out[id] is true iff node id is
// permitted. The returned slice is the caller's to keep.
func (e *Engine) Labels(doc *xmldoc.Document, s *policy.Subject, priv policy.Privilege) []bool {
	sn := e.inner.Store().Snapshot()
	defer sn.Release()
	v := e.labelsSharedAt(sn, doc, s, priv)
	out := make([]bool, len(v))
	copy(out, v)
	return out
}

// View computes (or recalls) the subject's authorized view of the named
// document. Denials (nil views) are cached too, so repeated probing of a
// forbidden document costs one lookup. The returned document is shared
// between callers with the same rights and MUST be treated as read-only —
// documents are immutable by convention everywhere in this repository.
func (e *Engine) View(docName string, s *policy.Subject, priv policy.Privilege) *xmldoc.Document {
	sn := e.inner.Store().Snapshot()
	k := e.keyAt(sn, docName, s, priv)
	sn.Release()
	v, _ := e.views.Do(k, func() (*xmldoc.Document, error) {
		return e.inner.View(docName, s, priv), nil
	})
	return v
}

// Check decides a single access: may the subject exercise priv on the
// node addressed by path within the named document? Compiled paths and
// label vectors are both cached.
func (e *Engine) Check(docName, path string, s *policy.Subject, priv policy.Privilege) bool {
	sn := e.inner.Store().Snapshot()
	defer sn.Release()
	doc, ok := sn.Get(docName)
	if !ok {
		return false
	}
	pe, err := e.paths.Do(path, func() (*xmldoc.PathExpr, error) {
		return xmldoc.CompilePath(path)
	})
	if err != nil {
		return false
	}
	nodes := pe.Select(doc)
	if len(nodes) == 0 {
		return false
	}
	labels := e.labelsSharedAt(sn, doc, s, priv)
	for _, n := range nodes {
		if !labels[n.ID()] {
			return false
		}
	}
	return true
}

// Configurations computes (or recalls) the subject-independent policy-
// configuration partition of the document — the basis of Author-X
// well-formed encryption. The returned partition is shared; treat it as
// read-only.
func (e *Engine) Configurations(doc *xmldoc.Document) *accessctl.PolicyConfiguration {
	// Key before currency check — same ordering argument as
	// labelsSharedAt; the pinned snapshot makes the two reads atomic.
	sn := e.inner.Store().Snapshot()
	defer sn.Release()
	k := configKey{
		doc:     doc.Name,
		docGen:  sn.DocGeneration(doc.Name),
		baseGen: e.inner.Base().Generation(),
	}
	if !e.currentAt(sn, doc) {
		return e.inner.Configurations(doc)
	}
	v, _ := e.configs.Do(k, func() (*accessctl.PolicyConfiguration, error) {
		return e.inner.Configurations(doc), nil
	})
	return v
}

// EngineStats aggregates the per-cache counters of an Engine.
type EngineStats struct {
	Labels  Stats `json:"labels"`
	Views   Stats `json:"views"`
	Configs Stats `json:"configs"`
	Paths   Stats `json:"paths"`
}

// Stats snapshots all four caches.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Labels:  e.labels.Stats(),
		Views:   e.views.Stats(),
		Configs: e.configs.Stats(),
		Paths:   e.paths.Stats(),
	}
}
