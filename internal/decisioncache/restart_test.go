package decisioncache

import (
	"testing"

	"webdbsec/internal/accessctl"
	"webdbsec/internal/policy"
	"webdbsec/internal/resilience/faultinject"
	"webdbsec/internal/wal"
	"webdbsec/internal/xmldoc"
)

// TestCachedEqualsUncachedAcrossRestart is the acceptance property for the
// durability layer under the decision cache: the store and policy base are
// persisted with their generation counters, so a cache-fronted engine
// built over the *reopened* state answers exactly like a from-scratch
// engine — for decisions cached before the restart, after it, and after
// further policy churn on the recovered base.
func TestCachedEqualsUncachedAcrossRestart(t *testing.T) {
	storeFS, baseFS := faultinject.NewMemFS(), faultinject.NewMemFS()
	openBoth := func() (*xmldoc.Store, *policy.Base) {
		sw, err := wal.Open(wal.Options{FS: storeFS, Policy: wal.SyncAlways})
		if err != nil {
			t.Fatalf("wal.Open(store): %v", err)
		}
		store, err := xmldoc.OpenStore(sw)
		if err != nil {
			t.Fatalf("OpenStore: %v", err)
		}
		bw, err := wal.Open(wal.Options{FS: baseFS, Policy: wal.SyncAlways})
		if err != nil {
			t.Fatalf("wal.Open(base): %v", err)
		}
		base, err := policy.OpenBase(nil, bw)
		if err != nil {
			t.Fatalf("OpenBase: %v", err)
		}
		return store, base
	}

	subjects := []*policy.Subject{
		{ID: "s1", Roles: []string{"staff"}},
		{ID: "s2", Roles: []string{"staff", "physician"}},
		{ID: "s3", Roles: []string{"visitor"}},
	}
	paths := []string{"/hospital", "//patient", "//disease", "//name"}
	compare := func(eng *Engine, plain *accessctl.Engine, stage string) {
		t.Helper()
		for _, s := range subjects {
			for _, p := range paths {
				// Twice through the cache: the second call is a guaranteed
				// cache hit when generations line up.
				first := eng.Check("h.xml", p, s, policy.Read)
				hit := eng.Check("h.xml", p, s, policy.Read)
				want := plain.Check("h.xml", p, s, policy.Read)
				if first != want || hit != want {
					t.Fatalf("%s: %s at %s: cached=%v/%v uncached=%v", stage, s.ID, p, first, hit, want)
				}
			}
		}
	}

	store, base := openBoth()
	store.Put(hospitalDoc("h.xml", 8, 0))
	base.MustAdd(wardPolicy("w0", "staff", 0, policy.Permit))
	base.MustAdd(wardPolicy("w1", "staff", 1, policy.Permit))
	base.MustAdd(&policy.Policy{
		Name:    "deny-disease",
		Subject: policy.SubjectSpec{NotRoles: []string{"physician"}},
		Object:  policy.ObjectSpec{Doc: "h.xml", Path: "//disease"},
		Priv:    policy.Read,
		Sign:    policy.Deny,
		Prop:    policy.Cascade,
	})
	eng := NewEngine(accessctl.NewEngine(store, base), 256)
	compare(eng, accessctl.NewEngine(store, base), "before restart")
	preGen, preDocGen := base.Generation(), store.DocGeneration("h.xml")

	// "Restart": reopen both stores from their durable state and build a
	// fresh cache-fronted engine over them.
	store2, base2 := openBoth()
	if base2.Generation() != preGen || store2.DocGeneration("h.xml") != preDocGen {
		t.Fatalf("generations drifted across restart: base %d->%d, doc %d->%d",
			preGen, base2.Generation(), preDocGen, store2.DocGeneration("h.xml"))
	}
	eng2 := NewEngine(accessctl.NewEngine(store2, base2), 256)
	compare(eng2, accessctl.NewEngine(store2, base2), "after restart")

	// Decisions agree across the restart boundary too: same subjects, same
	// document, recovered state.
	for _, s := range subjects {
		for _, p := range paths {
			if eng.Check("h.xml", p, s, policy.Read) != eng2.Check("h.xml", p, s, policy.Read) {
				t.Fatalf("restart changed the decision for %s at %s", s.ID, p)
			}
		}
	}

	// Churn on the recovered base must invalidate stale cache entries via
	// the restored generation counter, keeping cached ≡ uncached.
	if !base2.Remove("w1") {
		t.Fatal("Remove(w1) failed")
	}
	base2.MustAdd(wardPolicy("w2", "staff", 2, policy.Permit))
	store2.Put(hospitalDoc("h.xml", 8, 3))
	compare(eng2, accessctl.NewEngine(store2, base2), "after post-restart churn")
	if st := eng2.Stats(); st.Labels.Hits == 0 {
		t.Fatalf("cache never hit — the comparison proves nothing: %+v", st)
	}
}
