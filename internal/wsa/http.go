package wsa

import (
	"context"
	"encoding/base64"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"webdbsec/internal/authtoken"
	"webdbsec/internal/credential"
	"webdbsec/internal/merkle"
	"webdbsec/internal/policy"
	"webdbsec/internal/resilience"
	"webdbsec/internal/uddi"
	"webdbsec/internal/wsig"
	"webdbsec/internal/xmldoc"
)

// MaxRequestBody caps an envelope POST. A malformed or hostile client
// must not be able to balloon the server's memory.
const MaxRequestBody = 10 << 20 // 10 MiB

// internalError marks dispatch failures that are the server's fault; the
// HTTP binding maps them to 500 instead of 400.
type internalError struct{ err error }

func (e *internalError) Error() string { return e.err.Error() }
func (e *internalError) Unwrap() error { return e.err }

// internalf builds a server-fault error.
func internalf(format string, args ...any) error {
	return &internalError{err: fmt.Errorf(format, args...)}
}

// faultStatus maps a dispatch error onto an HTTP status: server faults
// are 500, everything else — malformed bodies, unknown operations,
// registry refusals — is the client's fault and gets 400.
func faultStatus(err error) int {
	var ie *internalError
	if errors.As(err, &ie) {
		return http.StatusInternalServerError
	}
	return http.StatusBadRequest
}

// RegistryServer is the HTTP binding of a UDDI registry: one POST endpoint
// accepting envelopes, dispatching on the operation name. When an
// UntrustedAgency is attached, the additional "query_authenticated"
// operation serves Merkle-authenticated views (the §4.1 third-party
// protocol); otherwise the server behaves as a two-party or trusted
// third-party deployment.
type RegistryServer struct {
	Registry *uddi.Registry
	Agency   *uddi.UntrustedAgency
	// Auth, when set, authenticates every envelope before dispatch: the
	// stateless token fast path first (X-Auth-Token header), full wallet
	// evaluation as fallback (X-Auth-Wallet header), legacy passthrough
	// when the envelope presents neither — existing two-party deployments
	// keep working, but every authenticated response arms the client with
	// the token to present next.
	Auth *authtoken.Service
	// Logf, when set, receives server-side diagnostics (recovered panic
	// values among them). Defaults to the standard logger.
	Logf func(format string, args ...any)
}

// logf routes a diagnostic to the configured logger.
func (s *RegistryServer) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// Describe returns the service description for this server.
func (s *RegistryServer) Describe(endpoint string) *ServiceDescription {
	ops := []OperationDesc{
		{Name: "find_business", Input: "findBusiness", Output: "businessList"},
		{Name: "find_service", Input: "findService", Output: "serviceList"},
		{Name: "get_businessDetail", Input: "getBusinessDetail", Output: "businessDetail"},
		{Name: "save_business", Input: "businessEntity", Output: "result"},
		{Name: "delete_business", Input: "deleteBusiness", Output: "result"},
	}
	if s.Agency != nil {
		ops = append(ops, OperationDesc{Name: "query_authenticated", Input: "queryAuthenticated", Output: "authenticatedResult"})
	}
	return &ServiceDescription{Name: "uddi-registry", Endpoint: endpoint, Operations: ops}
}

// ServeHTTP implements http.Handler. The binding is hardened against
// hostile input: panics in dispatch are recovered into a 500 fault (a
// malformed envelope must never kill the server), and request bodies are
// capped at MaxRequestBody.
func (s *RegistryServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if p := recover(); p != nil {
			// Headers may already be out if the panic hit mid-write; the
			// superfluous-WriteHeader log line is the lesser evil next to
			// a dead server. The panic value itself stays server-side:
			// it can carry whatever was in flight — internal paths, key
			// material, fragments of other requests — so the wire gets
			// an opaque fault and the operator log gets the detail.
			s.logf("wsa: panic serving %s: %v", r.URL.Path, p)
			writeFault(w, http.StatusInternalServerError, "wsa: internal error")
		}
	}()
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if r.ContentLength > MaxRequestBody {
		writeFault(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("wsa: request body %d bytes exceeds %d", r.ContentLength, MaxRequestBody))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, MaxRequestBody)
	env, err := DecodeEnvelope(r.Body)
	if err != nil {
		status := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status = http.StatusRequestEntityTooLarge
		}
		writeFault(w, status, err.Error())
		return
	}
	if !s.authenticate(w, r, env) {
		return
	}
	resp, err := s.dispatch(env)
	if err != nil {
		writeFault(w, faultStatus(err), err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/xml")
	io.WriteString(w, resp.Encode())
}

// authenticate runs the token/wallet gate over the envelope's sender
// identity. The envelope carries the identity; the auth material rides in
// headers because the body is the XML payload. A refusal is a 401 fault
// (terminal for the client's retry policy); success arms the response
// with the successor token.
func (s *RegistryServer) authenticate(w http.ResponseWriter, r *http.Request, env *Envelope) bool {
	if s.Auth == nil {
		return true
	}
	subj := &policy.Subject{ID: env.Sender, Roles: env.Roles}
	if enc := r.Header.Get(authtoken.WalletHeader); enc != "" {
		wal, err := authtoken.DecodeWallet(enc)
		if err != nil {
			writeFault(w, http.StatusBadRequest, err.Error())
			return false
		}
		subj.Wallet = wal
	}
	var rawTok []byte
	if enc := r.Header.Get(authtoken.TokenHeader); enc != "" {
		var err error
		rawTok, err = base64.RawURLEncoding.DecodeString(enc)
		if err != nil {
			writeFault(w, http.StatusBadRequest, "wsa: token encoding: "+err.Error())
			return false
		}
	}
	res, err := s.Auth.Gate.Authenticate(subj, rawTok, time.Now())
	if err != nil {
		writeFault(w, http.StatusUnauthorized, err.Error())
		return false
	}
	if res.Token != nil {
		w.Header().Set(authtoken.TokenHeader, res.Token.EncodeString())
		w.Header().Set(authtoken.ExpiresHeader, strconv.FormatInt(res.ExpiresAt.Unix(), 10))
	}
	return true
}

func writeFault(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/xml")
	w.WriteHeader(code)
	io.WriteString(w, (&Envelope{Fault: msg}).Encode())
}

func (s *RegistryServer) dispatch(env *Envelope) (*Envelope, error) {
	req := &policy.Subject{ID: env.Sender, Roles: env.Roles}
	switch env.Operation {
	case "find_business":
		pattern, category := "", (*uddi.KeyedReference)(nil)
		if env.Body != nil {
			pattern, _ = env.Body.Root.Attr("name")
			if kr := env.Body.Root.Child("keyedReference"); kr != nil {
				var c uddi.KeyedReference
				c.TModelKey, _ = kr.Attr("tModelKey")
				c.KeyValue, _ = kr.Attr("keyValue")
				category = &c
			}
		}
		infos := s.Registry.FindBusiness(req, pattern, category)
		b := xmldoc.NewBuilder("resp", "businessList")
		for _, bi := range infos {
			b.Begin("businessInfo").
				Attrib("businessKey", bi.BusinessKey).
				Attrib("name", bi.Name).
				End()
		}
		return &Envelope{Operation: env.Operation, Body: b.Freeze()}, nil

	case "find_service":
		pattern := ""
		if env.Body != nil {
			pattern, _ = env.Body.Root.Attr("name")
		}
		infos := s.Registry.FindService(req, pattern)
		b := xmldoc.NewBuilder("resp", "serviceList")
		for _, si := range infos {
			b.Begin("serviceInfo").
				Attrib("serviceKey", si.ServiceKey).
				Attrib("businessKey", si.BusinessKey).
				Attrib("name", si.Name).
				End()
		}
		return &Envelope{Operation: env.Operation, Body: b.Freeze()}, nil

	case "get_businessDetail":
		if env.Body == nil {
			return nil, fmt.Errorf("wsa: get_businessDetail needs a body")
		}
		var keys []string
		for _, c := range env.Body.Root.ElementChildren() {
			if c.Name == "businessKey" {
				keys = append(keys, c.Text())
			}
		}
		ents, err := s.Registry.GetBusinessDetail(req, keys...)
		if err != nil {
			return nil, err
		}
		b := xmldoc.NewBuilder("resp", "businessDetail")
		d := b.Freeze()
		for _, e := range ents {
			entDoc := e.ToXML()
			graft(d.Root, entDoc.Root)
		}
		reindex(d)
		return &Envelope{Operation: env.Operation, Body: d}, nil

	case "save_business":
		if env.Body == nil {
			return nil, fmt.Errorf("wsa: save_business needs a body")
		}
		e, err := uddi.EntityFromXML(env.Body)
		if err != nil {
			return nil, err
		}
		if err := s.Registry.SaveBusiness(env.Sender, e); err != nil {
			return nil, err
		}
		return okEnvelope(env.Operation), nil

	case "delete_business":
		if env.Body == nil {
			return nil, fmt.Errorf("wsa: delete_business needs a body")
		}
		key, _ := env.Body.Root.Attr("businessKey")
		if err := s.Registry.DeleteBusiness(env.Sender, key); err != nil {
			return nil, err
		}
		return okEnvelope(env.Operation), nil

	case "query_authenticated":
		if s.Agency == nil {
			// Deployment misconfiguration, not the requestor's fault.
			return nil, internalf("wsa: no untrusted agency attached")
		}
		if env.Body == nil {
			return nil, fmt.Errorf("wsa: query_authenticated needs a body")
		}
		key, _ := env.Body.Root.Attr("businessKey")
		res, err := s.Agency.Query(req, key)
		if err != nil {
			return nil, err
		}
		return &Envelope{Operation: env.Operation, Body: encodeAuthenticated(res)}, nil

	default:
		return nil, fmt.Errorf("wsa: unknown operation %q", env.Operation)
	}
}

func okEnvelope(op string) *Envelope {
	b := xmldoc.NewBuilder("resp", "result")
	b.Attrib("status", "ok")
	return &Envelope{Operation: op, Body: b.Freeze()}
}

// graft deep-copies src (from another document) under dst.
func graft(dst *xmldoc.Node, src *xmldoc.Node) {
	n := &xmldoc.Node{Kind: src.Kind, Name: src.Name, Value: src.Value, Parent: dst}
	for _, a := range src.Attrs {
		n.Attrs = append(n.Attrs, &xmldoc.Node{Kind: xmldoc.KindAttr, Name: a.Name, Value: a.Value, Parent: n})
	}
	dst.Children = append(dst.Children, n)
	for _, c := range src.Children {
		graft(n, c)
	}
}

// reindex rebuilds a document's node table after grafting. Round-tripping
// through the parser keeps xmldoc's invariants without exposing its
// internals.
func reindex(d *xmldoc.Document) {
	nd, err := xmldoc.ParseString(d.Name, d.Canonical())
	if err != nil {
		return
	}
	*d = *nd
}

// encodeAuthenticated serializes an AuthenticatedResult: the view, the
// proof (positions + hex hashes) and the summary signature.
func encodeAuthenticated(res *uddi.AuthenticatedResult) *xmldoc.Document {
	b := xmldoc.NewBuilder("resp", "authenticatedResult")
	b.Begin("summary").
		Attrib("signer", res.Summary.Sig.Signer).
		Attrib("value", hex.EncodeToString(res.Summary.Sig.Value)).
		End()
	b.Begin("proof")
	for _, ep := range res.Proof.Elems {
		b.Begin("element")
		for _, m := range ep.Missing {
			b.Begin("missing").
				Attrib("pos", strconv.Itoa(m.Pos)).
				Attrib("hash", hex.EncodeToString(m.Hash)).
				End()
		}
		b.End()
	}
	b.End()
	d := b.Freeze()
	// Splice the view under a <view> wrapper.
	viewXML := "<view>" + res.View.Canonical() + "</view>"
	full := d.Canonical()
	full = full[:len(full)-len("</authenticatedResult>")] + viewXML + "</authenticatedResult>"
	out, err := xmldoc.ParseString("resp", full)
	if err != nil {
		return d
	}
	return out
}

// DecodeAuthenticated parses the wire form back into an
// AuthenticatedResult the requestor can Verify.
func DecodeAuthenticated(body *xmldoc.Document) (*uddi.AuthenticatedResult, error) {
	if body == nil || body.Root.Name != "authenticatedResult" {
		return nil, fmt.Errorf("wsa: not an authenticatedResult")
	}
	res := &uddi.AuthenticatedResult{Proof: &merkle.Proof{}}
	if s := body.Root.Child("summary"); s != nil {
		signer, _ := s.Attr("signer")
		val, _ := s.Attr("value")
		raw, err := hex.DecodeString(val)
		if err != nil {
			return nil, fmt.Errorf("wsa: summary signature: %w", err)
		}
		res.Summary = merkle.SummarySignature{Sig: wsig.Signature{Signer: signer, Value: raw}}
	}
	if p := body.Root.Child("proof"); p != nil {
		for _, el := range p.ElementChildren() {
			if el.Name != "element" {
				continue
			}
			ep := merkle.ElementProof{}
			for _, m := range el.ElementChildren() {
				if m.Name != "missing" {
					continue
				}
				posStr, _ := m.Attr("pos")
				hashStr, _ := m.Attr("hash")
				pos, err := strconv.Atoi(posStr)
				if err != nil {
					return nil, fmt.Errorf("wsa: proof position: %w", err)
				}
				h, err := hex.DecodeString(hashStr)
				if err != nil {
					return nil, fmt.Errorf("wsa: proof hash: %w", err)
				}
				ep.Missing = append(ep.Missing, merkle.PosHash{Pos: pos, Hash: h})
			}
			res.Proof.Elems = append(res.Proof.Elems, ep)
		}
	}
	if v := body.Root.Child("view"); v != nil {
		inner := v.ElementChildren()
		if len(inner) != 1 {
			return nil, fmt.Errorf("wsa: view must wrap exactly one element")
		}
		doc, err := xmldoc.ParseString("view", xmldoc.CanonicalSubtree(inner[0]))
		if err != nil {
			return nil, fmt.Errorf("wsa: view: %w", err)
		}
		res.View = doc
	}
	if res.View == nil {
		return nil, fmt.Errorf("wsa: authenticatedResult missing view")
	}
	return res, nil
}

// Client is a requestor-side helper speaking the envelope protocol. Retry
// and Breaker, when set, make calls resilient: transient transport
// failures (network errors, 5xx) are retried with backoff, and a peer
// that keeps failing trips the circuit so callers fail fast instead of
// piling onto a sick service. Application faults (4xx envelopes) are
// terminal — they are never retried and never count against the breaker.
type Client struct {
	Endpoint string
	Sender   string
	Roles    []string
	HTTP     *http.Client
	// Retry, when non-nil, retries retryable-class failures.
	Retry *resilience.RetryPolicy
	// Breaker, when non-nil, guards every call.
	Breaker *resilience.Breaker
	// Auth, when non-nil, attaches token/wallet auth material to every
	// call and transparently refreshes the token from response headers.
	Auth *TokenAuth
}

// TokenAuth holds a client's auth material: the wallet that qualifies it
// on the slow path and the current single-use token. Every request takes
// the token (tokens are consumed server-side, so a taken token is never
// re-presented) and attaches the wallet alongside; every authenticated
// response stores the successor the server returned. A request that loses
// its response — or a concurrent call that finds the token already taken
// — simply re-qualifies on the wallet path and comes back token-armed, so
// refresh needs no client-visible protocol. Concurrent calls sharing one
// TokenAuth therefore stay correct but only one of them rides the fast
// path per hop.
type TokenAuth struct {
	Wallet *credential.Wallet

	mu    sync.Mutex
	token string // seclint:guardedby mu
}

// take removes and returns the held token (empty when none).
func (a *TokenAuth) take() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	t := a.token
	a.token = ""
	return t
}

// store keeps a successor token from a response; empty is a no-op.
func (a *TokenAuth) store(t string) {
	if t == "" {
		return
	}
	a.mu.Lock()
	a.token = t
	a.mu.Unlock()
}

// Token reports the currently held token without consuming it (tests and
// introspection).
func (a *TokenAuth) Token() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.token
}

// Call posts an envelope under ctx and decodes the response, applying
// the client's breaker and retry policy. ctx bounds the whole exchange
// including retries.
func (c *Client) Call(ctx context.Context, op string, body *xmldoc.Document) (*Envelope, error) {
	env := &Envelope{Operation: op, Sender: c.Sender, Roles: c.Roles, Body: body}
	payload := env.Encode()
	attempt := func(ctx context.Context) (*Envelope, error) {
		if c.Breaker != nil {
			if err := c.Breaker.Allow(); err != nil {
				return nil, err
			}
		}
		out, err := c.post(ctx, op, payload)
		if c.Breaker != nil {
			c.Breaker.Record(err)
		}
		return out, err
	}
	if c.Retry == nil {
		return attempt(ctx)
	}
	return resilience.RetryValue(ctx, *c.Retry, attempt)
}

// post performs one HTTP exchange. Errors are classified for the retry
// and breaker layers: transport failures and 5xx responses stay
// retryable, application faults are marked terminal.
func (c *Client) post(ctx context.Context, op, payload string) (*Envelope, error) {
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Endpoint, strings.NewReader(payload))
	if err != nil {
		return nil, resilience.MarkTerminal(fmt.Errorf("wsa: call %s: %w", op, err))
	}
	req.Header.Set("Content-Type", "application/xml")
	var sentTok string
	if c.Auth != nil {
		if sentTok = c.Auth.take(); sentTok != "" {
			req.Header.Set(authtoken.TokenHeader, sentTok)
		}
		if c.Auth.Wallet != nil {
			// The wallet always rides along: it costs the server nothing
			// while the token verifies (the gate checks the token first)
			// and it is the transparent re-qualification path when the
			// token has expired, rotated away, or was lost with a response.
			enc, err := authtoken.EncodeWallet(c.Auth.Wallet)
			if err != nil {
				return nil, resilience.MarkTerminal(fmt.Errorf("wsa: call %s: %w", op, err))
			}
			req.Header.Set(authtoken.WalletHeader, enc)
		}
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("wsa: call %s: %w", op, err)
	}
	defer resp.Body.Close()
	if c.Auth != nil {
		if succ := resp.Header.Get(authtoken.TokenHeader); succ != "" {
			c.Auth.store(succ)
		} else if sentTok != "" && resp.StatusCode < 400 {
			// The call succeeded but granted no successor: a read replica
			// (which verifies without consuming) or an auth-less endpoint.
			// The presented token is still live — keep it.
			c.Auth.store(sentTok)
		}
	}
	out, decErr := DecodeEnvelope(io.LimitReader(resp.Body, MaxRequestBody))
	if resp.StatusCode >= 500 {
		// Server-side failure: retryable. Prefer the fault text when the
		// body carried one.
		if decErr == nil && out.Fault != "" {
			return out, fmt.Errorf("wsa: fault from %s: %s", op, out.Fault)
		}
		return nil, fmt.Errorf("wsa: call %s: server error %d", op, resp.StatusCode)
	}
	if decErr != nil {
		return nil, decErr
	}
	if out.Fault != "" {
		// Application fault: the request itself is wrong; retrying the
		// same envelope cannot help.
		return out, resilience.MarkTerminal(fmt.Errorf("wsa: fault from %s: %s", op, out.Fault))
	}
	return out, nil
}

// FindBusiness browses the remote registry under ctx.
func (c *Client) FindBusiness(ctx context.Context, pattern string) ([]uddi.BusinessInfo, error) {
	b := xmldoc.NewBuilder("req", "findBusiness")
	b.Attrib("name", pattern)
	env, err := c.Call(ctx, "find_business", b.Freeze())
	if err != nil {
		return nil, err
	}
	var out []uddi.BusinessInfo
	for _, bi := range env.Body.Root.ElementChildren() {
		if bi.Name != "businessInfo" {
			continue
		}
		var info uddi.BusinessInfo
		info.BusinessKey, _ = bi.Attr("businessKey")
		info.Name, _ = bi.Attr("name")
		out = append(out, info)
	}
	return out, nil
}

// FindService browses services on the remote registry under ctx.
func (c *Client) FindService(ctx context.Context, pattern string) ([]uddi.ServiceInfo, error) {
	b := xmldoc.NewBuilder("req", "findService")
	b.Attrib("name", pattern)
	env, err := c.Call(ctx, "find_service", b.Freeze())
	if err != nil {
		return nil, err
	}
	var out []uddi.ServiceInfo
	for _, si := range env.Body.Root.ElementChildren() {
		if si.Name != "serviceInfo" {
			continue
		}
		var info uddi.ServiceInfo
		info.ServiceKey, _ = si.Attr("serviceKey")
		info.BusinessKey, _ = si.Attr("businessKey")
		info.Name, _ = si.Attr("name")
		out = append(out, info)
	}
	return out, nil
}

// GetBusinessDetail drills down on the remote registry under ctx.
func (c *Client) GetBusinessDetail(ctx context.Context, keys ...string) ([]*uddi.BusinessEntity, error) {
	b := xmldoc.NewBuilder("req", "getBusinessDetail")
	for _, k := range keys {
		b.Element("businessKey", k)
	}
	env, err := c.Call(ctx, "get_businessDetail", b.Freeze())
	if err != nil {
		return nil, err
	}
	var out []*uddi.BusinessEntity
	for _, en := range env.Body.Root.ElementChildren() {
		if en.Name != "businessEntity" {
			continue
		}
		doc, err := xmldoc.ParseString("entity", xmldoc.CanonicalSubtree(en))
		if err != nil {
			return nil, err
		}
		e, err := uddi.EntityFromXML(doc)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// SaveBusiness publishes an entity to the remote registry under ctx.
func (c *Client) SaveBusiness(ctx context.Context, e *uddi.BusinessEntity) error {
	_, err := c.Call(ctx, "save_business", e.ToXML())
	return err
}

// QueryAuthenticated fetches a Merkle-authenticated view under ctx and
// verifies it against the key directory before returning.
func (c *Client) QueryAuthenticated(ctx context.Context, businessKey string, dir *wsig.KeyDirectory) (*uddi.AuthenticatedResult, error) {
	b := xmldoc.NewBuilder("req", "queryAuthenticated")
	b.Attrib("businessKey", businessKey)
	env, err := c.Call(ctx, "query_authenticated", b.Freeze())
	if err != nil {
		return nil, err
	}
	res, err := DecodeAuthenticated(env.Body)
	if err != nil {
		return nil, err
	}
	if err := res.Verify(dir); err != nil {
		return nil, fmt.Errorf("wsa: authenticity check failed: %w", err)
	}
	return res, nil
}
