package wsa

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"webdbsec/internal/policy"
	"webdbsec/internal/uddi"
	"webdbsec/internal/wsig"
)

func acmeEntity() *uddi.BusinessEntity {
	return &uddi.BusinessEntity{
		BusinessKey: "be-acme",
		Name:        "Acme Logistics",
		Services: []uddi.BusinessService{
			{
				ServiceKey: "svc-ship",
				Name:       "shipping",
				Bindings:   []uddi.BindingTemplate{{BindingKey: "b1", AccessPoint: "https://acme.example/ship"}},
			},
		},
	}
}

func newServer(t *testing.T) (*httptest.Server, *RegistryServer) {
	t.Helper()
	rs := &RegistryServer{Registry: uddi.NewRegistry(nil)}
	ts := httptest.NewServer(rs)
	t.Cleanup(ts.Close)
	return ts, rs
}

func TestSaveAndFindOverHTTP(t *testing.T) {
	ts, _ := newServer(t)
	ctx := context.Background()
	pub := &Client{Endpoint: ts.URL, Sender: "acme-pub"}
	if err := pub.SaveBusiness(ctx, acmeEntity()); err != nil {
		t.Fatal(err)
	}
	req := &Client{Endpoint: ts.URL, Sender: "visitor"}
	infos, err := req.FindBusiness(ctx, "acme")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].BusinessKey != "be-acme" {
		t.Fatalf("find = %+v", infos)
	}
	svcs, err := req.FindService(ctx, "ship")
	if err != nil {
		t.Fatal(err)
	}
	if len(svcs) != 1 || svcs[0].ServiceKey != "svc-ship" || svcs[0].BusinessKey != "be-acme" {
		t.Fatalf("find_service = %+v", svcs)
	}
	ents, err := req.GetBusinessDetail(ctx, "be-acme")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name != "Acme Logistics" {
		t.Fatalf("detail = %+v", ents)
	}
	if len(ents[0].Services) != 1 || ents[0].Services[0].Bindings[0].AccessPoint != "https://acme.example/ship" {
		t.Fatalf("nested structures lost: %+v", ents[0].Services)
	}
}

func TestOwnershipEnforcedOverHTTP(t *testing.T) {
	ts, _ := newServer(t)
	ctx := context.Background()
	pub := &Client{Endpoint: ts.URL, Sender: "acme-pub"}
	if err := pub.SaveBusiness(ctx, acmeEntity()); err != nil {
		t.Fatal(err)
	}
	thief := &Client{Endpoint: ts.URL, Sender: "thief"}
	e := acmeEntity()
	e.Name = "Stolen"
	if err := thief.SaveBusiness(ctx, e); err == nil {
		t.Error("non-owner update accepted over HTTP")
	}
}

func TestFaultForUnknownOperation(t *testing.T) {
	ts, _ := newServer(t)
	c := &Client{Endpoint: ts.URL, Sender: "x"}
	_, err := c.Call(context.Background(), "bogus_op", nil)
	if err == nil || !strings.Contains(err.Error(), "unknown operation") {
		t.Errorf("err = %v", err)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts, _ := newServer(t)
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d", resp.StatusCode)
	}
}

func TestAuthenticatedQueryOverHTTP(t *testing.T) {
	prov, err := uddi.NewProvider("acme-provider")
	if err != nil {
		t.Fatal(err)
	}
	base := policy.NewBase(nil)
	base.MustAdd(&policy.Policy{
		Name:    "public",
		Subject: policy.SubjectSpec{IDs: []string{"*"}},
		Object:  policy.ObjectSpec{Doc: uddi.DocName("be-acme")},
		Priv:    policy.Read,
		Sign:    policy.Permit,
		Prop:    policy.Cascade,
	})
	base.MustAdd(&policy.Policy{
		Name:    "hide-bindings",
		Subject: policy.SubjectSpec{NotRoles: []string{"partner"}},
		Object:  policy.ObjectSpec{Doc: uddi.DocName("be-acme"), Path: "//bindingTemplate"},
		Priv:    policy.Read,
		Sign:    policy.Deny,
		Prop:    policy.Cascade,
	})
	agency := uddi.NewUntrustedAgency(base)
	entry, err := prov.Sign(acmeEntity())
	if err != nil {
		t.Fatal(err)
	}
	if err := agency.Publish(entry); err != nil {
		t.Fatal(err)
	}
	rs := &RegistryServer{Registry: uddi.NewRegistry(nil), Agency: agency}
	ts := httptest.NewServer(rs)
	defer ts.Close()

	dir := wsig.NewKeyDirectory()
	dir.RegisterSigner(prov.Signer())

	ctx := context.Background()
	visitor := &Client{Endpoint: ts.URL, Sender: "visitor"}
	res, err := visitor.QueryAuthenticated(ctx, "be-acme", dir)
	if err != nil {
		t.Fatalf("visitor query: %v", err)
	}
	if strings.Contains(res.View.Canonical(), "bindingTemplate") {
		t.Error("bindings leaked to visitor over HTTP")
	}

	partner := &Client{Endpoint: ts.URL, Sender: "p1", Roles: []string{"partner"}}
	res, err = partner.QueryAuthenticated(ctx, "be-acme", dir)
	if err != nil {
		t.Fatalf("partner query: %v", err)
	}
	if !strings.Contains(res.View.Canonical(), "bindingTemplate") {
		t.Error("partner cannot see bindings over HTTP")
	}

	// Verification against an empty directory must fail client-side.
	if _, err := partner.QueryAuthenticated(ctx, "be-acme", wsig.NewKeyDirectory()); err == nil {
		t.Error("verification passed with no trusted keys")
	}
}

func TestDescribe(t *testing.T) {
	rs := &RegistryServer{Registry: uddi.NewRegistry(nil)}
	sd := rs.Describe("http://x")
	if len(sd.Operations) != 5 {
		t.Errorf("ops = %d, want 5", len(sd.Operations))
	}
	rs.Agency = uddi.NewUntrustedAgency(policy.NewBase(nil))
	if got := len(rs.Describe("http://x").Operations); got != 6 {
		t.Errorf("ops with agency = %d, want 6", got)
	}
}
