// Package wsa implements the Web Service Architecture of §2.2: "three are
// the main entities composing the Web Service Architecture (WSA): the
// service provider ... the service requestor ... and the discovery agency,
// which manages UDDI registries."
//
// Messages travel in SOAP-style XML envelopes over HTTP (net/http). The
// package provides the envelope codec, a service-description document
// (WSDL's role), and the HTTP binding for the UDDI inquiry and publish
// APIs so a registry can be deployed as an actual network service —
// two-party (provider hosts it) or third-party (a separate agency does).
package wsa

import (
	"fmt"
	"io"
	"strings"

	"webdbsec/internal/xmldoc"
)

// Envelope is the message wrapper: a header carrying metadata (requestor
// identity, roles, message id) and a body holding the operation payload.
type Envelope struct {
	// Operation names the requested API function, e.g. "find_business".
	Operation string
	// Sender identifies the requestor or publisher.
	Sender string
	// Roles are the sender's asserted roles (validated upstream by the
	// session layer; the paper's subject qualification happens there).
	Roles []string
	// Body is the payload document; its root element is the operation
	// element.
	Body *xmldoc.Document
	// Fault carries an error message in responses.
	Fault string
}

// Encode serializes the envelope to its XML wire form.
func (e *Envelope) Encode() string {
	b := xmldoc.NewBuilder("envelope", "envelope")
	b.Begin("header")
	b.Element("operation", e.Operation)
	if e.Sender != "" {
		b.Element("sender", e.Sender)
	}
	for _, r := range e.Roles {
		b.Element("role", r)
	}
	b.End()
	b.Begin("body")
	if e.Fault != "" {
		b.Element("fault", e.Fault)
	}
	b.End()
	d := b.Freeze()
	s := d.Canonical()
	if e.Body != nil {
		// Splice the body document inside <body>...</body>. The body is
		// already canonical XML; direct string surgery keeps the codec
		// simple and deterministic.
		inner := e.Body.Canonical()
		s = strings.Replace(s, "<body>", "<body>"+inner, 1)
	}
	return s
}

// DecodeEnvelope parses the wire form back into an Envelope.
// seclint:source
func DecodeEnvelope(r io.Reader) (*Envelope, error) {
	d, err := xmldoc.Parse("envelope", r)
	if err != nil {
		return nil, fmt.Errorf("wsa: %w", err)
	}
	if d.Root.Name != "envelope" {
		return nil, fmt.Errorf("wsa: root element %q, want envelope", d.Root.Name)
	}
	e := &Envelope{}
	if h := d.Root.Child("header"); h != nil {
		if op := h.Child("operation"); op != nil {
			e.Operation = op.Text()
		}
		if sd := h.Child("sender"); sd != nil {
			e.Sender = sd.Text()
		}
		for _, c := range h.ElementChildren() {
			if c.Name == "role" {
				e.Roles = append(e.Roles, c.Text())
			}
		}
	}
	if body := d.Root.Child("body"); body != nil {
		if f := body.Child("fault"); f != nil {
			e.Fault = f.Text()
		}
		for _, c := range body.ElementChildren() {
			if c.Name == "fault" {
				continue
			}
			// Re-parse the first payload element as a standalone document.
			sub, err := xmldoc.ParseString("body", xmldoc.CanonicalSubtree(c))
			if err != nil {
				return nil, fmt.Errorf("wsa: body payload: %w", err)
			}
			e.Body = sub
			break
		}
	}
	if e.Operation == "" && e.Fault == "" {
		return nil, fmt.Errorf("wsa: envelope missing operation")
	}
	return e, nil
}

// ServiceDescription plays WSDL's role: an XML description of a service
// interface — its operations and their message shapes — that a provider
// publishes and a requestor can fetch.
type ServiceDescription struct {
	Name       string
	Endpoint   string
	Operations []OperationDesc
}

// OperationDesc describes one operation of a service.
type OperationDesc struct {
	Name   string
	Input  string // root element name of the request body
	Output string // root element name of the response body
}

// ToXML renders the description document.
func (sd *ServiceDescription) ToXML() *xmldoc.Document {
	b := xmldoc.NewBuilder("description:"+sd.Name, "description")
	b.Attrib("name", sd.Name)
	b.Attrib("endpoint", sd.Endpoint)
	for _, op := range sd.Operations {
		b.Begin("operation").
			Attrib("name", op.Name).
			Attrib("input", op.Input).
			Attrib("output", op.Output).
			End()
	}
	return b.Freeze()
}

// DescriptionFromXML parses a description document.
func DescriptionFromXML(d *xmldoc.Document) (*ServiceDescription, error) {
	if d == nil || d.Root == nil || d.Root.Name != "description" {
		return nil, fmt.Errorf("wsa: not a service description")
	}
	sd := &ServiceDescription{}
	sd.Name, _ = d.Root.Attr("name")
	sd.Endpoint, _ = d.Root.Attr("endpoint")
	for _, c := range d.Root.ElementChildren() {
		if c.Name != "operation" {
			continue
		}
		var op OperationDesc
		op.Name, _ = c.Attr("name")
		op.Input, _ = c.Attr("input")
		op.Output, _ = c.Attr("output")
		sd.Operations = append(sd.Operations, op)
	}
	if sd.Name == "" {
		return nil, fmt.Errorf("wsa: description missing name")
	}
	return sd, nil
}
