package wsa

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"webdbsec/internal/uddi"
	"webdbsec/internal/xmldoc"
)

func TestDecodeAuthenticatedMalformed(t *testing.T) {
	cases := []string{
		`<notAResult/>`,
		`<authenticatedResult><summary signer="p" value="zz-not-hex"/><proof/><view><a/></view></authenticatedResult>`,
		`<authenticatedResult><summary signer="p" value="00"/><proof><element><missing pos="x" hash="00"/></element></proof><view><a/></view></authenticatedResult>`,
		`<authenticatedResult><summary signer="p" value="00"/><proof><element><missing pos="1" hash="zz"/></element></proof><view><a/></view></authenticatedResult>`,
		`<authenticatedResult><summary signer="p" value="00"/><proof/></authenticatedResult>`,                      // no view
		`<authenticatedResult><summary signer="p" value="00"/><proof/><view><a/><b/></view></authenticatedResult>`, // two roots
	}
	for _, src := range cases {
		doc, err := xmldoc.ParseString("x", src)
		if err != nil {
			t.Fatalf("fixture %q: %v", src, err)
		}
		if _, err := DecodeAuthenticated(doc); err == nil {
			t.Errorf("DecodeAuthenticated(%q): want error", src)
		}
	}
	if _, err := DecodeAuthenticated(nil); err == nil {
		t.Error("nil document accepted")
	}
}

func TestDispatchMissingBodies(t *testing.T) {
	ts, _ := newServer(t)
	c := &Client{Endpoint: ts.URL, Sender: "x"}
	for _, op := range []string{"get_businessDetail", "save_business", "delete_business"} {
		if _, err := c.Call(context.Background(), op, nil); err == nil {
			t.Errorf("%s without body accepted", op)
		}
	}
	// query_authenticated without an agency attached.
	b := xmldoc.NewBuilder("req", "queryAuthenticated")
	b.Attrib("businessKey", "k")
	if _, err := c.Call(context.Background(), "query_authenticated", b.Freeze()); err == nil ||
		!strings.Contains(err.Error(), "no untrusted agency") {
		t.Errorf("query without agency: %v", err)
	}
}

func TestClientAgainstDeadEndpoint(t *testing.T) {
	ts := httptest.NewServer(nil)
	url := ts.URL
	ts.Close()
	c := &Client{Endpoint: url, Sender: "x"}
	if _, err := c.FindBusiness(context.Background(), "a"); err == nil {
		t.Error("call to dead endpoint succeeded")
	}
}

func TestSaveBusinessRejectsMalformedEntity(t *testing.T) {
	ts, _ := newServer(t)
	c := &Client{Endpoint: ts.URL, Sender: "pub"}
	// Entity without a name fails validation server-side.
	bad := &uddi.BusinessEntity{BusinessKey: "k"}
	if err := c.SaveBusiness(context.Background(), bad); err == nil {
		t.Error("malformed entity accepted over HTTP")
	}
}

func TestBadEnvelopeIsBadRequest(t *testing.T) {
	ts, _ := newServer(t)
	resp, err := http.Post(ts.URL, "application/xml", strings.NewReader("this is not xml"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}
