package wsa

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"webdbsec/internal/resilience"
	"webdbsec/internal/resilience/faultinject"
	"webdbsec/internal/uddi"
	"webdbsec/internal/xmldoc"
)

// noSleep keeps client retries instant in tests.
var noSleep = func(context.Context, time.Duration) error { return nil }

// TestPanicInDispatchRecovered: a panic anywhere in dispatch must become a
// 500 fault, not a dead server. A nil Registry makes every operation
// panic.
func TestPanicInDispatchRecovered(t *testing.T) {
	var logged atomic.Value
	rs := &RegistryServer{ // Registry == nil → nil dereference in dispatch
		Logf: func(format string, args ...any) {
			logged.Store(fmt.Sprintf(format, args...))
		},
	}
	ts := httptest.NewServer(rs)
	defer ts.Close()
	b := xmldoc.NewBuilder("req", "findBusiness")
	env := &Envelope{Operation: "find_business", Sender: "x", Body: b.Freeze()}
	resp, err := http.Post(ts.URL, "application/xml", strings.NewReader(env.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", resp.StatusCode)
	}
	// The fault on the wire must be opaque: the panic value (here a
	// runtime nil-dereference message) is server-side diagnostics, not
	// client-visible content.
	if strings.Contains(string(body), "runtime error") {
		t.Errorf("panic detail leaked to client: %q", body)
	}
	if !strings.Contains(string(body), "wsa: internal error") {
		t.Errorf("fault body = %q, want generic internal-error fault", body)
	}
	if lg, _ := logged.Load().(string); !strings.Contains(lg, "runtime error") {
		t.Errorf("server log = %q, want the recovered panic value", lg)
	}
	// The server must still answer subsequent requests.
	resp, err = http.Post(ts.URL, "application/xml", strings.NewReader(env.Encode()))
	if err != nil {
		t.Fatalf("server dead after panic: %v", err)
	}
	resp.Body.Close()
}

// TestOversizedBodyRejected: bodies beyond MaxRequestBody are refused with
// 413 instead of being slurped into memory.
func TestOversizedBodyRejected(t *testing.T) {
	ts, _ := newServer(t)
	huge := strings.NewReader(strings.Repeat("a", MaxRequestBody+1))
	resp, err := http.Post(ts.URL, "application/xml", huge)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("status = %d, want 413", resp.StatusCode)
	}
}

// TestDispatchErrorStatuses: client mistakes are 400, server
// misconfiguration is 500 — never 200 with a fault inside (the bug this
// fixes).
func TestDispatchErrorStatuses(t *testing.T) {
	ts, _ := newServer(t)
	post := func(env *Envelope) int {
		t.Helper()
		resp, err := http.Post(ts.URL, "application/xml", strings.NewReader(env.Encode()))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(&Envelope{Operation: "no_such_op", Sender: "x"}); code != http.StatusBadRequest {
		t.Errorf("unknown op: status = %d, want 400", code)
	}
	// query_authenticated with no agency: deployment fault, not the
	// requestor's.
	b := xmldoc.NewBuilder("req", "queryAuthenticated")
	b.Attrib("businessKey", "k")
	env := &Envelope{Operation: "query_authenticated", Sender: "x", Body: b.Freeze()}
	if code := post(env); code != http.StatusInternalServerError {
		t.Errorf("missing agency: status = %d, want 500", code)
	}
}

// TestClientRetriesTransientServerError: a 503-then-healthy service is
// papered over by the retry layer.
func TestClientRetriesTransientServerError(t *testing.T) {
	rs := &RegistryServer{Registry: uddi.NewRegistry(nil)}
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		rs.ServeHTTP(w, r)
	}))
	defer ts.Close()
	c := &Client{
		Endpoint: ts.URL, Sender: "x",
		Retry: &resilience.RetryPolicy{MaxAttempts: 4, Sleep: noSleep},
	}
	if _, err := c.FindBusiness(context.Background(), ""); err != nil {
		t.Fatalf("retry did not recover from transient 503s: %v", err)
	}
	if calls.Load() != 3 {
		t.Errorf("calls = %d, want 3 (two failures + one success)", calls.Load())
	}
}

// TestClientDoesNotRetryApplicationFault: a 4xx fault envelope means the
// request is wrong — retrying the same bytes is futile and must not
// happen.
func TestClientDoesNotRetryApplicationFault(t *testing.T) {
	var calls atomic.Int64
	rs := &RegistryServer{Registry: uddi.NewRegistry(nil)}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		rs.ServeHTTP(w, r)
	}))
	defer ts.Close()
	c := &Client{
		Endpoint: ts.URL, Sender: "x",
		Retry: &resilience.RetryPolicy{MaxAttempts: 5, Sleep: noSleep},
	}
	if _, err := c.Call(context.Background(), "no_such_op", nil); err == nil {
		t.Fatal("unknown operation succeeded")
	}
	if calls.Load() != 1 {
		t.Errorf("application fault retried: %d calls", calls.Load())
	}
}

// TestClientBreakerOpensAndFailsFast: a consistently failing endpoint
// trips the circuit; later calls are rejected without touching the wire.
func TestClientBreakerOpensAndFailsFast(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer ts.Close()
	br := resilience.NewBreaker(resilience.BreakerConfig{FailureThreshold: 3, Cooldown: time.Hour})
	c := &Client{Endpoint: ts.URL, Sender: "x", Breaker: br}
	for i := 0; i < 3; i++ {
		if _, err := c.FindBusiness(context.Background(), ""); err == nil {
			t.Fatal("call to dead service succeeded")
		}
	}
	wire := calls.Load()
	if br.State() != resilience.Open {
		t.Fatalf("breaker state = %v after %d failures", br.State(), wire)
	}
	if _, err := c.FindBusiness(context.Background(), ""); !errors.Is(err, resilience.ErrOpen) {
		t.Errorf("open-circuit call error = %v", err)
	}
	if calls.Load() != wire {
		t.Errorf("open circuit still reached the wire: %d → %d calls", wire, calls.Load())
	}
}

// TestClientBreakerIgnoresApplicationFaults: a flood of 4xx faults says
// nothing about the service's health and must not open the circuit.
func TestClientBreakerIgnoresApplicationFaults(t *testing.T) {
	ts, _ := newServer(t)
	br := resilience.NewBreaker(resilience.BreakerConfig{FailureThreshold: 2, Cooldown: time.Hour})
	c := &Client{Endpoint: ts.URL, Sender: "x", Breaker: br}
	for i := 0; i < 6; i++ {
		if _, err := c.Call(context.Background(), "no_such_op", nil); err == nil {
			t.Fatal("unknown operation succeeded")
		}
	}
	if br.State() != resilience.Closed {
		t.Errorf("client faults opened the breaker: %v", br.State())
	}
}

// TestClientContextDeadlineBoundsCall: a wedged server cannot hold the
// caller past its deadline.
func TestClientContextDeadlineBoundsCall(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	// Unblock the handler before Close — ts.Close waits for in-flight
	// handlers.
	defer ts.Close()
	defer close(release)
	c := &Client{Endpoint: ts.URL, Sender: "x"}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Call(ctx, "find_business", nil)
	if err == nil {
		t.Fatal("call to wedged server succeeded")
	}
	if time.Since(start) > 2*time.Second {
		t.Errorf("deadline did not bound the call: %v", time.Since(start))
	}
}

// TestClientRecoversFromInjectedTransportFaults drives the harness
// against the full client stack: a transport that errors twice then
// heals is absorbed by the retry layer.
func TestClientRecoversFromInjectedTransportFaults(t *testing.T) {
	ts, _ := newServer(t)
	inj := faultinject.New(faultinject.Steps(faultinject.Error, faultinject.Error))
	c := &Client{
		Endpoint: ts.URL, Sender: "x",
		HTTP:  &http.Client{Transport: faultinject.WrapTransport(nil, inj)},
		Retry: &resilience.RetryPolicy{MaxAttempts: 4, Sleep: noSleep},
	}
	if _, err := c.FindBusiness(context.Background(), ""); err != nil {
		t.Fatalf("retry did not absorb injected transport faults: %v", err)
	}
}

// TestClientCorruptedResponseSurfaces: a corrupted response body fails
// decoding loudly instead of yielding a silently wrong envelope.
func TestClientCorruptedResponseSurfaces(t *testing.T) {
	ts, _ := newServer(t)
	inj := faultinject.New(faultinject.Always(faultinject.Corrupt))
	c := &Client{
		Endpoint: ts.URL, Sender: "x",
		HTTP: &http.Client{Transport: faultinject.WrapTransport(nil, inj)},
	}
	if _, err := c.FindBusiness(context.Background(), ""); err == nil {
		t.Fatal("corrupted envelope accepted")
	}
}

// TestRetryExhaustionReportsAttempts: when every attempt fails the error
// says how many were made.
func TestRetryExhaustionReportsAttempts(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusBadGateway)
	}))
	defer ts.Close()
	c := &Client{
		Endpoint: ts.URL, Sender: "x",
		Retry: &resilience.RetryPolicy{MaxAttempts: 3, Sleep: noSleep},
	}
	_, err := c.FindBusiness(context.Background(), "")
	if err == nil {
		t.Fatal("call to dead service succeeded")
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("%d attempt", 3)) {
		t.Errorf("exhaustion error lacks attempt count: %v", err)
	}
}
