package wsa

import (
	"strings"
	"testing"

	"webdbsec/internal/xmldoc"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	body := xmldoc.MustParseString("b", `<findBusiness name="acme"/>`)
	env := &Envelope{
		Operation: "find_business",
		Sender:    "alice",
		Roles:     []string{"partner", "auditor"},
		Body:      body,
	}
	got, err := DecodeEnvelope(strings.NewReader(env.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Operation != "find_business" || got.Sender != "alice" {
		t.Errorf("header lost: %+v", got)
	}
	if len(got.Roles) != 2 || got.Roles[0] != "partner" {
		t.Errorf("roles lost: %v", got.Roles)
	}
	if got.Body == nil || got.Body.Root.Name != "findBusiness" {
		t.Fatalf("body lost: %+v", got.Body)
	}
	if n, _ := got.Body.Root.Attr("name"); n != "acme" {
		t.Errorf("body attr lost: %q", n)
	}
}

func TestEnvelopeFault(t *testing.T) {
	env := &Envelope{Fault: "unknown operation"}
	got, err := DecodeEnvelope(strings.NewReader(env.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Fault != "unknown operation" {
		t.Errorf("fault = %q", got.Fault)
	}
}

func TestEnvelopeNestedBody(t *testing.T) {
	body := xmldoc.MustParseString("b", `<businessEntity businessKey="k"><name>Acme &amp; Co</name></businessEntity>`)
	env := &Envelope{Operation: "save_business", Sender: "pub", Body: body}
	got, err := DecodeEnvelope(strings.NewReader(env.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Body.Root.Child("name").Text() != "Acme & Co" {
		t.Errorf("escaped text lost: %q", got.Body.Root.Child("name").Text())
	}
}

func TestDecodeEnvelopeErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"<notenvelope/>",
		"<envelope><header/></envelope>", // no operation, no fault
		"not xml at all",
	} {
		if _, err := DecodeEnvelope(strings.NewReader(src)); err == nil {
			t.Errorf("decode %q: want error", src)
		}
	}
}

func TestServiceDescriptionRoundTrip(t *testing.T) {
	sd := &ServiceDescription{
		Name:     "uddi-registry",
		Endpoint: "http://reg.example/api",
		Operations: []OperationDesc{
			{Name: "find_business", Input: "findBusiness", Output: "businessList"},
			{Name: "save_business", Input: "businessEntity", Output: "result"},
		},
	}
	got, err := DescriptionFromXML(sd.ToXML())
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != sd.Name || got.Endpoint != sd.Endpoint {
		t.Errorf("header lost: %+v", got)
	}
	if len(got.Operations) != 2 || got.Operations[1].Input != "businessEntity" {
		t.Errorf("operations lost: %+v", got.Operations)
	}
	if _, err := DescriptionFromXML(nil); err == nil {
		t.Error("nil description accepted")
	}
	if _, err := DescriptionFromXML(xmldoc.MustParseString("x", "<other/>")); err == nil {
		t.Error("wrong root accepted")
	}
}
