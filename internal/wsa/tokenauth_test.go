package wsa

import (
	"context"
	"crypto/ed25519"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"webdbsec/internal/authtoken"
	"webdbsec/internal/credential"
	"webdbsec/internal/policy"
	"webdbsec/internal/uddi"
)

// End-to-end token auth over the envelope surface: first call qualifies
// on the wallet and comes back token-armed, subsequent calls ride the
// fast path, and bad material is refused with a terminal fault.

type uddiMintGate struct{}

func (uddiMintGate) AllowMint(s *policy.Subject) bool { return s.ID != "" }

// testRing is a single-epoch in-test keyring (keymgmt.MintKeyring imports
// this package, so the real one is off-limits to internal tests).
type testRing struct {
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

func (k *testRing) SigningKey() (uint32, ed25519.PrivateKey) { return 1, k.priv }
func (k *testRing) VerifyKey(e uint32) (ed25519.PublicKey, bool) {
	if e == 1 {
		return k.pub, true
	}
	return nil, false
}

func newTokenServer(t *testing.T) (*httptest.Server, *RegistryServer, *credential.Authority) {
	t.Helper()
	pub, priv, err := ed25519.GenerateKey(nil)
	if err != nil {
		t.Fatalf("keygen: %v", err)
	}
	ring := &testRing{pub: pub, priv: priv}
	auth, err := credential.NewAuthority("registry-ca")
	if err != nil {
		t.Fatalf("authority: %v", err)
	}
	cv := credential.NewVerifier()
	cv.TrustAuthority(auth)
	m, err := authtoken.NewMinter(ring, cv, uddiMintGate{}, time.Minute)
	if err != nil {
		t.Fatalf("minter: %v", err)
	}
	rs := &RegistryServer{
		Registry: uddi.NewRegistry(nil),
		Auth: &authtoken.Service{Gate: &authtoken.Gate{
			Verifier: authtoken.NewVerifier(ring, time.Minute, 0, 0),
			Minter:   m,
		}},
	}
	ts := httptest.NewServer(rs)
	t.Cleanup(ts.Close)
	return ts, rs, auth
}

func TestClientTokenFastPathOverEnvelope(t *testing.T) {
	ts, rs, auth := newTokenServer(t)
	ctx := context.Background()

	w := credential.NewWallet("acme-pub")
	if err := w.Add(auth.Issue("publisher", "acme-pub", nil)); err != nil {
		t.Fatalf("wallet: %v", err)
	}
	c := &Client{Endpoint: ts.URL, Sender: "acme-pub", Auth: &TokenAuth{Wallet: w}}

	// First call: no token yet — wallet path, and the response arms us.
	if err := c.SaveBusiness(ctx, acmeEntity()); err != nil {
		t.Fatal(err)
	}
	if c.Auth.Token() == "" {
		t.Fatalf("no token armed after wallet-authenticated call")
	}
	first := c.Auth.Token()

	// Next calls: fast path, and the held token rolls every hop.
	for i := 0; i < 3; i++ {
		if _, err := c.FindBusiness(ctx, "acme"); err != nil {
			t.Fatal(err)
		}
	}
	if c.Auth.Token() == first {
		t.Fatalf("token did not roll across calls")
	}
	st := rs.Auth.Gate.Stats()
	if st.SlowPath != 1 || st.FastPath != 3 {
		t.Fatalf("stats = %+v, want 1 slow / 3 fast", st)
	}
	if st.FastPathHitRate != 0.75 {
		t.Fatalf("hit rate = %v, want 0.75", st.FastPathHitRate)
	}
}

func TestLegacyEnvelopeStillServed(t *testing.T) {
	ts, rs, _ := newTokenServer(t)
	c := &Client{Endpoint: ts.URL, Sender: "legacy-pub"}
	if err := c.SaveBusiness(context.Background(), acmeEntity()); err != nil {
		t.Fatal(err)
	}
	if st := rs.Auth.Gate.Stats(); st.Legacy != 1 {
		t.Fatalf("stats = %+v, want 1 legacy", st)
	}
}

func TestBadWalletRefusedWithTerminalFault(t *testing.T) {
	ts, _, _ := newTokenServer(t)
	rogue, err := credential.NewAuthority("rogue")
	if err != nil {
		t.Fatalf("authority: %v", err)
	}
	w := credential.NewWallet("mallory")
	if err := w.Add(rogue.Issue("publisher", "mallory", nil)); err != nil {
		t.Fatalf("wallet: %v", err)
	}
	c := &Client{Endpoint: ts.URL, Sender: "mallory", Auth: &TokenAuth{Wallet: w}}
	err = c.SaveBusiness(context.Background(), acmeEntity())
	if err == nil || !strings.Contains(err.Error(), "credential") {
		t.Fatalf("err = %v, want wallet refusal", err)
	}
}

func TestStolenTokenRefusedForOtherSender(t *testing.T) {
	ts, rs, auth := newTokenServer(t)
	ctx := context.Background()
	w := credential.NewWallet("acme-pub")
	if err := w.Add(auth.Issue("publisher", "acme-pub", nil)); err != nil {
		t.Fatalf("wallet: %v", err)
	}
	victim := &Client{Endpoint: ts.URL, Sender: "acme-pub", Auth: &TokenAuth{Wallet: w}}
	if err := victim.SaveBusiness(ctx, acmeEntity()); err != nil {
		t.Fatal(err)
	}
	// A different sender presenting the victim's token, no wallet.
	thief := &Client{Endpoint: ts.URL, Sender: "mallory", Auth: &TokenAuth{}}
	thief.Auth.store(victim.Auth.Token())
	_, err := thief.FindBusiness(ctx, "acme")
	if err == nil || !strings.Contains(err.Error(), "different subject") {
		t.Fatalf("err = %v, want subject-binding refusal", err)
	}
	if st := rs.Auth.Gate.Stats(); st.Rejected != 1 || st.Verifier.SubjectMismatch != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// The victim's held token was NOT consumed by the failed theft.
	if _, err := victim.FindBusiness(ctx, "acme"); err != nil {
		t.Fatalf("victim after theft attempt: %v", err)
	}
}
