// Package accessctl is the access control engine: it evaluates the policy
// base of internal/policy against graph-structured documents and computes
// the pruned views the Author-X model [5] delivers to subjects ("algorithms
// for access control as well as computing views of the results", §3.2).
//
// The view computation is the classical Author-X labeled traversal:
//
//  1. every applicable policy marks the nodes its object path selects,
//     with a specificity derived from the object granularity;
//  2. marks propagate down the tree according to the policy's propagation
//     option, losing strength with distance;
//  3. each node's final label is decided by the strongest mark, denials
//     winning ties; unlabeled nodes are denied (closed system);
//  4. the view is the source document pruned to permitted nodes.
package accessctl

import (
	"webdbsec/internal/policy"
	"webdbsec/internal/xmldoc"
)

// Engine evaluates access decisions over a document store.
type Engine struct {
	store *xmldoc.Store
	base  *policy.Base
}

// NewEngine returns an engine over the given store and policy base.
func NewEngine(store *xmldoc.Store, base *policy.Base) *Engine {
	return &Engine{store: store, base: base}
}

// Store returns the engine's document store.
func (e *Engine) Store() *xmldoc.Store { return e.store }

// Base returns the engine's policy base.
func (e *Engine) Base() *policy.Base { return e.base }

// mark is one (possibly propagated) authorization label on a node.
type mark struct {
	sign policy.Sign
	// spec is the object-spec specificity of the originating policy.
	spec int
	// dist is the propagation distance from the explicitly matched node
	// (0 = explicit). Closer marks are stronger.
	dist int
}

// stronger reports whether a beats b. Higher specificity wins; then
// smaller distance; then Deny beats Permit (denials take precedence).
func stronger(a, b mark) bool {
	if a.spec != b.spec {
		return a.spec > b.spec
	}
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.sign == policy.Deny && b.sign == policy.Permit
}

// Labels computes the per-node decision vector for a subject requesting
// priv on the document: out[id] is true iff node id is permitted.
func (e *Engine) Labels(doc *xmldoc.Document, s *policy.Subject, priv policy.Privilege) []bool {
	marks := make([]mark, doc.NumNodes())
	marked := make([]bool, doc.NumNodes())

	apply := func(id int, m mark) {
		if !marked[id] || stronger(m, marks[id]) {
			marks[id] = m
			marked[id] = true
		}
	}

	for _, p := range e.base.Applicable(e.store, doc.Name, s, priv) {
		spec := objectSpecificity(p)
		var roots []*xmldoc.Node
		if pe := p.PathExpr(); pe != nil {
			roots = pe.Select(doc)
		} else {
			roots = []*xmldoc.Node{doc.Root}
		}
		for _, n := range roots {
			apply(n.ID(), mark{sign: p.Sign, spec: spec, dist: 0})
			// Attributes and text always travel with their element for
			// whole-element marks.
			spread(n, p.Prop, func(m *xmldoc.Node, dist int) {
				apply(m.ID(), mark{sign: p.Sign, spec: spec, dist: dist})
			})
		}
	}

	out := make([]bool, doc.NumNodes())
	for id := range out {
		out[id] = marked[id] && marks[id].sign == policy.Permit
	}
	return out
}

// objectSpecificity ranks the policy's object spec: path-level > doc-level
// > set-level > wildcard; among path-level policies, the more precise path
// (more fixed steps and predicates) is more specific — so a permit on
// /hospital/patient[@ward='3']/ssn overrides a blanket deny on //ssn.
func objectSpecificity(p *policy.Policy) int {
	s := 0
	switch {
	case p.Object.Doc != "" && p.Object.Doc != "*":
		s = 2
	case p.Object.Set != "":
		s = 1
	}
	if p.Object.Path != "" && p.Object.Path != "/" {
		s += 2
	}
	s *= 1000
	if pe := p.PathExpr(); pe != nil {
		s += pe.Specificity()
	}
	return s
}

// spread visits the nodes a propagation option extends a mark to, calling
// fn with the propagation distance (>= 1).
func spread(n *xmldoc.Node, prop policy.Propagation, fn func(*xmldoc.Node, int)) {
	if n.Kind != xmldoc.KindElement {
		return
	}
	// Attributes and direct text always accompany their element, at every
	// propagation level.
	attrsAndText := func(e *xmldoc.Node, dist int) {
		for _, a := range e.Attrs {
			fn(a, dist)
		}
		for _, c := range e.Children {
			if c.Kind == xmldoc.KindText {
				fn(c, dist)
			}
		}
	}
	switch prop {
	case policy.NoProp:
		attrsAndText(n, 1)
	case policy.FirstLevel:
		attrsAndText(n, 1)
		for _, c := range n.Children {
			if c.Kind != xmldoc.KindElement {
				continue
			}
			fn(c, 1)
			attrsAndText(c, 2)
		}
	case policy.Cascade:
		var walk func(m *xmldoc.Node, dist int)
		walk = func(m *xmldoc.Node, dist int) {
			for _, a := range m.Attrs {
				fn(a, dist+1)
			}
			for _, c := range m.Children {
				fn(c, dist+1)
				if c.Kind == xmldoc.KindElement {
					walk(c, dist+1)
				}
			}
		}
		walk(n, 0)
	}
}

// Check decides a single access: may the subject exercise priv on the node
// addressed by path within the named document? It returns false for unknown
// documents and non-matching paths (closed system).
func (e *Engine) Check(docName, path string, s *policy.Subject, priv policy.Privilege) bool {
	doc, ok := e.store.Get(docName)
	if !ok {
		return false
	}
	pe, err := xmldoc.CompilePath(path)
	if err != nil {
		return false
	}
	nodes := pe.Select(doc)
	if len(nodes) == 0 {
		return false
	}
	labels := e.Labels(doc, s, priv)
	for _, n := range nodes {
		if !labels[n.ID()] {
			return false
		}
	}
	return true
}

// View computes the subject's authorized view of the document for the
// given privilege: the document pruned to permitted nodes. It returns nil
// when the subject may not see any portion (including the unknown-document
// case).
//
// For the Browse privilege, content (text and attribute values) of
// permitted elements is blanked while the structure is preserved — the
// paper's distinction between reading and browsing (§2.1, §3.2).
func (e *Engine) View(docName string, s *policy.Subject, priv policy.Privilege) *xmldoc.Document {
	doc, ok := e.store.Get(docName)
	if !ok {
		return nil
	}
	labels := e.Labels(doc, s, priv)
	v := doc.Prune(func(n *xmldoc.Node) bool { return labels[n.ID()] })
	if v == nil || priv != policy.Browse {
		return v
	}
	blank := v.Clone()
	blank.Walk(func(n *xmldoc.Node) bool {
		if n.Kind != xmldoc.KindElement {
			n.Value = ""
		}
		return true
	})
	return blank
}

// PolicyConfiguration is the set of subjects-independent equivalence
// classes of nodes under the policy base: two nodes are in the same class
// iff exactly the same (policy, sign) marks apply to them. It is the basis
// of the Author-X "well-formed encryption": one key per class (§3.2,
// "all the entry portions to which the same policies apply are encrypted
// with the same key" §4.1).
type PolicyConfiguration struct {
	// Class[id] is the configuration index of node id.
	Class []int
	// NumClasses is the number of distinct configurations, including class
	// 0 which is always the "no policy applies" class.
	NumClasses int
	// Members lists the policies (by name, with sign) defining each class.
	Members []string
}

// Configurations partitions the document's nodes by the set of read
// policies that mark them (ignoring subjects: every installed read policy
// participates). Class 0 collects unmarked nodes.
func (e *Engine) Configurations(doc *xmldoc.Document) *PolicyConfiguration {
	type key = string
	nodeKey := make([]string, doc.NumNodes())
	for idx, p := range e.base.All() {
		if p.Priv != policy.Read || !p.Object.AppliesToDoc(e.store, doc.Name) {
			continue
		}
		var roots []*xmldoc.Node
		if pe := p.PathExpr(); pe != nil {
			roots = pe.Select(doc)
		} else {
			roots = []*xmldoc.Node{doc.Root}
		}
		tag := string(rune('A'+idx%26)) + itoa(idx)
		markNode := func(n *xmldoc.Node, _ int) {
			nodeKey[n.ID()] += tag + ";"
		}
		for _, n := range roots {
			markNode(n, 0)
			spread(n, p.Prop, markNode)
		}
	}
	classOf := map[key]int{"": 0}
	pc := &PolicyConfiguration{Class: make([]int, doc.NumNodes()), Members: []string{""}}
	for id, k := range nodeKey {
		c, ok := classOf[k]
		if !ok {
			c = len(classOf)
			classOf[k] = c
			pc.Members = append(pc.Members, k)
		}
		pc.Class[id] = c
	}
	pc.NumClasses = len(classOf)
	return pc
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	pos := len(b)
	for i > 0 {
		pos--
		b[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(b[pos:])
}
