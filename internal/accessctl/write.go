package accessctl

import (
	"fmt"

	"webdbsec/internal/policy"
	"webdbsec/internal/xmldoc"
)

// Write operations: §5 requires that "access must be controlled to various
// portions of the document for reading, browsing and modifications". The
// engine gates three mutations — text update, subtree append, subtree
// delete — on Write-privilege labels computed the same way as read labels.
// Mutations go through the store (documents are re-frozen), so node ids
// stay dense and indexes current.

// UpdateText replaces the text content of the elements matched by path,
// provided the subject holds Write on every matched node.
func (e *Engine) UpdateText(docName, path string, s *policy.Subject, newText string) error {
	doc, pe, nodes, err := e.resolveWrite(docName, path, s)
	if err != nil {
		return err
	}
	_ = pe
	for _, n := range nodes {
		if n.Kind != xmldoc.KindElement {
			return fmt.Errorf("accessctl: UpdateText targets must be elements, got %v", n.Kind)
		}
	}
	// Rebuild the document with the replacement applied.
	targets := map[int]bool{}
	for _, n := range nodes {
		targets[n.ID()] = true
	}
	updated := rebuild(doc, func(b *xmldoc.Builder, n *xmldoc.Node) bool {
		if n.Kind == xmldoc.KindElement && targets[n.ID()] {
			copyElementShell(b, n)
			b.Text(newText)
			for _, c := range n.Children {
				if c.Kind == xmldoc.KindElement {
					copySubtree(b, c)
				}
			}
			b.End()
			return true
		}
		return false
	})
	e.store.Put(updated)
	return nil
}

// Append adds a new child subtree under the elements matched by path,
// provided the subject holds Write on each.
func (e *Engine) Append(docName, path string, s *policy.Subject, child *xmldoc.Document) error {
	doc, _, nodes, err := e.resolveWrite(docName, path, s)
	if err != nil {
		return err
	}
	targets := map[int]bool{}
	for _, n := range nodes {
		if n.Kind != xmldoc.KindElement {
			return fmt.Errorf("accessctl: Append targets must be elements")
		}
		targets[n.ID()] = true
	}
	updated := rebuild(doc, func(b *xmldoc.Builder, n *xmldoc.Node) bool {
		if n.Kind == xmldoc.KindElement && targets[n.ID()] {
			copyElementShell(b, n)
			for _, c := range n.Children {
				copyNode(b, c)
			}
			copySubtree(b, child.Root)
			b.End()
			return true
		}
		return false
	})
	e.store.Put(updated)
	return nil
}

// Delete removes the subtrees matched by path, provided the subject holds
// Write on each matched node. Deleting the root is rejected.
func (e *Engine) Delete(docName, path string, s *policy.Subject) error {
	doc, _, nodes, err := e.resolveWrite(docName, path, s)
	if err != nil {
		return err
	}
	targets := map[int]bool{}
	for _, n := range nodes {
		if n.Parent == nil {
			return fmt.Errorf("accessctl: cannot delete the document root")
		}
		targets[n.ID()] = true
	}
	updated := doc.Prune(func(n *xmldoc.Node) bool {
		for p := n; p != nil; p = p.Parent {
			if targets[p.ID()] {
				return false
			}
		}
		return true
	})
	if updated == nil {
		return fmt.Errorf("accessctl: delete would empty the document")
	}
	e.store.Put(updated)
	return nil
}

// resolveWrite locates the target nodes and checks Write authorization on
// each.
func (e *Engine) resolveWrite(docName, path string, s *policy.Subject) (*xmldoc.Document, *xmldoc.PathExpr, []*xmldoc.Node, error) {
	doc, ok := e.store.Get(docName)
	if !ok {
		return nil, nil, nil, fmt.Errorf("accessctl: unknown document %s", docName)
	}
	pe, err := xmldoc.CompilePath(path)
	if err != nil {
		return nil, nil, nil, err
	}
	nodes := pe.Select(doc)
	if len(nodes) == 0 {
		return nil, nil, nil, fmt.Errorf("accessctl: path %s matches nothing in %s", path, docName)
	}
	labels := e.Labels(doc, s, policy.Write)
	for _, n := range nodes {
		if !labels[n.ID()] {
			return nil, nil, nil, fmt.Errorf("accessctl: %s may not write %s in %s", s.ID, n.Path(), docName)
		}
	}
	return doc, pe, nodes, nil
}

// rebuild copies a document through a Builder; mutate may take over the
// emission of a node (returning true when it did).
func rebuild(doc *xmldoc.Document, mutate func(*xmldoc.Builder, *xmldoc.Node) bool) *xmldoc.Document {
	b := xmldoc.NewBuilder(doc.Name, doc.Root.Name)
	for _, a := range doc.Root.Attrs {
		b.Attrib(a.Name, a.Value)
	}
	for _, c := range doc.Root.Children {
		emit(b, c, mutate)
	}
	return b.Freeze()
}

func emit(b *xmldoc.Builder, n *xmldoc.Node, mutate func(*xmldoc.Builder, *xmldoc.Node) bool) {
	if mutate(b, n) {
		return
	}
	switch n.Kind {
	case xmldoc.KindText:
		b.Text(n.Value)
	case xmldoc.KindElement:
		copyElementShell(b, n)
		for _, c := range n.Children {
			emit(b, c, mutate)
		}
		b.End()
	}
}

// copyElementShell begins an element with its attributes (caller must End).
func copyElementShell(b *xmldoc.Builder, n *xmldoc.Node) {
	b.Begin(n.Name)
	for _, a := range n.Attrs {
		b.Attrib(a.Name, a.Value)
	}
}

// copyNode copies one child node verbatim.
func copyNode(b *xmldoc.Builder, n *xmldoc.Node) {
	switch n.Kind {
	case xmldoc.KindText:
		b.Text(n.Value)
	case xmldoc.KindElement:
		copySubtree(b, n)
	}
}

// copySubtree copies a whole element subtree.
func copySubtree(b *xmldoc.Builder, n *xmldoc.Node) {
	copyElementShell(b, n)
	for _, c := range n.Children {
		copyNode(b, c)
	}
	b.End()
}
