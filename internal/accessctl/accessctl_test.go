package accessctl

import (
	"strings"
	"testing"

	"webdbsec/internal/policy"
	"webdbsec/internal/xmldoc"
)

const recordsXML = `
<hospital>
  <patient id="p1" ward="3">
    <name>Alice</name>
    <ssn>111-22-3333</ssn>
    <diagnosis severity="high">flu</diagnosis>
  </patient>
  <patient id="p2" ward="5">
    <name>Bob</name>
    <ssn>444-55-6666</ssn>
    <diagnosis severity="low">cold</diagnosis>
  </patient>
  <stats>public statistics</stats>
</hospital>`

func newEngine(t *testing.T, ps ...*policy.Policy) (*Engine, *xmldoc.Document) {
	t.Helper()
	store := xmldoc.NewStore()
	doc, err := xmldoc.ParseString("records.xml", recordsXML)
	if err != nil {
		t.Fatal(err)
	}
	store.Put(doc)
	store.AddToSet("medical", doc.Name)
	base := policy.NewBase(nil)
	for _, p := range ps {
		base.MustAdd(p)
	}
	return NewEngine(store, base), doc
}

func permitAll(name, who string) *policy.Policy {
	return &policy.Policy{
		Name:    name,
		Subject: policy.SubjectSpec{IDs: []string{who}},
		Object:  policy.ObjectSpec{Doc: "records.xml"},
		Priv:    policy.Read,
		Sign:    policy.Permit,
		Prop:    policy.Cascade,
	}
}

func TestClosedSystemDeniesByDefault(t *testing.T) {
	e, _ := newEngine(t)
	s := &policy.Subject{ID: "alice"}
	if e.Check("records.xml", "/hospital", s, policy.Read) {
		t.Error("closed system granted access with no policies")
	}
	if v := e.View("records.xml", s, policy.Read); v != nil {
		t.Error("view nonempty with no policies")
	}
}

func TestCascadePermitWholeDoc(t *testing.T) {
	e, doc := newEngine(t, permitAll("p", "alice"))
	s := &policy.Subject{ID: "alice"}
	v := e.View("records.xml", s, policy.Read)
	if v == nil {
		t.Fatal("nil view")
	}
	if v.Canonical() != doc.Canonical() {
		t.Error("full-permit view differs from source")
	}
	if !e.Check("records.xml", "/hospital/patient/ssn", s, policy.Read) {
		t.Error("check denies under cascade permit")
	}
}

func TestDenyOverridesAtFinerGranularity(t *testing.T) {
	e, _ := newEngine(t,
		permitAll("permit-all", "alice"),
		&policy.Policy{
			Name:    "hide-ssn",
			Subject: policy.SubjectSpec{IDs: []string{"alice"}},
			Object:  policy.ObjectSpec{Doc: "records.xml", Path: "//ssn"},
			Priv:    policy.Read,
			Sign:    policy.Deny,
			Prop:    policy.Cascade,
		},
	)
	s := &policy.Subject{ID: "alice"}
	v := e.View("records.xml", s, policy.Read)
	if v == nil {
		t.Fatal("nil view")
	}
	if len(xmldoc.MustCompilePath("//ssn").Select(v)) != 0 {
		t.Error("ssn visible despite deny")
	}
	if len(xmldoc.MustCompilePath("//name").Select(v)) != 2 {
		t.Error("names should remain visible")
	}
	if e.Check("records.xml", "/hospital/patient/ssn", s, policy.Read) {
		t.Error("check permits denied path")
	}
	if !e.Check("records.xml", "/hospital/patient/name", s, policy.Read) {
		t.Error("check denies permitted path")
	}
}

func TestPermitAtFinerGranularityOverridesDeny(t *testing.T) {
	// Deny the whole document, but permit the public stats element.
	e, _ := newEngine(t,
		&policy.Policy{
			Name:    "deny-all",
			Subject: policy.SubjectSpec{IDs: []string{"bob"}},
			Object:  policy.ObjectSpec{Doc: "records.xml"},
			Priv:    policy.Read,
			Sign:    policy.Deny,
			Prop:    policy.Cascade,
		},
		&policy.Policy{
			Name:    "stats-public",
			Subject: policy.SubjectSpec{IDs: []string{"bob"}},
			Object:  policy.ObjectSpec{Doc: "records.xml", Path: "/hospital/stats"},
			Priv:    policy.Read,
			Sign:    policy.Permit,
			Prop:    policy.Cascade,
		},
	)
	s := &policy.Subject{ID: "bob"}
	v := e.View("records.xml", s, policy.Read)
	if v == nil {
		t.Fatal("nil view")
	}
	if got := len(xmldoc.MustCompilePath("/hospital/stats").Select(v)); got != 1 {
		t.Errorf("stats elements in view = %d, want 1", got)
	}
	if got := len(xmldoc.MustCompilePath("//patient").Select(v)); got != 0 {
		t.Errorf("patients leaked: %d", got)
	}
}

func TestContentDependentPolicy(t *testing.T) {
	// Ward-3 staff see only ward-3 patients.
	e, _ := newEngine(t, &policy.Policy{
		Name:    "ward3",
		Subject: policy.SubjectSpec{Roles: []string{"ward3-staff"}},
		Object:  policy.ObjectSpec{Doc: "records.xml", Path: "/hospital/patient[@ward='3']"},
		Priv:    policy.Read,
		Sign:    policy.Permit,
		Prop:    policy.Cascade,
	})
	s := &policy.Subject{ID: "nina", Roles: []string{"ward3-staff"}}
	v := e.View("records.xml", s, policy.Read)
	if v == nil {
		t.Fatal("nil view")
	}
	pats := xmldoc.MustCompilePath("//patient").Select(v)
	if len(pats) != 1 {
		t.Fatalf("patients = %d, want 1", len(pats))
	}
	if w, _ := pats[0].Attr("ward"); w != "3" {
		t.Errorf("wrong patient visible: ward=%s", w)
	}
}

func TestNoPropLimitsScope(t *testing.T) {
	e, _ := newEngine(t, &policy.Policy{
		Name:    "patient-shell",
		Subject: policy.SubjectSpec{IDs: []string{"carol"}},
		Object:  policy.ObjectSpec{Doc: "records.xml", Path: "//patient"},
		Priv:    policy.Read,
		Sign:    policy.Permit,
		Prop:    policy.NoProp,
	})
	s := &policy.Subject{ID: "carol"}
	v := e.View("records.xml", s, policy.Read)
	if v == nil {
		t.Fatal("nil view")
	}
	// Patient elements with attributes, but no children elements.
	if got := len(xmldoc.MustCompilePath("//patient").Select(v)); got != 2 {
		t.Errorf("patients = %d, want 2", got)
	}
	if got := len(xmldoc.MustCompilePath("//name").Select(v)); got != 0 {
		t.Errorf("names visible under NoProp: %d", got)
	}
	if got := len(xmldoc.MustCompilePath("//@ward").Select(v)); got != 2 {
		t.Errorf("ward attrs = %d, want 2 (attrs travel with element)", got)
	}
}

func TestFirstLevelPropagation(t *testing.T) {
	e, _ := newEngine(t, &policy.Policy{
		Name:    "first",
		Subject: policy.SubjectSpec{IDs: []string{"dan"}},
		Object:  policy.ObjectSpec{Doc: "records.xml", Path: "/hospital"},
		Priv:    policy.Read,
		Sign:    policy.Permit,
		Prop:    policy.FirstLevel,
	})
	s := &policy.Subject{ID: "dan"}
	v := e.View("records.xml", s, policy.Read)
	if v == nil {
		t.Fatal("nil view")
	}
	if got := len(xmldoc.MustCompilePath("//patient").Select(v)); got != 2 {
		t.Errorf("patients = %d, want 2", got)
	}
	// Grandchildren (name, ssn, ...) are not covered.
	if got := len(xmldoc.MustCompilePath("//name").Select(v)); got != 0 {
		t.Errorf("grandchildren visible under FirstLevel: %d", got)
	}
	// Stats text is a child's text: distance 2, included via element text rule.
	if got := xmldoc.MustCompilePath("/hospital/stats").Select(v); len(got) != 1 || got[0].Text() != "public statistics" {
		t.Errorf("stats text not carried with first-level element")
	}
}

func TestSetLevelPolicy(t *testing.T) {
	e, _ := newEngine(t, &policy.Policy{
		Name:    "set-read",
		Subject: policy.SubjectSpec{IDs: []string{"eve"}},
		Object:  policy.ObjectSpec{Set: "medical"},
		Priv:    policy.Read,
		Sign:    policy.Permit,
		Prop:    policy.Cascade,
	})
	s := &policy.Subject{ID: "eve"}
	if !e.Check("records.xml", "/hospital/patient/name", s, policy.Read) {
		t.Error("set-level policy not applied")
	}
	// Doc-level deny overrides set-level permit.
	e.Base().MustAdd(&policy.Policy{
		Name:    "doc-deny",
		Subject: policy.SubjectSpec{IDs: []string{"eve"}},
		Object:  policy.ObjectSpec{Doc: "records.xml"},
		Priv:    policy.Read,
		Sign:    policy.Deny,
		Prop:    policy.Cascade,
	})
	if e.Check("records.xml", "/hospital/patient/name", s, policy.Read) {
		t.Error("doc-level deny did not override set-level permit")
	}
}

func TestBrowseBlanksContent(t *testing.T) {
	e, _ := newEngine(t, &policy.Policy{
		Name:    "browse",
		Subject: policy.SubjectSpec{IDs: []string{"guest"}},
		Object:  policy.ObjectSpec{Doc: "records.xml"},
		Priv:    policy.Browse,
		Sign:    policy.Permit,
		Prop:    policy.Cascade,
	})
	s := &policy.Subject{ID: "guest"}
	v := e.View("records.xml", s, policy.Browse)
	if v == nil {
		t.Fatal("nil browse view")
	}
	if got := len(xmldoc.MustCompilePath("//ssn").Select(v)); got != 2 {
		t.Errorf("structure hidden in browse view: ssn elements = %d", got)
	}
	if c := v.Canonical(); strings.Contains(c, "111-22-3333") || strings.Contains(c, "Alice") {
		t.Errorf("browse view leaks content: %s", c)
	}
	// Browse privilege doesn't grant read.
	if rv := e.View("records.xml", s, policy.Read); rv != nil {
		t.Error("browse policy granted read view")
	}
}

func TestWriteSeparateFromRead(t *testing.T) {
	e, _ := newEngine(t, &policy.Policy{
		Name:    "w",
		Subject: policy.SubjectSpec{IDs: []string{"alice"}},
		Object:  policy.ObjectSpec{Doc: "records.xml"},
		Priv:    policy.Write,
		Sign:    policy.Permit,
		Prop:    policy.Cascade,
	})
	s := &policy.Subject{ID: "alice"}
	if !e.Check("records.xml", "/hospital", s, policy.Write) {
		t.Error("write denied")
	}
	if e.Check("records.xml", "/hospital", s, policy.Read) {
		t.Error("write policy granted read")
	}
}

func TestCheckUnknownDocAndPath(t *testing.T) {
	e, _ := newEngine(t, permitAll("p", "alice"))
	s := &policy.Subject{ID: "alice"}
	if e.Check("ghost.xml", "/hospital", s, policy.Read) {
		t.Error("unknown doc permitted")
	}
	if e.Check("records.xml", "//nonexistent", s, policy.Read) {
		t.Error("empty path match permitted")
	}
	if e.Check("records.xml", "not-a-path[", s, policy.Read) {
		t.Error("invalid path permitted")
	}
}

func TestConfigurations(t *testing.T) {
	e, doc := newEngine(t,
		&policy.Policy{
			Name:    "pub",
			Subject: policy.SubjectSpec{IDs: []string{"*"}},
			Object:  policy.ObjectSpec{Doc: "records.xml", Path: "/hospital/stats"},
			Priv:    policy.Read,
			Sign:    policy.Permit,
			Prop:    policy.Cascade,
		},
		&policy.Policy{
			Name:    "staff",
			Subject: policy.SubjectSpec{Roles: []string{"staff"}},
			Object:  policy.ObjectSpec{Doc: "records.xml", Path: "//patient"},
			Priv:    policy.Read,
			Sign:    policy.Permit,
			Prop:    policy.Cascade,
		},
		&policy.Policy{
			Name:    "hr",
			Subject: policy.SubjectSpec{Roles: []string{"hr"}},
			Object:  policy.ObjectSpec{Doc: "records.xml", Path: "//ssn"},
			Priv:    policy.Read,
			Sign:    policy.Permit,
			Prop:    policy.Cascade,
		},
	)
	pc := e.Configurations(doc)
	// Classes: unmarked, stats-only, patient-only, patient+hr(ssn).
	if pc.NumClasses != 4 {
		t.Fatalf("classes = %d, want 4", pc.NumClasses)
	}
	// All ssn subtree nodes share one class.
	ssns := xmldoc.MustCompilePath("//ssn").Select(doc)
	if pc.Class[ssns[0].ID()] != pc.Class[ssns[1].ID()] {
		t.Error("equal-policy nodes in different classes")
	}
	names := xmldoc.MustCompilePath("//name").Select(doc)
	if pc.Class[ssns[0].ID()] == pc.Class[names[0].ID()] {
		t.Error("different-policy nodes share a class")
	}
}

func TestMoreSpecificPathOverridesGenericDeny(t *testing.T) {
	// A blanket deny on //ssn is overridden by a precise permit on one
	// ward's ssn path — the path-precision part of conflict resolution.
	e, _ := newEngine(t,
		permitAll("all", "drho"),
		&policy.Policy{
			Name:    "ssn-hidden",
			Subject: policy.SubjectSpec{IDs: []string{"drho"}},
			Object:  policy.ObjectSpec{Doc: "records.xml", Path: "//ssn"},
			Priv:    policy.Read,
			Sign:    policy.Deny,
			Prop:    policy.Cascade,
		},
		&policy.Policy{
			Name:    "ward3-ssn",
			Subject: policy.SubjectSpec{IDs: []string{"drho"}},
			Object:  policy.ObjectSpec{Doc: "records.xml", Path: "/hospital/patient[@ward='3']/ssn"},
			Priv:    policy.Read,
			Sign:    policy.Permit,
			Prop:    policy.Cascade,
		},
	)
	s := &policy.Subject{ID: "drho"}
	if !e.Check("records.xml", "/hospital/patient[@ward='3']/ssn", s, policy.Read) {
		t.Error("specific permit lost to generic deny")
	}
	if e.Check("records.xml", "/hospital/patient[@ward='5']/ssn", s, policy.Read) {
		t.Error("generic deny not applied outside the specific permit")
	}
}

func TestLabelsVectorShape(t *testing.T) {
	e, doc := newEngine(t, permitAll("p", "alice"))
	labels := e.Labels(doc, &policy.Subject{ID: "alice"}, policy.Read)
	if len(labels) != doc.NumNodes() {
		t.Fatalf("labels len = %d, want %d", len(labels), doc.NumNodes())
	}
	for id, ok := range labels {
		if !ok {
			t.Fatalf("node %d denied under cascade permit", id)
		}
	}
}
