package accessctl

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"webdbsec/internal/policy"
	"webdbsec/internal/xmldoc"
)

// randomSetup builds a random document and a random policy base over it.
func randomSetup(seed int64) (*Engine, *xmldoc.Document, []*policy.Subject) {
	rng := rand.New(rand.NewSource(seed))
	b := xmldoc.NewBuilder("r.xml", "root")
	names := []string{"a", "b", "c", "d"}
	depth := 0
	for i := 0; i < 60; i++ {
		switch op := rng.Intn(4); {
		case op == 0 && depth > 0:
			b.End()
			depth--
		case op <= 1:
			b.Begin(names[rng.Intn(len(names))])
			depth++
		case op == 2:
			b.Text(fmt.Sprintf("t%d", rng.Intn(10)))
		default:
			b.Attrib("k", fmt.Sprintf("%d", rng.Intn(4)))
		}
	}
	doc := b.Freeze()
	store := xmldoc.NewStore()
	store.Put(doc)

	base := policy.NewBase(nil)
	paths := []string{"", "//a", "//b", "//c", "/root/a", "//a/b", "//d[@k='1']"}
	roles := []string{"r1", "r2", "r3"}
	nPol := 1 + rng.Intn(8)
	for i := 0; i < nPol; i++ {
		p := &policy.Policy{
			Name:    fmt.Sprintf("p%d", i),
			Subject: policy.SubjectSpec{Roles: []string{roles[rng.Intn(len(roles))]}},
			Object:  policy.ObjectSpec{Doc: "r.xml", Path: paths[rng.Intn(len(paths))]},
			Priv:    policy.Read,
			Sign:    policy.Sign(rng.Intn(2)),
			Prop:    policy.Propagation(rng.Intn(3)),
		}
		base.MustAdd(p)
	}
	subjects := []*policy.Subject{
		{ID: "u1", Roles: []string{"r1"}},
		{ID: "u2", Roles: []string{"r2", "r3"}},
		{ID: "u3"},
	}
	return NewEngine(store, base), doc, subjects
}

func TestQuickViewAgreesWithLabels(t *testing.T) {
	// Invariant: the computed view contains text/attribute content exactly
	// when Labels permits the corresponding node; no denied text or
	// attribute value ever appears in the view.
	f := func(seed int64) bool {
		eng, doc, subjects := randomSetup(seed)
		for _, s := range subjects {
			labels := eng.Labels(doc, s, policy.Read)
			v := eng.View(doc.Name, s, policy.Read)
			denied := map[string]int{}
			for _, n := range doc.Nodes() {
				if !labels[n.ID()] && n.Kind != xmldoc.KindElement && n.Value != "" {
					denied[n.Value]++
				}
				if labels[n.ID()] && n.Kind != xmldoc.KindElement && n.Value != "" {
					// Permitted values may legitimately equal denied ones;
					// remove from the denied set to avoid false alarms on
					// duplicates.
					if denied[n.Value] > 0 {
						denied[n.Value]--
					}
				}
			}
			if v == nil {
				continue
			}
			// Count value occurrences in the view; they must not exceed
			// the number of permitted occurrences in the source.
			permittedCount := map[string]int{}
			for _, n := range doc.Nodes() {
				if labels[n.ID()] && n.Kind != xmldoc.KindElement {
					permittedCount[n.Value]++
				}
			}
			ok := true
			v.Walk(func(n *xmldoc.Node) bool {
				if n.Kind == xmldoc.KindElement {
					return true
				}
				if permittedCount[n.Value] == 0 {
					ok = false
					return false
				}
				permittedCount[n.Value]--
				return true
			})
			if !ok {
				t.Logf("seed %d subject %s: view contains more of a value than permitted", seed, s.ID)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickDenyMonotone(t *testing.T) {
	// Adding a deny policy never enlarges any subject's permitted set.
	f := func(seed int64) bool {
		eng, doc, subjects := randomSetup(seed)
		countPermitted := func() map[string]int {
			out := map[string]int{}
			for _, s := range subjects {
				n := 0
				for _, ok := range eng.Labels(doc, s, policy.Read) {
					if ok {
						n++
					}
				}
				out[s.ID] = n
			}
			return out
		}
		before := countPermitted()
		eng.Base().MustAdd(&policy.Policy{
			Name:    "extra-deny",
			Subject: policy.SubjectSpec{Roles: []string{"r1", "r2", "r3"}},
			Object:  policy.ObjectSpec{Doc: "r.xml", Path: "//b"},
			Priv:    policy.Read,
			Sign:    policy.Deny,
			Prop:    policy.Cascade,
		})
		after := countPermitted()
		for id := range before {
			if after[id] > before[id] {
				t.Logf("seed %d: deny enlarged %s's set %d -> %d", seed, id, before[id], after[id])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickConfigurationsPartitionAllNodes(t *testing.T) {
	// The configuration partition covers every node with a valid class id,
	// and the number of distinct classes matches NumClasses.
	f := func(seed int64) bool {
		eng, doc, _ := randomSetup(seed)
		pc := eng.Configurations(doc)
		if len(pc.Class) != doc.NumNodes() {
			return false
		}
		seen := map[int]bool{}
		for _, c := range pc.Class {
			if c < 0 || c >= pc.NumClasses {
				return false
			}
			seen[c] = true
		}
		// Every class id below NumClasses need not be inhabited (class 0
		// may be empty when every node is covered), but none may exceed it.
		return len(seen) <= pc.NumClasses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
