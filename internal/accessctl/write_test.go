package accessctl

import (
	"strings"
	"testing"

	"webdbsec/internal/policy"
	"webdbsec/internal/xmldoc"
)

func writeEngine(t *testing.T) *Engine {
	t.Helper()
	e, _ := newEngine(t,
		&policy.Policy{
			Name:    "editors-write-diagnosis",
			Subject: policy.SubjectSpec{Roles: []string{"editor"}},
			Object:  policy.ObjectSpec{Doc: "records.xml", Path: "//diagnosis"},
			Priv:    policy.Write,
			Sign:    policy.Permit,
			Prop:    policy.Cascade,
		},
		&policy.Policy{
			Name:    "admins-write-all",
			Subject: policy.SubjectSpec{Roles: []string{"admin"}},
			Object:  policy.ObjectSpec{Doc: "records.xml"},
			Priv:    policy.Write,
			Sign:    policy.Permit,
			Prop:    policy.Cascade,
		},
	)
	return e
}

func TestUpdateTextAuthorized(t *testing.T) {
	e := writeEngine(t)
	editor := &policy.Subject{ID: "ed", Roles: []string{"editor"}}
	if err := e.UpdateText("records.xml", "/hospital/patient[@ward='3']/diagnosis", editor, "pneumonia"); err != nil {
		t.Fatal(err)
	}
	doc, _ := e.Store().Get("records.xml")
	got := xmldoc.MustCompilePath("/hospital/patient[@ward='3']/diagnosis").Select(doc)
	if len(got) != 1 || got[0].Text() != "pneumonia" {
		t.Errorf("diagnosis = %q", got[0].Text())
	}
	// Attributes survive the rewrite.
	if sev, _ := got[0].Attr("severity"); sev != "high" {
		t.Errorf("severity lost: %q", sev)
	}
	// Unrelated content untouched.
	if ssn := xmldoc.MustCompilePath("/hospital/patient[@ward='3']/ssn").Select(doc); len(ssn) != 1 || ssn[0].Text() != "111-22-3333" {
		t.Error("sibling content damaged")
	}
}

func TestUpdateTextDeniedOutsideGrant(t *testing.T) {
	e := writeEngine(t)
	editor := &policy.Subject{ID: "ed", Roles: []string{"editor"}}
	if err := e.UpdateText("records.xml", "//name", editor, "Mallory"); err == nil {
		t.Error("editor rewrote names without write privilege")
	}
	nobody := &policy.Subject{ID: "x"}
	if err := e.UpdateText("records.xml", "//diagnosis", nobody, "nope"); err == nil {
		t.Error("unprivileged write accepted")
	}
}

func TestAppendAndDelete(t *testing.T) {
	e := writeEngine(t)
	admin := &policy.Subject{ID: "root", Roles: []string{"admin"}}
	child := xmldoc.MustParseString("frag", `<note author="root">checked</note>`)
	if err := e.Append("records.xml", "/hospital/patient[@ward='5']", admin, child); err != nil {
		t.Fatal(err)
	}
	doc, _ := e.Store().Get("records.xml")
	notes := xmldoc.MustCompilePath("//note").Select(doc)
	if len(notes) != 1 || notes[0].Text() != "checked" {
		t.Fatalf("appended note = %v", notes)
	}
	if err := e.Delete("records.xml", "//note", admin); err != nil {
		t.Fatal(err)
	}
	doc, _ = e.Store().Get("records.xml")
	if len(xmldoc.MustCompilePath("//note").Select(doc)) != 0 {
		t.Error("note survives delete")
	}
}

func TestDeleteGuards(t *testing.T) {
	e := writeEngine(t)
	admin := &policy.Subject{ID: "root", Roles: []string{"admin"}}
	if err := e.Delete("records.xml", "/hospital", admin); err == nil {
		t.Error("root deletion accepted")
	}
	editor := &policy.Subject{ID: "ed", Roles: []string{"editor"}}
	if err := e.Delete("records.xml", "//patient", editor); err == nil {
		t.Error("editor deleted outside write grant")
	}
	if err := e.Delete("ghost.xml", "//x", admin); err == nil {
		t.Error("unknown doc accepted")
	}
	if err := e.Delete("records.xml", "//nomatch", admin); err == nil {
		t.Error("empty match accepted")
	}
	if err := e.Delete("records.xml", "bad[path", admin); err == nil {
		t.Error("bad path accepted")
	}
}

func TestWriteDoesNotGrantRead(t *testing.T) {
	e := writeEngine(t)
	editor := &policy.Subject{ID: "ed", Roles: []string{"editor"}}
	if v := e.View("records.xml", editor, policy.Read); v != nil {
		t.Error("write policy granted a read view")
	}
}

func TestRebuildPreservesDocument(t *testing.T) {
	e := writeEngine(t)
	doc, _ := e.Store().Get("records.xml")
	before := doc.Canonical()
	admin := &policy.Subject{ID: "root", Roles: []string{"admin"}}
	// An update that rewrites a diagnosis to its existing value must keep
	// everything else byte-identical.
	cur := xmldoc.MustCompilePath("/hospital/patient[@ward='5']/diagnosis").Select(doc)[0].Text()
	if err := e.UpdateText("records.xml", "/hospital/patient[@ward='5']/diagnosis", admin, cur); err != nil {
		t.Fatal(err)
	}
	after, _ := e.Store().Get("records.xml")
	if !strings.EqualFold(before, after.Canonical()) {
		t.Errorf("no-op rewrite changed document:\n before %s\n after  %s", before, after.Canonical())
	}
}
