package secchan

import (
	"crypto/ed25519"
	"net"
	"testing"
	"time"
)

func TestHandshakeAgainstClosedPeer(t *testing.T) {
	pub, priv, _ := ed25519.GenerateKey(nil)
	// Client side: the server vanishes before replying.
	cConn, sConn := net.Pipe()
	go func() {
		buf := make([]byte, 32)
		sConn.Read(buf) // consume client key
		sConn.Close()   // die before answering
	}()
	if _, err := Client(cConn, pub); err == nil {
		t.Error("client handshake succeeded against dead server")
	}
	// Server side: the client vanishes immediately.
	cConn2, sConn2 := net.Pipe()
	cConn2.Close()
	if _, err := Server(sConn2, priv); err == nil {
		t.Error("server handshake succeeded against dead client")
	}
}

func TestReceiveAfterPeerClose(t *testing.T) {
	client, server := pair(t)
	go func() {
		client.Send([]byte("last"))
		client.Close()
	}()
	if _, err := server.Receive(); err != nil {
		t.Fatalf("first receive: %v", err)
	}
	if _, err := server.Receive(); err == nil {
		t.Error("receive after close succeeded")
	}
}

func TestTruncatedRecordLengthHeader(t *testing.T) {
	pub, priv, _ := ed25519.GenerateKey(nil)
	cConn, sConn := net.Pipe()
	srvCh := make(chan *Channel, 1)
	go func() {
		ch, err := Server(sConn, priv)
		if err == nil {
			srvCh <- ch
		}
	}()
	client, err := Client(cConn, pub)
	if err != nil {
		t.Fatal(err)
	}
	server := <-srvCh
	// Write a huge claimed length then close: Receive must error, not hang
	// or allocate unboundedly.
	go func() {
		cConn.Write([]byte{0xff, 0xff, 0xff, 0xff})
		cConn.Close()
	}()
	done := make(chan error, 1)
	go func() {
		_, err := server.Receive()
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("oversized length header accepted")
		}
	case <-time.After(2 * time.Second):
		t.Error("Receive hung on oversized length header")
	}
	_ = client
}

func TestGarbageInsteadOfHandshake(t *testing.T) {
	pub, _, _ := ed25519.GenerateKey(nil)
	cConn, sConn := net.Pipe()
	go func() {
		buf := make([]byte, 32)
		sConn.Read(buf)
		// Reply with a non-curve-point server key + garbage signature.
		junk := make([]byte, 32+ed25519.SignatureSize)
		sConn.Write(junk)
	}()
	if _, err := Client(cConn, pub); err == nil {
		t.Error("client accepted garbage handshake")
	}
}
