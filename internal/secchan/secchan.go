// Package secchan implements the secure transport the paper's layered
// semantic-web stack rests on (§5): "consider the lowest layer. One needs
// secure TCP/IP, secure sockets, and secure HTTP ... One needs end-to-end
// security. That is, one cannot just have secure TCP/IP built on untrusted
// communication layers."
//
// The channel is a compact TLS-like construction from stdlib crypto:
// X25519 ephemeral key agreement authenticated by the server's Ed25519
// identity signature over the handshake transcript, SHA-256-based key
// derivation into two directional AES-256-GCM keys, and a strictly
// monotone record sequence number that doubles as the GCM nonce — so
// replayed, reordered or dropped records are rejected.
package secchan

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"
)

// MaxRecord is the maximum payload size of one record.
const MaxRecord = 1 << 24

// defaultCloseLinger bounds the best-effort close-notify write.
const defaultCloseLinger = 50 * time.Millisecond

// Config bounds a channel's blocking operations so a stalled or
// adversarial peer trips a deadline instead of wedging the endpoint.
// Zero fields impose no bound (the pre-hardening behaviour).
type Config struct {
	// HandshakeTimeout bounds the whole handshake.
	HandshakeTimeout time.Duration
	// ReadTimeout bounds each Receive.
	ReadTimeout time.Duration
	// WriteTimeout bounds each Send.
	WriteTimeout time.Duration
	// CloseLinger bounds the close-notify write during Close
	// (default 50ms).
	CloseLinger time.Duration
}

// Channel is an established secure channel. It is NOT safe for concurrent
// use by multiple goroutines on the same direction; use one writer and one
// reader.
type Channel struct {
	conn    net.Conn
	cfg     Config
	sendKey cipher.AEAD
	recvKey cipher.AEAD
	sendSeq uint64
	recvSeq uint64
	closed  atomic.Bool
}

// Server performs the responder side of the handshake with no deadlines;
// see ServerConfig.
//
// seclint:exempt conn-level API; cancellation is the net.Conn deadline armed via Config, not a ctx
func Server(conn net.Conn, identity ed25519.PrivateKey) (*Channel, error) {
	return ServerConfig(conn, identity, Config{})
}

// ServerConfig performs the responder side of the handshake: it receives
// the client's ephemeral public key, replies with its own plus an identity
// signature over the transcript, and derives the record keys. The
// handshake is bounded by cfg.HandshakeTimeout.
//
// seclint:exempt conn-level API; cfg.HandshakeTimeout arms the net.Conn deadline in place of a ctx
func ServerConfig(conn net.Conn, identity ed25519.PrivateKey, cfg Config) (*Channel, error) {
	restore, err := handshakeDeadline(conn, cfg)
	if err != nil {
		return nil, err
	}
	ch, err := serverHandshake(conn, identity, cfg)
	if err != nil {
		return nil, err
	}
	if err := restore(); err != nil {
		return nil, fmt.Errorf("secchan: clear handshake deadline: %w", err)
	}
	return ch, nil
}

// handshakeDeadline arms the handshake deadline and returns the function
// that clears it once the handshake succeeded.
func handshakeDeadline(conn net.Conn, cfg Config) (func() error, error) {
	if cfg.HandshakeTimeout <= 0 {
		return func() error { return nil }, nil
	}
	if err := conn.SetDeadline(time.Now().Add(cfg.HandshakeTimeout)); err != nil {
		return nil, fmt.Errorf("secchan: arm handshake deadline: %w", err)
	}
	return func() error { return conn.SetDeadline(time.Time{}) }, nil
}

func serverHandshake(conn net.Conn, identity ed25519.PrivateKey, cfg Config) (*Channel, error) {
	curve := ecdh.X25519()
	priv, err := curve.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("secchan: keygen: %w", err)
	}
	clientPub := make([]byte, 32)
	if _, err := io.ReadFull(conn, clientPub); err != nil {
		return nil, fmt.Errorf("secchan: read client key: %w", err)
	}
	remote, err := curve.NewPublicKey(clientPub)
	if err != nil {
		return nil, fmt.Errorf("secchan: client key: %w", err)
	}
	serverPub := priv.PublicKey().Bytes()
	transcript := transcriptHash(clientPub, serverPub)
	sig := ed25519.Sign(identity, transcript)
	if _, err := conn.Write(serverPub); err != nil {
		return nil, fmt.Errorf("secchan: write server key: %w", err)
	}
	if _, err := conn.Write(sig); err != nil {
		return nil, fmt.Errorf("secchan: write signature: %w", err)
	}
	secret, err := priv.ECDH(remote)
	if err != nil {
		return nil, fmt.Errorf("secchan: ecdh: %w", err)
	}
	return newChannel(conn, cfg, secret, transcript, false)
}

// Client performs the initiator side with no deadlines; see ClientConfig.
//
// seclint:exempt conn-level API; cancellation is the net.Conn deadline armed via Config, not a ctx
func Client(conn net.Conn, serverID ed25519.PublicKey) (*Channel, error) {
	return ClientConfig(conn, serverID, Config{})
}

// ClientConfig performs the initiator side, verifying the server's
// identity signature against serverID before trusting the channel. The
// handshake is bounded by cfg.HandshakeTimeout.
//
// seclint:exempt conn-level API; cfg.HandshakeTimeout arms the net.Conn deadline in place of a ctx
func ClientConfig(conn net.Conn, serverID ed25519.PublicKey, cfg Config) (*Channel, error) {
	restore, err := handshakeDeadline(conn, cfg)
	if err != nil {
		return nil, err
	}
	ch, err := clientHandshake(conn, serverID, cfg)
	if err != nil {
		return nil, err
	}
	if err := restore(); err != nil {
		return nil, fmt.Errorf("secchan: clear handshake deadline: %w", err)
	}
	return ch, nil
}

func clientHandshake(conn net.Conn, serverID ed25519.PublicKey, cfg Config) (*Channel, error) {
	curve := ecdh.X25519()
	priv, err := curve.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("secchan: keygen: %w", err)
	}
	clientPub := priv.PublicKey().Bytes()
	if _, err := conn.Write(clientPub); err != nil {
		return nil, fmt.Errorf("secchan: write client key: %w", err)
	}
	serverPub := make([]byte, 32)
	if _, err := io.ReadFull(conn, serverPub); err != nil {
		return nil, fmt.Errorf("secchan: read server key: %w", err)
	}
	sig := make([]byte, ed25519.SignatureSize)
	if _, err := io.ReadFull(conn, sig); err != nil {
		return nil, fmt.Errorf("secchan: read signature: %w", err)
	}
	transcript := transcriptHash(clientPub, serverPub)
	if !ed25519.Verify(serverID, transcript, sig) {
		return nil, fmt.Errorf("secchan: server identity verification failed")
	}
	remote, err := curve.NewPublicKey(serverPub)
	if err != nil {
		return nil, fmt.Errorf("secchan: server key: %w", err)
	}
	secret, err := priv.ECDH(remote)
	if err != nil {
		return nil, fmt.Errorf("secchan: ecdh: %w", err)
	}
	return newChannel(conn, cfg, secret, transcript, true)
}

func transcriptHash(clientPub, serverPub []byte) []byte {
	h := sha256.New()
	h.Write([]byte("secchan-v1"))
	h.Write(clientPub)
	h.Write(serverPub)
	return h.Sum(nil)
}

// deriveKey expands the shared secret into a directional key.
func deriveKey(secret, transcript []byte, label string) ([]byte, error) {
	h := sha256.New()
	h.Write(secret)
	h.Write(transcript)
	h.Write([]byte(label))
	return h.Sum(nil), nil
}

func newChannel(conn net.Conn, cfg Config, secret, transcript []byte, isClient bool) (*Channel, error) {
	c2s, err := deriveKey(secret, transcript, "client-to-server")
	if err != nil {
		return nil, err
	}
	s2c, err := deriveKey(secret, transcript, "server-to-client")
	if err != nil {
		return nil, err
	}
	mk := func(key []byte) (cipher.AEAD, error) {
		block, err := aes.NewCipher(key)
		if err != nil {
			return nil, err
		}
		return cipher.NewGCM(block)
	}
	c2sAEAD, err := mk(c2s)
	if err != nil {
		return nil, fmt.Errorf("secchan: %w", err)
	}
	s2cAEAD, err := mk(s2c)
	if err != nil {
		return nil, fmt.Errorf("secchan: %w", err)
	}
	ch := &Channel{conn: conn, cfg: cfg}
	if isClient {
		ch.sendKey, ch.recvKey = c2sAEAD, s2cAEAD
	} else {
		ch.sendKey, ch.recvKey = s2cAEAD, c2sAEAD
	}
	return ch, nil
}

// nonce builds the 12-byte GCM nonce from the record sequence number.
func nonce(seq uint64) []byte {
	n := make([]byte, 12)
	binary.BigEndian.PutUint64(n[4:], seq)
	return n
}

// Send encrypts and writes one record, bounded by the configured write
// timeout. Empty payloads are reserved for the close-notify record.
//
// seclint:exempt record-level API; cfg.WriteTimeout arms the net.Conn write deadline in place of a ctx
func (c *Channel) Send(payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("secchan: empty record reserved for close-notify")
	}
	if len(payload) > MaxRecord {
		return fmt.Errorf("secchan: record too large (%d bytes)", len(payload))
	}
	if c.closed.Load() {
		return fmt.Errorf("secchan: send on closed channel")
	}
	if c.cfg.WriteTimeout > 0 {
		if err := c.conn.SetWriteDeadline(time.Now().Add(c.cfg.WriteTimeout)); err != nil {
			return fmt.Errorf("secchan: send: %w", err)
		}
	}
	return c.sendRecord(payload)
}

// sendRecord seals and writes payload under the next sequence number.
func (c *Channel) sendRecord(payload []byte) error {
	seq := c.sendSeq
	c.sendSeq++
	var seqBuf [8]byte
	binary.BigEndian.PutUint64(seqBuf[:], seq)
	ct := c.sendKey.Seal(nil, nonce(seq), payload, seqBuf[:])
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(ct)))
	if _, err := c.conn.Write(lenBuf[:]); err != nil {
		return fmt.Errorf("secchan: send: %w", err)
	}
	if _, err := c.conn.Write(ct); err != nil {
		return fmt.Errorf("secchan: send: %w", err)
	}
	return nil
}

// Receive reads and decrypts one record, enforcing the sequence number: a
// replayed, reordered or injected record fails authentication. A stalled
// peer trips the configured read timeout instead of hanging the reader.
// Receive returns io.EOF on the peer's authenticated close-notify — a
// truncating attacker cannot forge a clean EOF, it can only produce an
// error.
//
// seclint:exempt record-level API; cfg.ReadTimeout arms the net.Conn read deadline in place of a ctx
// seclint:source
func (c *Channel) Receive() ([]byte, error) {
	if c.cfg.ReadTimeout > 0 {
		if err := c.conn.SetReadDeadline(time.Now().Add(c.cfg.ReadTimeout)); err != nil {
			return nil, fmt.Errorf("secchan: receive: %w", err)
		}
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(c.conn, lenBuf[:]); err != nil {
		return nil, fmt.Errorf("secchan: receive: %w", err)
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > MaxRecord+64 {
		return nil, fmt.Errorf("secchan: oversized record (%d bytes)", n)
	}
	ct := make([]byte, n)
	if _, err := io.ReadFull(c.conn, ct); err != nil {
		return nil, fmt.Errorf("secchan: receive: %w", err)
	}
	seq := c.recvSeq
	var seqBuf [8]byte
	binary.BigEndian.PutUint64(seqBuf[:], seq)
	pt, err := c.recvKey.Open(nil, nonce(seq), ct, seqBuf[:])
	if err != nil {
		return nil, fmt.Errorf("secchan: record %d: authentication failed", seq)
	}
	c.recvSeq++
	if len(pt) == 0 {
		// Authenticated close-notify: clean end of stream.
		return nil, io.EOF
	}
	return pt, nil
}

// Close gracefully closes the channel: it makes a bounded best-effort
// attempt to send the authenticated close-notify record (so the peer's
// Receive ends in io.EOF rather than an ambiguous transport error), then
// closes the underlying connection. Safe to call more than once.
//
// seclint:exempt close is already bounded by CloseLinger; a ctx cannot make it block longer
func (c *Channel) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return c.conn.Close()
	}
	linger := c.cfg.CloseLinger
	if linger <= 0 {
		linger = defaultCloseLinger
	}
	// Best effort: a wedged peer must not turn Close into a hang.
	if err := c.conn.SetWriteDeadline(time.Now().Add(linger)); err == nil {
		_ = c.sendRecord(nil)
	}
	return c.conn.Close()
}

// PlainChannel is the no-security baseline used by experiment E11: the
// same length-prefixed framing with no confidentiality or integrity.
type PlainChannel struct {
	conn net.Conn
}

// NewPlainChannel wraps a connection without any protection.
func NewPlainChannel(conn net.Conn) *PlainChannel { return &PlainChannel{conn: conn} }

// Send writes one frame.
//
// seclint:exempt experiment-only baseline mirroring Channel.Send's conn-level contract
func (c *PlainChannel) Send(payload []byte) error {
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(payload)))
	if _, err := c.conn.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err := c.conn.Write(payload)
	return err
}

// Receive reads one frame.
//
// seclint:exempt experiment-only baseline mirroring Channel.Receive's conn-level contract
// seclint:source
func (c *PlainChannel) Receive() ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(c.conn, lenBuf[:]); err != nil {
		return nil, err
	}
	buf := make([]byte, binary.BigEndian.Uint32(lenBuf[:]))
	if _, err := io.ReadFull(c.conn, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Close closes the underlying connection.
//
// seclint:exempt connection teardown does not block on the peer
func (c *PlainChannel) Close() error { return c.conn.Close() }
