package secchan

import (
	"crypto/ed25519"
	"fmt"
	"io"
	"net"
	"testing"
	"time"
)

// Replication links redial constantly, and a crashing peer can die at any
// byte of the handshake. These tests pin the contract for that window:
// the survivor gets a handshake ERROR — never a half-authenticated
// channel, and never the bare io.EOF that signals an authenticated
// close-notify (which only exists after the handshake) — and the failure
// arrives bounded in time.

// TestServerDiesMidHandshake kills the responder after every interesting
// prefix of its 96-byte flight (32-byte ephemeral key + 64-byte identity
// signature).
func TestServerDiesMidHandshake(t *testing.T) {
	pub, _, err := ed25519.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 31, 32, 33, 95} {
		t.Run(fmt.Sprintf("after-%d-bytes", n), func(t *testing.T) {
			cConn, sConn := net.Pipe()
			defer cConn.Close()
			go func() {
				buf := make([]byte, 32)
				io.ReadFull(sConn, buf) // consume the client flight
				// The content is irrelevant — the death is the fault. A
				// signature over garbage would be rejected anyway; here the
				// peer never even finishes the flight.
				sConn.Write(make([]byte, n))
				sConn.Close()
			}()
			start := time.Now()
			ch, err := ClientConfig(cConn, pub, Config{HandshakeTimeout: 2 * time.Second})
			if err == nil {
				ch.Close()
				t.Fatal("handshake succeeded against a peer that died mid-flight")
			}
			if err == io.EOF {
				t.Fatal("mid-handshake death surfaced as the clean close-notify signal")
			}
			if elapsed := time.Since(start); elapsed > 10*time.Second {
				t.Fatalf("failure took %v, want bounded by the handshake timeout", elapsed)
			}
		})
	}
}

// TestClientDiesMidHandshake kills the initiator partway through its
// 32-byte key flight; the responder must reject, not hang or accept.
func TestClientDiesMidHandshake(t *testing.T) {
	_, priv, err := ed25519.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 16, 31} {
		t.Run(fmt.Sprintf("after-%d-bytes", n), func(t *testing.T) {
			cConn, sConn := net.Pipe()
			defer sConn.Close()
			go func() {
				cConn.Write(make([]byte, n))
				cConn.Close()
			}()
			ch, err := ServerConfig(sConn, priv, Config{HandshakeTimeout: 2 * time.Second})
			if err == nil {
				ch.Close()
				t.Fatal("handshake succeeded against a client that died mid-flight")
			}
			if err == io.EOF {
				t.Fatal("mid-handshake death surfaced as the clean close-notify signal")
			}
		})
	}
}

// TestCloseBeforeHandshakeCompletesOnDialSide: the redial loop closes
// in-flight connections when the node shuts down. Close on the raw conn
// must abort a blocked handshake promptly.
func TestCloseBeforeHandshakeCompletesOnDialSide(t *testing.T) {
	pub, _, err := ed25519.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	cConn, sConn := net.Pipe()
	defer sConn.Close()
	done := make(chan error, 1)
	go func() {
		_, err := ClientConfig(cConn, pub, Config{})
		done <- err
	}()
	// The server never answers; the dialer gives up and tears down.
	time.Sleep(20 * time.Millisecond)
	cConn.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("handshake succeeded on a closed conn")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("handshake did not abort after conn close")
	}
}
