package secchan

import (
	"bytes"
	"crypto/ed25519"
	"net"
	"strings"
	"testing"
)

// pair establishes a channel over net.Pipe, returning client and server
// ends.
func pair(t *testing.T) (*Channel, *Channel) {
	t.Helper()
	pub, priv, err := ed25519.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	cConn, sConn := net.Pipe()
	type res struct {
		ch  *Channel
		err error
	}
	srvCh := make(chan res, 1)
	go func() {
		ch, err := Server(sConn, priv)
		srvCh <- res{ch, err}
	}()
	client, err := Client(cConn, pub)
	if err != nil {
		t.Fatal(err)
	}
	sr := <-srvCh
	if sr.err != nil {
		t.Fatal(sr.err)
	}
	t.Cleanup(func() { client.Close(); sr.ch.Close() })
	return client, sr.ch
}

func TestRoundTripBothDirections(t *testing.T) {
	client, server := pair(t)
	done := make(chan error, 1)
	go func() {
		msg, err := server.Receive()
		if err != nil {
			done <- err
			return
		}
		if string(msg) != "ping" {
			done <- errString("server got " + string(msg))
			return
		}
		done <- server.Send([]byte("pong"))
	}()
	if err := client.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	reply, err := client.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "pong" {
		t.Errorf("reply = %q", reply)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

type errString string

func (e errString) Error() string { return string(e) }

func TestMultipleRecordsInOrder(t *testing.T) {
	client, server := pair(t)
	msgs := []string{"one", "two", "three", "four"}
	go func() {
		for _, m := range msgs {
			client.Send([]byte(m))
		}
	}()
	for _, want := range msgs {
		got, err := server.Receive()
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != want {
			t.Errorf("got %q, want %q", got, want)
		}
	}
}

func TestWrongServerIdentityRejected(t *testing.T) {
	_, realPriv, _ := ed25519.GenerateKey(nil)
	wrongPub, _, _ := ed25519.GenerateKey(nil)
	cConn, sConn := net.Pipe()
	go Server(sConn, realPriv)
	if _, err := Client(cConn, wrongPub); err == nil {
		t.Fatal("client accepted wrong server identity (MITM possible)")
	} else if !strings.Contains(err.Error(), "identity") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestCiphertextNotPlaintext(t *testing.T) {
	pub, priv, _ := ed25519.GenerateKey(nil)
	cConn, sConn := net.Pipe()
	// tap records what the client writes to the wire.
	var tap bytes.Buffer
	tapConn := &tappedConn{Conn: cConn, tap: &tap}
	go func() {
		ch, err := Server(sConn, priv)
		if err != nil {
			return
		}
		ch.Receive()
	}()
	ch, err := Client(tapConn, pub)
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("attack at dawn, very secret")
	if err := ch.Send(secret); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(tap.Bytes(), secret) {
		t.Error("plaintext visible on the wire")
	}
}

type tappedConn struct {
	net.Conn
	tap *bytes.Buffer
}

func (c *tappedConn) Write(p []byte) (int, error) {
	c.tap.Write(p)
	return c.Conn.Write(p)
}

func TestReplayRejected(t *testing.T) {
	pub, priv, _ := ed25519.GenerateKey(nil)
	cConn, sConn := net.Pipe()
	var wire bytes.Buffer
	tapConn := &tappedConn{Conn: cConn, tap: &wire}

	srvCh := make(chan *Channel, 1)
	go func() {
		ch, err := Server(sConn, priv)
		if err == nil {
			srvCh <- ch
		}
	}()
	client, err := Client(tapConn, pub)
	if err != nil {
		t.Fatal(err)
	}
	server := <-srvCh
	wire.Reset() // drop handshake bytes; record only the data record

	go client.Send([]byte("transfer $100"))
	if _, err := server.Receive(); err != nil {
		t.Fatal(err)
	}
	// Replay the captured record verbatim.
	go func() {
		sConnW := client // silence unused warnings; replay goes to server's conn
		_ = sConnW
		cConn.Write(wire.Bytes())
	}()
	if _, err := server.Receive(); err == nil {
		t.Fatal("replayed record accepted")
	}
}

func TestTamperedRecordRejected(t *testing.T) {
	pub, priv, _ := ed25519.GenerateKey(nil)
	cConn, sConn := net.Pipe()
	srvCh := make(chan *Channel, 1)
	go func() {
		ch, err := Server(sConn, priv)
		if err == nil {
			srvCh <- ch
		}
	}()
	flip := &flippingConn{Conn: cConn}
	client, err := Client(flip, pub)
	if err != nil {
		t.Fatal(err)
	}
	server := <-srvCh
	flip.active = true
	go client.Send([]byte("hello"))
	if _, err := server.Receive(); err == nil {
		t.Fatal("tampered record accepted")
	}
}

// flippingConn flips a bit in the last byte of every write once active.
type flippingConn struct {
	net.Conn
	active bool
}

func (c *flippingConn) Write(p []byte) (int, error) {
	if c.active && len(p) > 4 {
		q := append([]byte(nil), p...)
		q[len(q)-1] ^= 0x01
		return c.Conn.Write(q)
	}
	return c.Conn.Write(p)
}

func TestOversizedRecordRejected(t *testing.T) {
	client, _ := pair(t)
	big := make([]byte, MaxRecord+1)
	if err := client.Send(big); err == nil {
		t.Error("oversized record accepted")
	}
}

func TestPlainChannelRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	pa, pb := NewPlainChannel(a), NewPlainChannel(b)
	defer pa.Close()
	defer pb.Close()
	go pa.Send([]byte("clear"))
	got, err := pb.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "clear" {
		t.Errorf("got %q", got)
	}
}

func TestLargePayload(t *testing.T) {
	client, server := pair(t)
	payload := bytes.Repeat([]byte("x"), 1<<16)
	go client.Send(payload)
	got, err := server.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("large payload corrupted")
	}
}
