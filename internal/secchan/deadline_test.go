package secchan

import (
	"crypto/ed25519"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"webdbsec/internal/resilience"
	"webdbsec/internal/resilience/faultinject"
)

// pairConfig establishes a channel over net.Pipe with per-side configs.
func pairConfig(t *testing.T, clientCfg, serverCfg Config) (*Channel, *Channel) {
	t.Helper()
	pub, priv, err := ed25519.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	cConn, sConn := net.Pipe()
	type res struct {
		ch  *Channel
		err error
	}
	srvCh := make(chan res, 1)
	go func() {
		ch, err := ServerConfig(sConn, priv, serverCfg)
		srvCh <- res{ch, err}
	}()
	client, err := ClientConfig(cConn, pub, clientCfg)
	if err != nil {
		t.Fatal(err)
	}
	sr := <-srvCh
	if sr.err != nil {
		t.Fatal(sr.err)
	}
	t.Cleanup(func() { client.Close(); sr.ch.Close() })
	return client, sr.ch
}

// TestStalledPeerTripsReadDeadline is the acceptance scenario: a peer
// that goes silent must trip the read deadline, not hang the reader
// forever.
func TestStalledPeerTripsReadDeadline(t *testing.T) {
	client, _ := pairConfig(t, Config{ReadTimeout: 50 * time.Millisecond}, Config{})
	start := time.Now()
	_, err := client.Receive()
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Receive from stalled peer succeeded")
	}
	if !resilience.IsTimeout(err) {
		t.Fatalf("error %v is not a timeout", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("deadline tripped after %v, want ~50ms", elapsed)
	}
}

// TestStalledPeerTripsWriteDeadline: a peer that stops draining must trip
// the write deadline.
func TestStalledPeerTripsWriteDeadline(t *testing.T) {
	client, _ := pairConfig(t, Config{WriteTimeout: 50 * time.Millisecond}, Config{})
	// The server never reads; net.Pipe is unbuffered, so the write blocks
	// until the deadline.
	err := client.Send([]byte("into the void"))
	if err == nil {
		t.Fatal("Send to stalled peer succeeded")
	}
	if !resilience.IsTimeout(err) {
		t.Fatalf("error %v is not a timeout", err)
	}
}

// TestHandshakeTimeout: a peer that accepts the connection but never
// answers the handshake must not wedge the initiator.
func TestHandshakeTimeout(t *testing.T) {
	pub, _, _ := ed25519.GenerateKey(nil)
	cConn, sConn := net.Pipe()
	defer sConn.Close()
	defer cConn.Close()
	// The "server" never reads nor writes.
	start := time.Now()
	_, err := ClientConfig(cConn, pub, Config{HandshakeTimeout: 50 * time.Millisecond})
	if err == nil {
		t.Fatal("handshake against mute peer succeeded")
	}
	if !resilience.IsTimeout(err) {
		t.Fatalf("error %v is not a timeout", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("handshake timeout did not bound the handshake")
	}
}

// TestGracefulCloseNotify: Close sends an authenticated close-notify, so
// the peer's Receive ends in a clean io.EOF rather than a transport
// error.
func TestGracefulCloseNotify(t *testing.T) {
	client, server := pairConfig(t, Config{}, Config{})
	go client.Close()
	_, err := server.Receive()
	if !errors.Is(err, io.EOF) {
		t.Fatalf("Receive after graceful close = %v, want io.EOF", err)
	}
}

// TestTruncationIsNotCleanEOF: an attacker cutting the connection cannot
// forge the clean end-of-stream signal — only the authenticated
// close-notify produces io.EOF.
func TestTruncationIsNotCleanEOF(t *testing.T) {
	client, server := pairConfig(t, Config{}, Config{})
	// Cut the transport out from under the client without close-notify.
	go client.conn.Close()
	_, err := server.Receive()
	if err == nil {
		t.Fatal("Receive after truncation succeeded")
	}
	if err == io.EOF {
		t.Fatal("truncation produced a clean EOF: close-notify is forgeable")
	}
}

// TestSendAfterCloseRejected: the channel refuses to encrypt on a closed
// channel, and empty records are reserved for close-notify.
func TestSendAfterCloseRejected(t *testing.T) {
	client, _ := pairConfig(t, Config{}, Config{})
	if err := client.Send(nil); err == nil {
		t.Error("empty record accepted")
	}
	client.Close()
	if err := client.Send([]byte("late")); err == nil {
		t.Error("send after close accepted")
	}
}

// TestCorruptingLinkFailsAuthentication drives the fault-injection
// harness against a secchan conn: a link that flips bits must surface as
// an authentication failure, never as silently wrong plaintext.
func TestCorruptingLinkFailsAuthentication(t *testing.T) {
	pub, priv, _ := ed25519.GenerateKey(nil)
	cConn, sConn := net.Pipe()
	srvCh := make(chan *Channel, 1)
	go func() {
		ch, err := Server(sConn, priv)
		if err == nil {
			srvCh <- ch
		}
	}()
	// The client writes once during the handshake (its ephemeral key) and
	// twice per record (length prefix, ciphertext). Leave the handshake
	// and the length prefix clean and corrupt the ciphertext, so the
	// record arrives whole but tampered.
	inj := faultinject.New(faultinject.Steps(
		faultinject.None,    // handshake: client ephemeral key
		faultinject.None,    // record length prefix
		faultinject.Corrupt, // ciphertext
	))
	client, err := Client(faultinject.WrapConn(cConn, inj), pub)
	if err != nil {
		t.Fatal(err)
	}
	server := <-srvCh
	go client.Send([]byte("integrity matters"))
	if _, err := server.Receive(); err == nil {
		t.Fatal("corrupted record accepted")
	}
}

// TestDroppingLinkTripsDeadline: a link that drops records makes the
// reader trip its deadline — bounded, not wedged.
func TestDroppingLinkTripsDeadline(t *testing.T) {
	pub, priv, _ := ed25519.GenerateKey(nil)
	cConn, sConn := net.Pipe()
	srvCh := make(chan *Channel, 1)
	go func() {
		ch, err := ServerConfig(sConn, priv, Config{ReadTimeout: 50 * time.Millisecond})
		if err == nil {
			srvCh <- ch
		}
	}()
	inj := faultinject.New(faultinject.Steps(
		faultinject.None,                   // handshake clean
		faultinject.Drop, faultinject.Drop, // the data record vanishes
	))
	client, err := Client(faultinject.WrapConn(cConn, inj), pub)
	if err != nil {
		t.Fatal(err)
	}
	server := <-srvCh
	if err := client.Send([]byte("lost")); err != nil {
		t.Fatal(err)
	}
	_, err = server.Receive()
	if err == nil {
		t.Fatal("Receive of dropped record succeeded")
	}
	if !resilience.IsTimeout(err) {
		t.Fatalf("error %v is not a timeout", err)
	}
}
