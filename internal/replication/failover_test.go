package replication_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"webdbsec/internal/accessctl"
	"webdbsec/internal/audit"
	"webdbsec/internal/policy"
	"webdbsec/internal/reldb"
	"webdbsec/internal/replication"
	"webdbsec/internal/sysr"
	"webdbsec/internal/xmldoc"
)

// Fault-injection failover matrix: the acceptance bar for replication is
// that a 3-node cluster survives kill-the-leader with ZERO acknowledged-
// commit loss. The leader's MemFS write kill switch is armed at sampled
// byte offsets, so the disk dies mid-batch at varied frame positions —
// inside a record, between a DML record and its commit record, between
// group-commit batches — and the surviving majority must elect a leader
// that still holds every row whose commit() returned nil.

// TestKillLeaderMatrixNoAckedLoss arms the leader's write kill switch at a
// sampled byte offset, commits until the disk dies under the leader, then
// crashes it (dropping unsynced writes — the power-cut model) and asserts
// the new leader holds every acknowledged row. The old leader then rejoins
// and must converge, truncating any unacknowledged divergent tail.
func TestKillLeaderMatrixNoAckedLoss(t *testing.T) {
	// Offsets are relative to the leader's WAL size at arming time; small
	// ones land inside the first record's frame, larger ones between
	// batches several commits later. -short (the make check gate) keeps
	// one early and one late kill; the full matrix runs in crashmatrix.
	offsets := []int64{3, 97, 512, 2048, 8192}
	if testing.Short() {
		offsets = []int64{97, 2048}
	}
	for _, off := range offsets {
		off := off
		t.Run(fmt.Sprintf("offset=%d", off), func(t *testing.T) {
			c := newCluster(t, "n1", "n2", "n3")
			c.startAll("n1", "n2", "n3")
			leader := c.waitLeader(5 * time.Second)

			if err := leader.commit("CREATE TABLE kv (k TEXT, v INT)"); err != nil {
				t.Fatalf("create: %v", err)
			}
			acked := map[string]int64{}

			leader.fs.LimitWriteBytes(off)
			for i := 0; i < 500 && !leader.fs.Crashed(); i++ {
				key := "k" + itoa(i)
				err := leader.commit("INSERT INTO kv VALUES ('" + key + "', " + itoa(i) + ")")
				if err != nil {
					t.Logf("commit %s failed (expected near crash point): %v", key, err)
					break
				}
				acked[key] = int64(i)
			}
			if !leader.fs.Crashed() {
				t.Fatalf("leader disk never hit the kill switch at offset %d", off)
			}
			deadID := leader.id
			c.crash(deadID)

			successor := c.waitLeader(5 * time.Second)
			if successor.id == deadID {
				t.Fatalf("dead leader %s re-elected", deadID)
			}
			got := successor.rows(t)
			for k, v := range acked {
				if got[k] != v {
					t.Fatalf("offset %d: acked row %s=%d lost after failover (new leader %s has %v)",
						off, k, v, successor.id, got)
				}
			}

			// The old leader rejoins from its surviving WAL; any record it
			// accepted but never acknowledged is truncated or overwritten by
			// catch-up, and all three converge on the successor's state.
			c.start(deadID)
			c.waitConverged(successor.rows(t), 10*time.Second, "n1", "n2", "n3")
		})
	}
}

// secureFixture applies the same grant/row-policy/column-policy
// configuration to a SecureDB wrapper — the gate is node-local
// configuration, applied identically on leader and replica, while the
// table data underneath arrives via WAL shipping.
func secureFixture(t *testing.T, sdb *reldb.SecureDB) {
	t.Helper()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(sdb.Grants().Grant("dba", "mgr", sysr.Select, "emp", false))
	must(sdb.Grants().Grant("dba", "eng-staff", sysr.Select, "emp", false))
	mgrPred := reldb.MustParse("SELECT * FROM emp WHERE salary >= 0").(*reldb.SelectStmt).Where
	engPred := reldb.MustParse("SELECT * FROM emp WHERE dept = 'eng'").(*reldb.SelectStmt).Where
	must(sdb.AddRowPolicy(&reldb.RowPolicy{
		Name: "mgr-all", Table: "emp",
		Subject: policy.SubjectSpec{Roles: []string{"manager"}}, Pred: mgrPred,
	}))
	must(sdb.AddRowPolicy(&reldb.RowPolicy{
		Name: "eng-own-dept", Table: "emp",
		Subject: policy.SubjectSpec{Roles: []string{"eng"}}, Pred: engPred,
	}))
	must(sdb.AddColPolicy(&reldb.ColPolicy{
		Name: "hide-salary", Table: "emp",
		Subject: policy.SubjectSpec{Roles: []string{"eng"}}, Columns: []string{"salary"},
	}))
}

func renderRows(res *reldb.Result) string {
	var b strings.Builder
	for _, row := range res.Rows {
		for i, v := range row {
			if i > 0 {
				b.WriteByte('|')
			}
			fmt.Fprintf(&b, "%v", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestReplicaReadsThroughSecureGate asserts the ISSUE's read-path
// requirement: follower reads go through the same access-control gate as
// leader reads. Rows ship via the WAL; the SecureDB policy wrapper is
// applied identically on both sides, and every subject — privileged,
// row-restricted, column-masked, and unauthorized — must observe exactly
// the same result on the replica as on the leader.
func TestReplicaReadsThroughSecureGate(t *testing.T) {
	c := newCluster(t, "n1", "n2")
	c.startAll("n1", "n2")
	leader := c.waitLeader(5 * time.Second)

	leader.mu.Lock()
	ldb := leader.db
	leader.mu.Unlock()
	sdb := reldb.NewSecureDB(ldb, nil)
	dba := &policy.Subject{ID: "dba"}
	if err := sdb.CreateTable(dba, "CREATE TABLE emp (id INT, name TEXT, dept TEXT, salary INT)"); err != nil {
		t.Fatal(err)
	}
	for _, r := range []string{
		"(1, 'Ada', 'eng', 120)", "(2, 'Bob', 'eng', 90)", "(3, 'Cyd', 'hr', 80)",
	} {
		if _, err := sdb.Exec(dba, "INSERT INTO emp VALUES "+r); err != nil {
			t.Fatal(err)
		}
	}
	secureFixture(t, sdb)

	// Wait for the cluster ack and for the replica to apply everything.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := leader.node.WaitCommitted(ctx, leader.w.LastLSN()); err != nil {
		t.Fatalf("wait committed: %v", err)
	}
	var replica *member
	for _, id := range []string{"n1", "n2"} {
		if id != leader.id {
			replica = c.members[id]
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for replica.follower.AppliedLSN() < leader.w.LastLSN() {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at %d, leader at %d", replica.follower.AppliedLSN(), leader.w.LastLSN())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The replica wrapper carries the same gate configuration the leader's
	// does: ownership (recorded by CreateTable on the leader) plus the
	// grants and policies from the shared fixture. The table itself arrived
	// via the WAL.
	fsdb := reldb.NewSecureDB(replica.follower.DB(), nil)
	if err := fsdb.Grants().CreateObject("emp", "dba"); err != nil {
		t.Fatalf("replica catalog: %v", err)
	}
	secureFixture(t, fsdb)

	mgr := &policy.Subject{ID: "mgr", Roles: []string{"manager"}}
	eng := &policy.Subject{ID: "eng-staff", Roles: []string{"eng"}}
	const q = "SELECT id, name, dept, salary FROM emp"
	for _, sub := range []*policy.Subject{mgr, eng} {
		lres, err := sdb.Exec(sub, q)
		if err != nil {
			t.Fatalf("leader read %s: %v", sub.ID, err)
		}
		fres, err := fsdb.Exec(sub, q)
		if err != nil {
			t.Fatalf("replica read %s: %v", sub.ID, err)
		}
		if renderRows(lres) != renderRows(fres) {
			t.Errorf("%s: replica read differs from leader:\nleader:\n%sreplica:\n%s",
				sub.ID, renderRows(lres), renderRows(fres))
		}
	}
	// An eng-staff read must actually be masked/filtered — the gate is live,
	// not a pass-through — and identical on both sides (checked above).
	engRes, err := fsdb.Exec(eng, q)
	if err != nil {
		t.Fatalf("replica eng read: %v", err)
	}
	if len(engRes.Rows) != 2 {
		t.Errorf("eng sees %d rows on replica, want 2 (own dept only)", len(engRes.Rows))
	}
	// Unauthorized subjects are rejected on the replica exactly as on the
	// leader: replication must not open a policy bypass.
	nobody := &policy.Subject{ID: "nobody"}
	if _, err := sdb.Exec(nobody, q); err == nil {
		t.Error("leader allowed unprivileged read")
	}
	if _, err := fsdb.Exec(nobody, q); err == nil {
		t.Error("replica allowed unprivileged read")
	}
}

// TestAuditChainReplicatedAndReverified ships a hash-chained audit log
// over replication and re-verifies the chain on the replica: catch-up must
// deliver a log that passes audit.OpenLog's full chain walk, and a forged
// record smuggled into the replica's WAL must break verification — the
// tamper-evidence property survives transport.
func TestAuditChainReplicatedAndReverified(t *testing.T) {
	c := newCluster(t, "a1", "a2")
	c.applierFor = func(m *member) (replication.Applier, uint64) {
		// Audit records need no materialization on the replica: the WAL
		// itself is the replicated state, re-verified by OpenLog on read.
		return replication.ApplierFuncs{
			ApplyFn:   func(lsn uint64, payload []byte) error { return nil },
			RestoreFn: func(lsn uint64, snapshot []byte) error { return nil },
		}, m.w.DurableLSN()
	}
	c.startAll("a1", "a2")
	leader := c.waitLeader(5 * time.Second)

	alog, err := audit.OpenLog(leader.w)
	if err != nil {
		t.Fatalf("leader audit log: %v", err)
	}
	for i := 0; i < 20; i++ {
		if _, err := alog.AppendChecked("alice", "read", "doc"+itoa(i), "permit"); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := leader.node.WaitCommitted(ctx, leader.w.LastLSN()); err != nil {
		t.Fatalf("wait committed: %v", err)
	}

	var replica *member
	for _, id := range []string{"a1", "a2"} {
		if id != leader.id {
			replica = c.members[id]
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for replica.w.DurableLSN() < leader.w.LastLSN() {
		if time.Now().After(deadline) {
			t.Fatalf("replica durable %d, leader at %d", replica.w.DurableLSN(), leader.w.LastLSN())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Reopen the replica's WAL cold and re-walk the chain, exactly as a
	// node would after restarting from catch-up.
	c.stop(replica.id)
	w := reopenWAL(t, replica)
	flog, err := audit.OpenLog(w)
	if err != nil {
		t.Fatalf("replicated chain failed verification: %v", err)
	}
	if flog.Len() != alog.Len() {
		t.Fatalf("replica chain has %d records, leader %d", flog.Len(), alog.Len())
	}
	lr, fr := alog.Records(), flog.Records()
	if lr[len(lr)-1].Hash != fr[len(fr)-1].Hash {
		t.Fatal("replica chain head differs from leader")
	}

	// Forge an entry directly into the replica's log: well-formed JSON,
	// broken chain. The next OpenLog must refuse to serve.
	forged := `{"Seq":20,"Actor":"mallory","Action":"erase","Object":"doc0","Outcome":"permit","PrevHash":"bogus","Hash":"bogus"}`
	if _, err := w.Append([]byte(forged)); err != nil {
		t.Fatalf("forge append: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	w = reopenWAL(t, replica)
	defer w.Close()
	if _, err := audit.OpenLog(w); !errors.Is(err, audit.ErrChainBroken) {
		t.Fatalf("tampered replica chain verified: err=%v", err)
	}
}

// TestXMLReplicaViewEquivalence replicates the XML document store and
// asserts access-controlled views are identical on leader and replica:
// same policy base, same subject, same pruned document — including the
// generation counters the decision cache keys on.
func TestXMLReplicaViewEquivalence(t *testing.T) {
	stores := map[string]*xmldoc.Store{}
	c := newCluster(t, "x1", "x2")
	c.applierFor = func(m *member) (replication.Applier, uint64) {
		s := xmldoc.NewStore()
		stores[m.id] = s
		return replication.ApplierFuncs{
			ApplyFn:   s.ApplyReplicated,
			RestoreFn: s.RestoreReplicated,
		}, 0
	}
	c.startAll("x1", "x2")
	leader := c.waitLeader(5 * time.Second)

	// The leader's store journals into the same WAL the node ships.
	lstore, err := xmldoc.OpenStore(leader.w)
	if err != nil {
		t.Fatalf("leader store: %v", err)
	}
	const recordsXML = `
<hospital>
  <patient id="p1" ward="3">
    <name>Alice</name>
    <ssn>111-22-3333</ssn>
    <diagnosis severity="high">flu</diagnosis>
  </patient>
  <stats>public statistics</stats>
</hospital>`
	doc, err := xmldoc.ParseString("records.xml", recordsXML)
	if err != nil {
		t.Fatal(err)
	}
	lstore.Put(doc)
	lstore.AddToSet("medical", doc.Name)
	if err := lstore.Err(); err != nil {
		t.Fatalf("journal: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := leader.node.WaitCommitted(ctx, leader.w.LastLSN()); err != nil {
		t.Fatalf("wait committed: %v", err)
	}
	var replica *member
	for _, id := range []string{"x1", "x2"} {
		if id != leader.id {
			replica = c.members[id]
		}
	}
	rstore := stores[replica.id]
	deadline := time.Now().Add(5 * time.Second)
	for replica.node.Snapshot().AppliedLSN < leader.w.LastLSN() {
		if time.Now().After(deadline) {
			t.Fatalf("replica applied %d, leader at %d", replica.node.Snapshot().AppliedLSN, leader.w.LastLSN())
		}
		time.Sleep(10 * time.Millisecond)
	}

	if lg, rg := lstore.Generation(), rstore.Generation(); lg != rg {
		t.Fatalf("generation counter diverged: leader %d, replica %d", lg, rg)
	}

	// Same policy base on both sides: doctors read everything but ssn;
	// outsiders read nothing.
	mkBase := func() *policy.Base {
		base := policy.NewBase(nil)
		base.MustAdd(&policy.Policy{
			Name:    "doctors-read",
			Subject: policy.SubjectSpec{Roles: []string{"doctor"}},
			Object:  policy.ObjectSpec{Doc: "records.xml"},
			Priv:    policy.Read,
			Sign:    policy.Permit,
			Prop:    policy.Cascade,
		})
		base.MustAdd(&policy.Policy{
			Name:    "ssn-deny",
			Subject: policy.SubjectSpec{Roles: []string{"doctor"}},
			Object:  policy.ObjectSpec{Doc: "records.xml", Path: "/hospital/patient/ssn"},
			Priv:    policy.Read,
			Sign:    policy.Deny,
			Prop:    policy.Cascade,
		})
		return base
	}
	eLeader := accessctl.NewEngine(lstore, mkBase())
	eReplica := accessctl.NewEngine(rstore, mkBase())

	doctor := &policy.Subject{ID: "dr", Roles: []string{"doctor"}}
	lv := eLeader.View("records.xml", doctor, policy.Read)
	rv := eReplica.View("records.xml", doctor, policy.Read)
	if lv == nil || rv == nil {
		t.Fatalf("doctor view nil: leader=%v replica=%v", lv == nil, rv == nil)
	}
	if lv.Canonical() != rv.Canonical() {
		t.Errorf("doctor views diverge:\nleader:  %s\nreplica: %s", lv.Canonical(), rv.Canonical())
	}
	if strings.Contains(rv.Canonical(), "111-22-3333") {
		t.Error("replica view leaked denied ssn")
	}
	outsider := &policy.Subject{ID: "eve"}
	if v := eReplica.View("records.xml", outsider, policy.Read); v != nil {
		t.Error("replica granted outsider a view")
	}
	if v := eLeader.View("records.xml", outsider, policy.Read); v != nil {
		t.Error("leader granted outsider a view")
	}
}
