package replication_test

import (
	"errors"
	"testing"
	"time"

	"webdbsec/internal/authtoken"
	"webdbsec/internal/policy"
)

// The cross-node token property: a token minted on the leader verifies on
// any replica against the replicated public-key set alone, and dies
// everywhere once rotation pushes its epoch out of the retention window.

type allowMint struct{}

func (allowMint) AllowMint(*policy.Subject) bool { return true }

// waitVerify polls a verifier until raw verifies (wantErr nil) or fails
// with wantErr. The epoch check precedes the replay consume, so a token
// whose nonce an earlier poll consumed still reports ErrUnknownEpoch once
// the rotated key set lands.
func waitVerify(t *testing.T, v *authtoken.Verifier, raw []byte, wantErr error, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	var last error
	for time.Now().Before(deadline) {
		_, last = v.Verify(raw, time.Now())
		if wantErr == nil && last == nil {
			return
		}
		if wantErr != nil && errors.Is(last, wantErr) {
			return
		}
		// A success when we wanted an error consumed the nonce; keep
		// polling only for the error case (the set may not have shipped).
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("verify on replica: last err = %v, want %v", last, wantErr)
}

func TestLeaderMintedTokenVerifiesOnFollower(t *testing.T) {
	c := newCluster(t, "a", "b", "c")
	c.mintKeys = true
	c.startAll("a", "b", "c")
	leader := c.waitLeader(5 * time.Second)

	minter, err := authtoken.NewMinter(leader.ring, nil, allowMint{}, time.Minute)
	if err != nil {
		t.Fatalf("minter: %v", err)
	}
	s := &policy.Subject{ID: "ana", Roles: []string{"analyst"}}

	// Two tokens: one consumed on each follower (tokens are single-use,
	// and each replica has its own replay cache).
	var followers []*member
	for _, id := range c.sorted() {
		if id != leader.id {
			followers = append(followers, c.members[id])
		}
	}
	if len(followers) != 2 {
		t.Fatalf("followers = %d", len(followers))
	}
	for _, f := range followers {
		tok, err := minter.Mint(s, time.Now())
		if err != nil {
			t.Fatalf("mint: %v", err)
		}
		fv := authtoken.NewVerifier(f.keyset, time.Minute, 0, 0)
		waitVerify(t, fv, tok.Encode(), nil, 3*time.Second)
	}

	// Rotate past the keep window (keep=2: two rotations drop epoch 1).
	stale, err := minter.Mint(s, time.Now())
	if err != nil {
		t.Fatalf("mint pre-rotation: %v", err)
	}
	if _, err := leader.ring.Rotate(); err != nil {
		t.Fatalf("rotate: %v", err)
	}
	if _, err := leader.ring.Rotate(); err != nil {
		t.Fatalf("rotate: %v", err)
	}
	for _, f := range followers {
		fv := authtoken.NewVerifier(f.keyset, time.Minute, 0, 0)
		// The rotated set ships via heartbeat; the stale token must start
		// failing ErrUnknownEpoch once it lands.
		waitVerify(t, fv, stale.Encode(), authtoken.ErrUnknownEpoch, 3*time.Second)
		// And a token under the new epoch verifies.
		fresh, err := minter.Mint(s, time.Now())
		if err != nil {
			t.Fatalf("mint post-rotation: %v", err)
		}
		waitVerify(t, fv, fresh.Encode(), nil, 3*time.Second)
	}
}
