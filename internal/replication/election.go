package replication

import (
	"io"
	"time"

	"webdbsec/internal/secchan"
)

// peerState is one node's answer to an election poll.
type peerState struct {
	node    string
	epoch   uint64
	tail    uint64
	durable uint64
	role    string
	leader  string
}

// better orders leader candidates: later tail epoch first, then durable
// LSN, then node ID as the final deterministic tie-break. Tail epoch
// dominates on purpose — a log that is a verified prefix of a newer
// leadership can never be missing older committed records, while a
// longer log whose tail was written under an old epoch may be nothing
// but an uncommitted stranded tail. Comparing durable LSNs alone would
// let exactly that tail win.
func better(a, b peerState) bool {
	if a.tail != b.tail {
		return a.tail > b.tail
	}
	if a.durable != b.durable {
		return a.durable > b.durable
	}
	return a.node > b.node
}

// runElection drives one election round. It has two phases:
//
// Poll: every peer is asked for its state. Fewer than a quorum reachable
// means this node is (possibly) in a minority partition and stays
// fenced. An established leader at the highest observed epoch is joined
// outright — following it beats churning the epoch.
//
// Candidacy: otherwise the node nominates itself only if its log is the
// best among the reachable states by (tail epoch, durable LSN, node ID)
// — a cheap prefilter that keeps obviously-outranked nodes from
// disrupting the round — and then claims epoch maxEpoch+1 through an
// explicit quorum vote. Every voter (the candidate included) durably
// records the grant before it counts, and grants at most one vote per
// epoch, so at most one leader can ever hold a given epoch: two
// candidates that each reach a quorum through asymmetric partitions
// necessarily share a voter, and that voter granted only one of them.
// A voter also refuses any candidate whose (tail epoch, durable LSN) is
// behind its own, so the winner's log contains every committed record
// of every earlier epoch — quorum intersection hands the vote round at
// least one member of every commit quorum, and that member's tail-epoch
// stamp (see advanceTailEpoch) outranks every stale tail.
func (n *Node) runElection() {
	n.mu.Lock()
	n.elections++
	selfEpoch := n.epoch
	selfTail := n.tailEpoch
	n.mu.Unlock()

	self := peerState{
		node:    n.cfg.NodeID,
		epoch:   selfEpoch,
		tail:    selfTail,
		durable: n.cfg.WAL.DurableLSN(),
	}
	states := []peerState{self}
	for id := range n.cfg.Peers {
		st, err := n.pollPeer(id)
		if err != nil {
			n.logf("election: poll %s: %v", id, err)
			continue
		}
		states = append(states, st)
	}
	if len(states) < n.quorum {
		n.logf("election: only %d/%d nodes reachable, staying fenced", len(states), n.quorum)
		return
	}

	// An established leader with a current epoch wins outright — joining
	// it beats re-electing and churning the epoch.
	maxEpoch := selfEpoch
	for _, st := range states {
		if st.epoch > maxEpoch {
			maxEpoch = st.epoch
		}
	}
	for _, st := range states {
		if st.role == LeaderRole.String() && st.epoch == maxEpoch && st.node != n.cfg.NodeID {
			n.mu.Lock()
			if n.role == Candidate && !n.stopped {
				if maxEpoch > n.epoch {
					n.epoch = maxEpoch
					if err := n.saveMetaLocked(); err != nil {
						n.logf("election: %v", err)
					}
				}
				n.role = FollowerRole
				n.leaderID = st.node
				n.broadcastLocked()
			}
			n.mu.Unlock()
			n.logf("election: joining existing leader %s at epoch %d", st.node, maxEpoch)
			return
		}
	}

	best := states[0]
	for _, st := range states[1:] {
		if better(st, best) {
			best = st
		}
	}
	if best.node != n.cfg.NodeID {
		// A better-positioned node is reachable; let it claim the epoch.
		// This is only an optimization — the vote round below is what
		// enforces safety — so no role change happens here: the node
		// stays Candidate, and a later poll finds the winner as leader.
		n.logf("election: deferring to better-positioned %s", best.node)
		return
	}

	// Claim a fresh epoch: durably self-vote first, then gather a quorum.
	n.mu.Lock()
	if n.role != Candidate || n.stopped {
		n.mu.Unlock()
		return
	}
	newEpoch := maxEpoch + 1
	// seclint:locked the unlock above is in the returning branch; the lock is still held here
	if newEpoch <= n.votedEpoch {
		// Already voted at newEpoch (e.g. a lost earlier candidacy); the
		// one-grant-per-epoch rule applies to this node too.
		// seclint:locked the unlock above is in the returning branch; the lock is still held here
		newEpoch = n.votedEpoch + 1
	}
	// seclint:locked the unlock above is in the returning branch; the lock is still held here
	n.epoch = newEpoch
	// seclint:locked the unlock above is in the returning branch; the lock is still held here
	n.votedEpoch = newEpoch
	if err := n.saveMetaLocked(); err != nil {
		n.logf("election: cannot persist self-vote, abandoning candidacy: %v", err)
		n.mu.Unlock()
		return
	}
	tail := selfTail
	durable := n.cfg.WAL.DurableLSN()
	n.mu.Unlock()

	votes := 1 // self
	maxSeen := newEpoch
	for id := range n.cfg.Peers {
		if votes >= n.quorum {
			break
		}
		granted, peerEpoch, err := n.requestVote(id, newEpoch, tail, durable)
		if err != nil {
			n.logf("election: vote %s: %v", id, err)
			continue
		}
		if peerEpoch > maxSeen {
			maxSeen = peerEpoch
		}
		if granted {
			votes++
		}
	}

	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role != Candidate || n.stopped || n.epoch != newEpoch {
		// A newer election (or a leader's join traffic) moved the node on
		// while the votes were in flight; this candidacy is dead.
		return
	}
	if votes < n.quorum {
		if maxSeen > n.epoch {
			n.epoch = maxSeen
			if err := n.saveMetaLocked(); err != nil {
				n.logf("election: %v", err)
			}
		}
		n.logf("election: %d/%d votes at epoch %d, backing off", votes, n.quorum, newEpoch)
		return
	}
	n.becomeLeaderLocked()
}

// pollPeer asks one peer for its current state over a short-lived channel.
func (n *Node) pollPeer(id string) (peerState, error) {
	m, err := n.roundTrip(id, &msg{T: "state", Node: n.cfg.NodeID, Epoch: n.Epoch()})
	if err != nil {
		return peerState{}, err
	}
	return peerState{
		node:    m.Node,
		epoch:   m.Epoch,
		tail:    m.TailEpoch,
		durable: m.DurableLSN,
		role:    m.Role,
		leader:  m.Leader,
	}, nil
}

// requestVote asks one peer to grant this node's candidacy for epoch.
// It returns whether the vote was granted and the peer's epoch (which,
// when higher, reveals a newer election the candidate lost to).
func (n *Node) requestVote(id string, epoch, tailEpoch, durable uint64) (bool, uint64, error) {
	m, err := n.roundTrip(id, &msg{
		T:          "vote",
		Node:       n.cfg.NodeID,
		Epoch:      epoch,
		TailEpoch:  tailEpoch,
		DurableLSN: durable,
	})
	if err != nil {
		return false, 0, err
	}
	return m.OK, m.Epoch, nil
}

// roundTrip performs one request/response exchange with a peer over a
// short-lived channel.
func (n *Node) roundTrip(id string, req *msg) (*msg, error) {
	cfg := secchan.Config{
		HandshakeTimeout: n.cfg.dialTimeout(),
		ReadTimeout:      n.cfg.dialTimeout(),
		WriteTimeout:     n.cfg.dialTimeout(),
	}
	ch, err := n.dial(id, cfg)
	if err != nil {
		return nil, err
	}
	defer ch.Close()
	raw, err := encodeMsg(req)
	if err != nil {
		return nil, err
	}
	if err := ch.Send(raw); err != nil {
		return nil, err
	}
	resp, err := ch.Receive()
	if err != nil {
		return nil, err
	}
	return decodeMsg(resp)
}

// serveState answers an election poll on an accepted channel. Observing a
// poll with a higher epoch than a leader's own is evidence of a newer
// election: the leader steps down rather than keep acknowledging writes.
func (n *Node) serveState(ch *secchan.Channel, m *msg) {
	n.mu.Lock()
	if m.Epoch > n.epoch {
		n.epoch = m.Epoch
		if n.role == LeaderRole {
			n.failovers++
			n.stepDownLocked("higher epoch observed in poll")
		}
		if err := n.saveMetaLocked(); err != nil {
			n.logf("state: %v", err)
		}
	}
	resp := &msg{
		T:          "stateResp",
		Node:       n.cfg.NodeID,
		Epoch:      n.epoch,
		TailEpoch:  n.tailEpoch,
		DurableLSN: n.cfg.WAL.DurableLSN(),
		Role:       n.role.String(),
		Leader:     n.leaderID,
	}
	n.mu.Unlock()
	n.replyAndDrain(ch, resp)
}

// serveVote answers a candidacy request. The two rules that make epochs
// exclusive and elections safe:
//
//   - one grant per epoch, persisted BEFORE the reply leaves the node —
//     a crash between granting and replying must not allow a second
//     same-epoch grant after restart;
//   - no grant to a candidate whose log is behind this node's by
//     (tail epoch, durable LSN) — so a stale-epoch tail, however long,
//     cannot collect a quorum while any voter holds newer-epoch records.
func (n *Node) serveVote(ch *secchan.Channel, m *msg) {
	n.mu.Lock()
	if m.Epoch > n.epoch {
		n.epoch = m.Epoch
		if n.role == LeaderRole {
			n.failovers++
			n.stepDownLocked("higher epoch in vote request")
		}
		if err := n.saveMetaLocked(); err != nil {
			n.logf("vote: %v", err)
		}
	}
	granted := false
	upToDate := m.TailEpoch > n.tailEpoch ||
		(m.TailEpoch == n.tailEpoch && m.DurableLSN >= n.cfg.WAL.DurableLSN())
	if m.Epoch == n.epoch && m.Epoch > n.votedEpoch && upToDate && !n.stopped {
		n.votedEpoch = m.Epoch
		if err := n.saveMetaLocked(); err != nil {
			// An unpersisted grant must not count: roll it back and
			// refuse, or a restart could hand the same epoch out twice.
			n.votedEpoch = 0
			n.logf("vote: cannot persist grant for %s at %d: %v", m.Node, m.Epoch, err)
		} else {
			granted = true
			n.logf("vote: granted %s epoch %d (tail %d, durable %d)", m.Node, m.Epoch, m.TailEpoch, m.DurableLSN)
		}
	}
	resp := &msg{T: "voteResp", Node: n.cfg.NodeID, Epoch: n.epoch, OK: granted}
	n.mu.Unlock()
	n.replyAndDrain(ch, resp)
}

// replyAndDrain sends resp and then waits for the peer's close-notify so
// the reply is not torn off by our own teardown racing the write.
func (n *Node) replyAndDrain(ch *secchan.Channel, resp *msg) {
	raw, err := encodeMsg(resp)
	if err != nil {
		return
	}
	_ = ch.Send(raw)
	deadline := time.Now().Add(n.cfg.dialTimeout())
	for time.Now().Before(deadline) {
		if _, err := ch.Receive(); err != nil {
			if err == io.EOF {
				return
			}
			return
		}
	}
}
