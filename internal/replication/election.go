package replication

import (
	"io"
	"time"

	"webdbsec/internal/secchan"
)

// peerState is one node's answer to an election poll.
type peerState struct {
	node    string
	epoch   uint64
	durable uint64
	role    string
	leader  string
}

// runElection polls every peer for its state and decides deterministically
// who should lead: among the reachable nodes (which must be a quorum —
// a minority partition can never elect), the highest durable LSN wins,
// ties broken by the highest node ID. Every node in the same partition
// computes the same winner from the same answers, so no voting rounds are
// needed: the winner claims a fresh epoch, everyone else follows it.
//
// Safety: the commit watermark only ever covers records durable on a
// quorum, and any two quorums intersect, so the max-durable node of any
// electing quorum holds every committed record.
func (n *Node) runElection() {
	n.mu.Lock()
	n.elections++
	selfEpoch := n.epoch
	n.mu.Unlock()

	self := peerState{
		node:    n.cfg.NodeID,
		epoch:   selfEpoch,
		durable: n.cfg.WAL.DurableLSN(),
	}
	states := []peerState{self}
	for id := range n.cfg.Peers {
		st, err := n.pollPeer(id)
		if err != nil {
			n.logf("election: poll %s: %v", id, err)
			continue
		}
		states = append(states, st)
	}
	if len(states) < n.quorum {
		n.logf("election: only %d/%d nodes reachable, staying fenced", len(states), n.quorum)
		return
	}

	// An established leader with a current epoch wins outright — joining
	// it beats re-electing and churning the epoch.
	maxEpoch := selfEpoch
	for _, st := range states {
		if st.epoch > maxEpoch {
			maxEpoch = st.epoch
		}
	}
	for _, st := range states {
		if st.role == LeaderRole.String() && st.epoch == maxEpoch && st.node != n.cfg.NodeID {
			n.mu.Lock()
			if n.role == Candidate && !n.stopped {
				n.epoch = maxEpoch
				n.role = FollowerRole
				n.leaderID = st.node
				n.broadcastLocked()
			}
			n.mu.Unlock()
			n.logf("election: joining existing leader %s at epoch %d", st.node, maxEpoch)
			return
		}
	}

	winner := states[0]
	for _, st := range states[1:] {
		if st.durable > winner.durable || (st.durable == winner.durable && st.node > winner.node) {
			winner = st
		}
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role != Candidate || n.stopped {
		return
	}
	if winner.node == n.cfg.NodeID {
		// Epochs are claimed by leaders, never predicted by followers: only
		// the winner bumps past the highest epoch it observed.
		if newEpoch := maxEpoch + 1; newEpoch > n.epoch {
			n.epoch = newEpoch
		}
		n.becomeLeaderLocked()
		return
	}
	// A loser follows at the highest epoch it actually observed. Guessing
	// the winner's next epoch here would let a join carrying the guess
	// fence the legitimate leader if this node's poll caught a peer
	// mid-election; the winner's joinResp teaches the real epoch instead
	// (followOnce adopts it via observeEpoch).
	if maxEpoch > n.epoch {
		n.epoch = maxEpoch
	}
	n.role = FollowerRole
	n.leaderID = winner.node
	n.broadcastLocked()
	n.logf("election: following %s at epoch %d", winner.node, n.epoch)
}

// pollPeer asks one peer for its current state over a short-lived channel.
func (n *Node) pollPeer(id string) (peerState, error) {
	cfg := secchan.Config{
		HandshakeTimeout: n.cfg.dialTimeout(),
		ReadTimeout:      n.cfg.dialTimeout(),
		WriteTimeout:     n.cfg.dialTimeout(),
	}
	ch, err := n.dial(id, cfg)
	if err != nil {
		return peerState{}, err
	}
	defer ch.Close()
	req, err := encodeMsg(&msg{T: "state", Node: n.cfg.NodeID, Epoch: n.Epoch()})
	if err != nil {
		return peerState{}, err
	}
	if err := ch.Send(req); err != nil {
		return peerState{}, err
	}
	raw, err := ch.Receive()
	if err != nil {
		return peerState{}, err
	}
	m, err := decodeMsg(raw)
	if err != nil {
		return peerState{}, err
	}
	return peerState{
		node:    m.Node,
		epoch:   m.Epoch,
		durable: m.DurableLSN,
		role:    m.Role,
		leader:  m.Leader,
	}, nil
}

// serveState answers an election poll on an accepted channel. Observing a
// poll with a higher epoch than a leader's own is evidence of a newer
// election: the leader steps down rather than keep acknowledging writes.
func (n *Node) serveState(ch *secchan.Channel, m *msg) {
	n.mu.Lock()
	if m.Epoch > n.epoch {
		n.epoch = m.Epoch
		if n.role == LeaderRole {
			n.failovers++
			n.stepDownLocked("higher epoch observed in poll")
		}
	}
	resp := &msg{
		T:          "stateResp",
		Node:       n.cfg.NodeID,
		Epoch:      n.epoch,
		DurableLSN: n.cfg.WAL.DurableLSN(),
		Role:       n.role.String(),
		Leader:     n.leaderID,
	}
	n.mu.Unlock()
	raw, err := encodeMsg(resp)
	if err != nil {
		return
	}
	_ = ch.Send(raw)
	// Wait for the poller's close-notify so the reply is not torn off by
	// our own teardown racing the write.
	deadline := time.Now().Add(n.cfg.dialTimeout())
	for time.Now().Before(deadline) {
		if _, err := ch.Receive(); err != nil {
			if err == io.EOF {
				return
			}
			return
		}
	}
}
