package replication_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"webdbsec/internal/federation"
	"webdbsec/internal/policy"
	"webdbsec/internal/rdf"
	"webdbsec/internal/reldb"
	"webdbsec/internal/replication"
)

// replicaBinding wires a cluster member into a federation replica source.
// Everything is read through closures so the binding follows failover:
// the follower object is replaced when leadership moves, and freshness is
// judged against the leader's commit watermark — the vantage point of a
// read gateway colocated with the write path, offloading reads to
// replicas.
func replicaBinding(m *member, leader *member) federation.ReplicaBinding {
	return federation.ReplicaBinding{
		DB: func() *reldb.Database {
			m.mu.Lock()
			defer m.mu.Unlock()
			if m.follower == nil {
				return nil
			}
			return m.follower.DB()
		},
		AppliedLSN: func() uint64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			if m.follower == nil {
				return 0
			}
			return m.follower.AppliedLSN()
		},
		CommitLSN: func() uint64 { return leader.node.CommitLSN() },
		MaxLag:    0,
	}
}

// TestFederatedReadsRouteToReplicas: the read-offload topology. A
// federation fans SELECTs out over the cluster's replicas; while both are
// caught up the union carries every replica's copy with provenance, and
// when one replica stops replaying, its staleness is detected against the
// commit watermark and the query degrades to a partial result from the
// fresh replica instead of serving old data or failing outright.
func TestFederatedReadsRouteToReplicas(t *testing.T) {
	c := newCluster(t, "f1", "f2", "f3")
	c.startAll("f1", "f2", "f3")
	leader := c.waitLeader(5 * time.Second)

	if err := leader.commit("CREATE TABLE kv (k TEXT, v INT)"); err != nil {
		t.Fatalf("create: %v", err)
	}
	for _, stmt := range []string{
		"INSERT INTO kv VALUES ('a', 1)",
		"INSERT INTO kv VALUES ('b', 2)",
		"INSERT INTO kv VALUES ('c', 3)",
	} {
		if err := leader.commit(stmt); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	c.waitConverged(map[string]int64{"a": 1, "b": 2, "c": 3}, 5*time.Second, "f1", "f2", "f3")

	// Every non-leader member becomes one replica source of the virtual
	// table. The leader itself stays out of the read path — that is the
	// point of the offload.
	fed := federation.New()
	fed.SetPerSourceTimeout(500 * time.Millisecond)
	var replicas []*member
	for _, id := range c.sorted() {
		m := c.members[id]
		if m == leader {
			continue
		}
		replicas = append(replicas, m)
		src, err := federation.NewReplicaSource(id, rdf.Unclassified, replicaBinding(m, leader))
		if err != nil {
			t.Fatalf("replica source %s: %v", id, err)
		}
		if err := src.ExportTable(&federation.Export{
			Virtual: "kv", Local: "kv", Columns: []string{"k", "v"},
		}); err != nil {
			t.Fatalf("export %s: %v", id, err)
		}
		if err := fed.AddSource(src); err != nil {
			t.Fatalf("add %s: %v", id, err)
		}
	}
	if len(replicas) != 2 {
		t.Fatalf("replicas = %d, want 2", len(replicas))
	}

	req := &federation.Requestor{Subject: &policy.Subject{ID: "reader"}, Clearance: rdf.Secret}
	res, err := fed.Query(context.Background(), req, "SELECT k, v FROM kv")
	if err != nil {
		t.Fatalf("federated read: %v", err)
	}
	if res.Partial() {
		t.Fatalf("caught-up replicas produced a partial result: %+v", res.Failed)
	}
	// Both replicas contribute their full copy, tagged with provenance.
	perSource := map[string]int{}
	for _, r := range res.Rows {
		perSource[r[0].S]++
	}
	for _, m := range replicas {
		if perSource[m.id] != 3 {
			t.Errorf("replica %s contributed %d rows, want 3 (rows=%v)", m.id, perSource[m.id], res.Rows)
		}
	}

	// Stop one replica, then commit past it. The two survivors are still a
	// quorum, so the watermark advances and the stopped replica is now
	// provably stale.
	stale, fresh := replicas[0], replicas[1]
	c.stop(stale.id)
	if err := leader.commit("INSERT INTO kv VALUES ('d', 4)"); err != nil {
		t.Fatalf("insert past stopped replica: %v", err)
	}
	c.waitConverged(map[string]int64{"a": 1, "b": 2, "c": 3, "d": 4}, 5*time.Second, fresh.id)

	res, err = fed.Query(context.Background(), req, "SELECT k, v FROM kv")
	if err != nil {
		t.Fatalf("degraded federated read: %v", err)
	}
	if !res.Partial() {
		t.Fatal("stale replica did not mark the result partial")
	}
	if len(res.Failed) != 1 || res.Failed[0].Source != stale.id {
		t.Fatalf("Failed = %+v, want exactly %s", res.Failed, stale.id)
	}
	if !errors.Is(res.Failed[0].Err, federation.ErrStaleReplica) {
		t.Errorf("failure cause = %v, want ErrStaleReplica", res.Failed[0].Err)
	}
	got := map[string]int64{}
	for _, r := range res.Rows {
		if r[0].S != fresh.id {
			t.Fatalf("row from %s in degraded result, want only %s", r[0].S, fresh.id)
		}
		got[r[1].S] = r[2].I
	}
	want := map[string]int64{"a": 1, "b": 2, "c": 3, "d": 4}
	if len(got) != len(want) {
		t.Fatalf("degraded rows = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("degraded rows = %v, want %v", got, want)
		}
	}
	if leader.node.Role() != replication.LeaderRole {
		t.Fatal("leader lost leadership during read offload")
	}
}
