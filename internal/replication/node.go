// Package replication turns a crash-safe securedb node into a member of a
// small WAL-shipping cluster: one leader accepts writes and streams its
// write-ahead log to followers over secchan; followers replay the records
// through the same recovery paths a restart would use, so a replica is
// always some prefix of the leader's committed history. The paper's
// federated vision (§ cooperative web databases) assumes data outlives any
// single node — this package is that assumption made executable.
//
// Design in one paragraph: epochs order leaderships and are claimed by
// an explicit quorum vote — each node durably grants at most one vote
// per epoch, so at most one leader can ever hold an epoch, and a voter
// refuses any candidate whose log is not at least as up to date as its
// own by (tail epoch, durable LSN); a joining follower is authenticated
// twice (the secchan handshake pins the leader's identity key, and a
// wallet-credential check gates the follower) and its log is
// cross-checked by a chain hash before any WAL byte ships; commits are
// acknowledged to clients only once a quorum of nodes has the record
// durable (WaitCommitted), and a new leader's commit watermark does not
// advance past its inherited value until a quorum has replicated its
// whole promotion-time log — the prior-epoch tail commits through the
// new epoch, never by fiat; a leader that cannot hear a quorum fences
// itself — it steps down and fails its waiting committers rather than
// acknowledge writes it cannot guarantee survived it.
package replication

import (
	"context"
	"crypto/ed25519"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"webdbsec/internal/credential"
	"webdbsec/internal/resilience"
	"webdbsec/internal/secchan"
	"webdbsec/internal/wal"
)

// Role is a node's position in the cluster.
type Role int32

// Roles. A node starts as Candidate, and returns to Candidate whenever it
// loses its leader or its quorum.
const (
	Candidate Role = iota
	FollowerRole
	LeaderRole
)

func (r Role) String() string {
	switch r {
	case LeaderRole:
		return "leader"
	case FollowerRole:
		return "follower"
	default:
		return "candidate"
	}
}

// ErrNotLeader is the verdict WaitCommitted returns when the node is not
// (or no longer) the leader: the caller must NOT acknowledge the commit —
// it may yet be truncated by the next leader.
var ErrNotLeader = errors.New("replication: not leader")

// ErrStopped is returned once Stop has been called.
var ErrStopped = errors.New("replication: node stopped")

// Applier consumes committed records on a follower, materializing the
// replica's readable state. reldb.Follower and the xmldoc replica methods
// satisfy it (via ApplierFuncs for the latter).
type Applier interface {
	// Apply consumes one record at its LSN; records arrive in strict LSN
	// order and only once the cluster commit watermark covers them.
	Apply(lsn uint64, payload []byte) error
	// Restore replaces all state from a leader checkpoint snapshot
	// (full resync).
	Restore(lsn uint64, snapshot []byte) error
}

// ApplierFuncs adapts two functions to the Applier interface.
type ApplierFuncs struct {
	ApplyFn   func(lsn uint64, payload []byte) error
	RestoreFn func(lsn uint64, snapshot []byte) error
}

// Apply forwards to ApplyFn.
func (a ApplierFuncs) Apply(lsn uint64, payload []byte) error { return a.ApplyFn(lsn, payload) }

// Restore forwards to RestoreFn.
func (a ApplierFuncs) Restore(lsn uint64, snapshot []byte) error {
	return a.RestoreFn(lsn, snapshot)
}

// Config describes one cluster member.
type Config struct {
	// NodeID is this node's unique name; election ties break toward the
	// highest ID, so IDs order the cluster deterministically.
	NodeID string
	// Addr is the listen address ("host:port"); ignored when Listener is
	// set.
	Addr string
	// Listener, when set, is used instead of listening on Addr.
	Listener net.Listener
	// Peers maps every OTHER node's ID to its dial address.
	Peers map[string]string
	// Identity signs this node's secchan handshakes.
	Identity ed25519.PrivateKey
	// PeerKeys holds every peer's identity public key: a dialer refuses a
	// channel whose server cannot prove one of these.
	PeerKeys map[string]ed25519.PublicKey
	// Wallet is presented during the join handshake.
	Wallet *credential.Wallet
	// Verifier validates joining followers' wallets; JoinPolicy is the
	// credential expression a follower must satisfy. Both nil disables
	// the check (single-tenant test clusters).
	Verifier   *credential.Verifier
	JoinPolicy *credential.Expr
	// WAL is the node's local durable log. It must use SyncAlways so an
	// Append return doubles as the durability verdict the ack protocol
	// relies on.
	WAL *wal.WAL
	// MetaStore persists the node's election state (highest observed
	// epoch, the last epoch it granted a vote in, and the epoch of the
	// leadership its log tail last synced to) across restarts — see
	// durableMeta. It may share the WAL's wal.FS root: the state file's
	// name is ignored by WAL recovery. When nil the state is held in
	// memory only; that is acceptable for single-run tools and
	// benchmarks, but a production node must persist it — a node that
	// forgets a granted vote can vote twice in the same epoch after a
	// restart, re-opening the split-brain the vote protocol closes.
	MetaStore wal.FS
	// Applier materializes committed records on a follower; nil for a
	// pure log replica. AppliedLSN is the applier's initial position
	// (wal.LastLSN() after reldb.OpenFollower, which re-applies the whole
	// local log).
	Applier    Applier
	AppliedLSN uint64
	// OnLeader runs after this node wins an election and has applied its
	// local tail — the promote hook (e.g. reldb.Follower.Promote).
	OnLeader func()
	// OnDemote runs after the node abandons leadership (fencing, higher
	// epoch observed, Stop).
	OnDemote func()

	// ExportAuthKeys, when set on a node that can lead, renders the
	// auth-token mint verify-key set (keymgmt.MintKeyring.ExportPublic)
	// plus its generation. The leader ships it in every joinResp and in a
	// heartbeat whenever the generation moves, so leader-minted tokens
	// verify on any replica and a key rotation propagates without waiting
	// for log traffic.
	ExportAuthKeys func() (data []byte, gen uint64)
	// InstallAuthKeys, when set, installs a shipped verify-key set on a
	// follower (keymgmt.PublicKeySet.Install). Installs arrive in stream
	// order from the current leader; the node layer additionally orders
	// them by (leader epoch, generation) so a stale set never clobbers a
	// newer one across leadership changes.
	InstallAuthKeys func(data []byte) error

	// HeartbeatInterval paces leader heartbeats (default 50ms);
	// ElectionTimeout is how long silence means a dead leader and how
	// much quorum staleness a leader tolerates before fencing itself
	// (default 4× heartbeat).
	HeartbeatInterval time.Duration
	ElectionTimeout   time.Duration
	// DialTimeout bounds one connection attempt (default ElectionTimeout).
	DialTimeout time.Duration
	// SendQueue bounds each follower link's outbound queue; a follower
	// too slow to drain it is evicted (default 64).
	SendQueue int
	// BatchRecords caps how many records ship in one message (default 128).
	BatchRecords int

	// Dial overrides the transport dialer (tests inject partitions).
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

func (c *Config) heartbeat() time.Duration {
	if c.HeartbeatInterval > 0 {
		return c.HeartbeatInterval
	}
	return 50 * time.Millisecond
}

func (c *Config) electionTimeout() time.Duration {
	if c.ElectionTimeout > 0 {
		return c.ElectionTimeout
	}
	return 4 * c.heartbeat()
}

func (c *Config) dialTimeout() time.Duration {
	if c.DialTimeout > 0 {
		return c.DialTimeout
	}
	return c.electionTimeout()
}

func (c *Config) sendQueue() int {
	if c.SendQueue > 0 {
		return c.SendQueue
	}
	return 64
}

func (c *Config) batchRecords() int {
	if c.BatchRecords > 0 {
		return c.BatchRecords
	}
	return 128
}

// Stats is a point-in-time snapshot for debugz.
type Stats struct {
	NodeID     string
	Role       string
	Epoch      uint64
	TailEpoch  uint64
	LeaderID   string
	CommitLSN  uint64
	DurableLSN uint64
	AppliedLSN uint64
	Elections  uint64
	Failovers  uint64
	Evictions  uint64
	Followers  map[string]FollowerStat
}

// FollowerStat describes one replica link from the leader's side.
type FollowerStat struct {
	AckedLSN  uint64
	QueueLen  int
	LastHeard time.Duration
}

// Node is one cluster member. Start launches its background loops; Stop
// tears them down.
type Node struct {
	cfg    Config
	quorum int

	mu       sync.Mutex
	role     Role        // seclint:guardedby mu
	epoch    uint64      // seclint:guardedby mu
	leaderID string      // seclint:guardedby mu
	commit   uint64      // seclint:guardedby mu
	applied  uint64      // seclint:guardedby mu
	applyCur *wal.Cursor // seclint:guardedby mu
	applying bool        // seclint:guardedby mu
	// applierGen counts SetApplier swaps: the apply loop releases mu
	// around Applier.Apply, and a swap in that window (demotion) makes
	// the old applier's position meaningless. Appliers themselves need
	// not be comparable (ApplierFuncs is not), so the generation is the
	// identity.
	applierGen uint64 // seclint:guardedby mu
	// votedEpoch and tailEpoch mirror durableMeta; saveMetaLocked must
	// succeed before either is acted on. epochStart is the leader's
	// durable LSN at promotion: the commit watermark may not advance
	// until a quorum has replicated through it.
	votedEpoch uint64 // seclint:guardedby mu
	tailEpoch  uint64 // seclint:guardedby mu
	epochStart uint64 // seclint:guardedby mu
	// links and acked are non-empty only while leading.
	links map[string]*link  // seclint:guardedby mu
	acked map[string]uint64 // seclint:guardedby mu
	// commitCh is closed and replaced whenever the commit watermark or
	// the role changes — the broadcast WaitCommitted and pumps wait on.
	commitCh chan struct{} // seclint:guardedby mu
	stopped  bool          // seclint:guardedby mu

	// leaderAt is the promotion instant: the fencing check treats it as
	// "heard from everyone now", so a fresh leader gets one election
	// timeout for its voters to come back as streaming followers before
	// quorum silence can demote it.
	leaderAt time.Time // seclint:guardedby mu

	// authKeysEpoch/authKeysGen order mint verify-key installs: a set is
	// installed only if its (leader epoch, keyring generation) is strictly
	// newer than the last one taken, so a stale leader's keys can never
	// clobber a newer leadership's.
	authKeysEpoch uint64 // seclint:guardedby mu
	authKeysGen   uint64 // seclint:guardedby mu

	elections uint64 // seclint:guardedby mu
	failovers uint64 // seclint:guardedby mu
	evictions uint64 // seclint:guardedby mu

	listener net.Listener
	breakers map[string]*resilience.Breaker
	wg       sync.WaitGroup
	stopCtx  context.Context
	stopFn   context.CancelFunc
}

// NewNode validates cfg and builds a node; Start brings it online.
func NewNode(cfg Config) (*Node, error) {
	if cfg.NodeID == "" {
		return nil, fmt.Errorf("replication: NodeID required")
	}
	if cfg.WAL == nil {
		return nil, fmt.Errorf("replication: WAL required")
	}
	if cfg.Identity == nil {
		return nil, fmt.Errorf("replication: Identity required")
	}
	n := &Node{
		cfg:      cfg,
		quorum:   (len(cfg.Peers)+1)/2 + 1,
		commitCh: make(chan struct{}),
		links:    make(map[string]*link),
		acked:    make(map[string]uint64),
		breakers: make(map[string]*resilience.Breaker),
		applied:  cfg.AppliedLSN,
	}
	if cfg.MetaStore != nil {
		m, err := loadMeta(cfg.MetaStore)
		if err != nil {
			return nil, err
		}
		// seclint:locked constructor: the node is not shared yet
		n.epoch, n.votedEpoch, n.tailEpoch = m.Epoch, m.VotedEpoch, m.TailEpoch
	}
	for id := range cfg.Peers {
		n.breakers[id] = resilience.NewBreaker(resilience.BreakerConfig{
			FailureThreshold: 3,
			Cooldown:         cfg.electionTimeout(),
			IsFailure:        func(err error) bool { return err != nil },
		})
	}
	return n, nil
}

// Start opens the listener and launches the accept and role loops.
func (n *Node) Start() error {
	l := n.cfg.Listener
	if l == nil {
		var err error
		l, err = net.Listen("tcp", n.cfg.Addr)
		if err != nil {
			return fmt.Errorf("replication: listen %s: %w", n.cfg.Addr, err)
		}
	}
	n.listener = l
	n.stopCtx, n.stopFn = context.WithCancel(context.Background())
	n.wg.Add(2)
	go n.acceptLoop()
	go n.roleLoop()
	return nil
}

// Addr returns the bound listen address.
func (n *Node) Addr() string {
	if n.listener == nil {
		return n.cfg.Addr
	}
	return n.listener.Addr().String()
}

// Stop tears the node down: demotes it, closes every link and waits for
// the background loops. Safe to call more than once, and on a node that
// was never started (or whose Start failed before listening).
func (n *Node) Stop() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	// seclint:locked the unlock above is in the returning branch; the lock is still held here
	n.stopped = true
	n.stepDownLocked("stop")
	n.mu.Unlock()
	if n.stopFn != nil {
		n.stopFn()
	}
	if n.listener != nil {
		n.listener.Close()
	}
	n.wg.Wait()
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf("[%s] "+format, append([]any{n.cfg.NodeID}, args...)...)
	}
}

// Role returns the node's current role.
func (n *Node) Role() Role {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role
}

// Epoch returns the highest epoch the node has observed.
func (n *Node) Epoch() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch
}

// LeaderID returns the node the cluster currently follows ("" if unknown).
func (n *Node) LeaderID() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leaderID
}

// CommitLSN returns the cluster commit watermark as this node knows it.
func (n *Node) CommitLSN() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.commit
}

// Snapshot returns current stats for debugz.
func (n *Node) Snapshot() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := Stats{
		NodeID:     n.cfg.NodeID,
		Role:       n.role.String(),
		Epoch:      n.epoch,
		TailEpoch:  n.tailEpoch,
		LeaderID:   n.leaderID,
		CommitLSN:  n.commit,
		DurableLSN: n.cfg.WAL.DurableLSN(),
		AppliedLSN: n.applied,
		Elections:  n.elections,
		Failovers:  n.failovers,
		Evictions:  n.evictions,
		Followers:  make(map[string]FollowerStat, len(n.links)),
	}
	now := time.Now()
	for id, l := range n.links {
		s.Followers[id] = FollowerStat{
			AckedLSN:  n.acked[id],
			QueueLen:  len(l.outbox),
			LastHeard: now.Sub(l.lastHeard()),
		}
	}
	return s
}

// WaitCommitted blocks until the cluster commit watermark reaches lsn —
// the replication half of a client's durability verdict. A nil return
// means a quorum of nodes holds the record durably; ErrNotLeader means
// leadership was lost first and the commit MUST NOT be acknowledged.
func (n *Node) WaitCommitted(ctx context.Context, lsn uint64) error {
	for {
		n.mu.Lock()
		if n.commit >= lsn {
			n.mu.Unlock()
			return nil
		}
		// seclint:locked unlocks above are in returning branches; the lock is held through here
		if n.stopped {
			n.mu.Unlock()
			return ErrStopped
		}
		// seclint:locked unlocks above are in returning branches; the lock is held through here
		if n.role != LeaderRole {
			n.mu.Unlock()
			return ErrNotLeader
		}
		// seclint:locked unlocks above are in returning branches; the lock is held through here
		ch := n.commitCh
		n.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// SetApplier replaces the node's applier and its position — the demote
// path: a promoted reldb.Follower is dead once it hands its database
// over, so an ex-leader rejoining as a follower installs a freshly opened
// one (reldb.OpenFollower re-reads the local WAL, hence appliedLSN is its
// LastLSN again).
func (n *Node) SetApplier(a Applier, appliedLSN uint64) {
	n.mu.Lock()
	n.cfg.Applier = a
	n.applierGen++
	n.applied = appliedLSN
	n.applyCur = nil
	n.mu.Unlock()
}

// broadcastLocked wakes everything waiting on commit/role changes.
//
// seclint:locked caller holds n.mu
func (n *Node) broadcastLocked() {
	close(n.commitCh)
	n.commitCh = make(chan struct{})
}

// advanceCommitLocked recomputes the quorum commit watermark from the
// leader's own durable position and the follower acks. The watermark
// never retreats, and it never advances to a position below epochStart:
// records older than the current leadership commit only once a quorum
// has replicated the leader's entire promotion-time log — Raft's rule
// that prior-term entries are committed indirectly, via current-term
// replication, never by counting replicas of the old entries alone. A
// follower acking a position at or past epochStart has durably stamped
// its tail with this epoch first (see advanceTailEpoch), which is what
// lets a later election order that log above any stale-epoch tail.
//
// seclint:locked caller holds n.mu
func (n *Node) advanceCommitLocked() {
	positions := make([]uint64, 0, len(n.acked)+1)
	positions = append(positions, n.cfg.WAL.DurableLSN())
	for _, lsn := range n.acked {
		positions = append(positions, lsn)
	}
	sort.Slice(positions, func(i, j int) bool { return positions[i] > positions[j] })
	if len(positions) < n.quorum {
		return
	}
	c := positions[n.quorum-1]
	if c < n.epochStart {
		// Quorum-durable, but possibly only on logs that have not yet
		// caught up to this leadership; committing here is the
		// phantom-commit hazard a failover could roll back.
		return
	}
	if c > n.commit {
		n.commit = c
		n.broadcastLocked()
	}
}

// setCommit adopts the leader's commit watermark on a follower and applies
// newly covered records.
func (n *Node) setCommit(c uint64) error {
	n.mu.Lock()
	if c > n.commit {
		n.commit = c
		n.broadcastLocked()
	}
	n.mu.Unlock()
	return n.applyCommitted()
}

// applyCommitted feeds the applier every durable record at or below the
// commit watermark, in LSN order, through a cursor on the node's own WAL.
func (n *Node) applyCommitted() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.applyCommittedLocked()
}

// seclint:locked caller holds n.mu
func (n *Node) applyCommittedLocked() error {
	if n.role == LeaderRole {
		// The leader's state machine is the promoted database itself — it
		// produced these records. Track the position, apply nothing.
		if n.cfg.Applier != nil && n.commit > n.applied {
			n.applied = n.commit
			n.applyCur = nil
		}
		return nil
	}
	return n.applyToLocked(n.commit)
}

// applyToLocked feeds the applier every durable record in (applied,
// upTo], in LSN order, through a cursor on the node's own WAL. n.mu is
// released around each Applier.Apply call — a slow or re-entrant applier
// must not block fencing, ack processing or WaitCommitted waiters — so
// the loop re-validates its position after every reacquire and yields to
// SetApplier swaps. Concurrent callers coalesce: if an apply loop is
// already in flight the call returns immediately and the running loop
// picks up any commit advance on its next iteration.
//
// seclint:locked caller holds n.mu (released/reacquired around applier calls below)
func (n *Node) applyToLocked(upTo uint64) error {
	if n.cfg.Applier == nil || n.applying {
		return nil
	}
	n.applying = true
	defer func() { n.applying = false }()
	for n.applied < upTo {
		if n.applyCur == nil {
			cur, err := n.cfg.WAL.OpenCursor(n.applied)
			if err != nil {
				return fmt.Errorf("replication: apply cursor: %w", err)
			}
			n.applyCur = cur
		}
		rec, ok, err := n.applyCur.Next()
		if err != nil {
			n.applyCur = nil
			return fmt.Errorf("replication: apply read: %w", err)
		}
		if !ok {
			return nil
		}
		if rec.LSN > upTo {
			// The cursor ran ahead of the target (it was reset by a
			// rewind); stop here, the position re-synchronizes below.
			n.applyCur = nil
			return nil
		}
		if rec.LSN != n.applied+1 {
			// A rewind replayed earlier records; skip what is already
			// applied.
			if rec.LSN <= n.applied {
				continue
			}
			n.applyCur = nil
			return fmt.Errorf("replication: apply gap: at %d, next record %d", n.applied, rec.LSN)
		}
		applier, gen := n.cfg.Applier, n.applierGen
		n.mu.Unlock()
		applyErr := applier.Apply(rec.LSN, rec.Payload)
		n.mu.Lock()
		if applyErr != nil {
			return fmt.Errorf("replication: apply lsn %d: %w", rec.LSN, applyErr)
		}
		if n.applierGen != gen {
			// SetApplier swapped the state machine while the lock was
			// released (demotion); its position is authoritative now.
			return nil
		}
		n.applied = rec.LSN
	}
	return nil
}

// dial opens a secchan client channel to peer, gated by its breaker.
func (n *Node) dial(peer string, cfg secchan.Config) (*secchan.Channel, error) {
	addr, ok := n.cfg.Peers[peer]
	if !ok {
		return nil, fmt.Errorf("replication: unknown peer %q", peer)
	}
	key, ok := n.cfg.PeerKeys[peer]
	if !ok {
		return nil, fmt.Errorf("replication: no identity key for peer %q", peer)
	}
	br := n.breakers[peer]
	if err := br.Allow(); err != nil {
		return nil, fmt.Errorf("replication: peer %s: %w", peer, err)
	}
	dialer := n.cfg.Dial
	if dialer == nil {
		dialer = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	conn, err := dialer(addr, n.cfg.dialTimeout())
	if err != nil {
		br.Record(err)
		return nil, fmt.Errorf("replication: dial %s: %w", peer, err)
	}
	ch, err := secchan.ClientConfig(conn, key, cfg)
	if err != nil {
		conn.Close()
		br.Record(err)
		return nil, fmt.Errorf("replication: handshake with %s: %w", peer, err)
	}
	br.Record(nil)
	return ch, nil
}

// jitteredBackoff spreads re-election attempts so a rebooted cluster does
// not stampede: uniform in [d/2, d). The same thundering-herd defense the
// resilience retry policy applies to its backoff.
func jitteredBackoff(d time.Duration) time.Duration {
	return d/2 + time.Duration(rand.Int63n(int64(d/2)))
}

// roleLoop is the node's main state machine: elect, then serve the chosen
// role until it fails, then elect again.
func (n *Node) roleLoop() {
	defer n.wg.Done()
	for {
		n.mu.Lock()
		stopped := n.stopped
		role := n.role
		leader := n.leaderID
		n.mu.Unlock()
		if stopped {
			return
		}
		switch role {
		case Candidate:
			n.runElection()
		case LeaderRole:
			n.runLeader()
		case FollowerRole:
			n.runFollower(leader)
		}
		select {
		case <-n.stopCtx.Done():
			return
		case <-time.After(jitteredBackoff(n.cfg.heartbeat())):
		}
	}
}

// stepDownLocked abandons leadership (or a follower link) and returns the
// node to Candidate. WaitCommitted waiters wake and observe ErrNotLeader.
//
// seclint:locked caller holds n.mu
func (n *Node) stepDownLocked(why string) {
	if n.role == LeaderRole {
		n.logf("stepping down: %s", why)
		if n.cfg.OnDemote != nil {
			// Run without the lock (the hook may call SetApplier), but
			// tracked by the WaitGroup: Stop must not return — and the
			// caller must not tear down the WAL or applier — while the
			// demote hook is still rebuilding them.
			n.wg.Add(1)
			go func() {
				defer n.wg.Done()
				n.cfg.OnDemote()
			}()
		}
	}
	n.role = Candidate
	n.leaderID = ""
	for id, l := range n.links {
		l.close()
		delete(n.links, id)
		delete(n.acked, id)
	}
	n.broadcastLocked()
}
