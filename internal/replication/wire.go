package replication

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"

	"webdbsec/internal/wal"
)

// Wire protocol: JSON messages over secchan records. Every message carries
// the sender's epoch so a stale leader's traffic is recognizable the
// moment a newer election has happened. The flows are:
//
//	state/stateResp   election poll (any role answers)
//	vote/voteResp     candidacy: an explicit quorum vote claims an epoch
//	join → joinResp   authenticated catch-up negotiation
//	  plan "stream":   leader streams from Common (hashes matched)
//	  plan "truncate": follower truncates its tail to Common first
//	  plan "resync":   a snap message follows (divergence or compaction)
//	  plan "reject":   not leader / failed credential check
//	joinAck           follower's verdict on the hash comparison
//	snap/ack          full-state resync, hash-verified
//	recs/ack          live shipping: record batches and durability acks
//	hb/ack            heartbeat carrying the commit watermark
type msg struct {
	T     string `json:"t"`
	Node  string `json:"node,omitempty"`
	Epoch uint64 `json:"epoch,omitempty"`

	// join: the follower's log position and its wallet.
	LastLSN    uint64          `json:"last,omitempty"`
	AppliedLSN uint64          `json:"applied,omitempty"`
	SnapLSN    uint64          `json:"snap,omitempty"`
	Wallet     json.RawMessage `json:"wallet,omitempty"`

	// joinResp / joinAck: the negotiated catch-up plan.
	Plan   string `json:"plan,omitempty"`
	Reason string `json:"reason,omitempty"`
	Leader string `json:"leader,omitempty"`
	From   uint64 `json:"from,omitempty"`
	Common uint64 `json:"common,omitempty"`
	Hash   []byte `json:"hash,omitempty"`
	OK     bool   `json:"ok,omitempty"`

	// snap: full-state resync payload.
	SnapData []byte `json:"snapdata,omitempty"`

	// recs: a shipped batch plus the cluster commit watermark.
	Recs   []wireRec `json:"recs,omitempty"`
	Commit uint64    `json:"commit,omitempty"`

	// ack / stateResp: durability positions.
	LSN        uint64 `json:"lsn,omitempty"`
	DurableLSN uint64 `json:"durable,omitempty"`
	Role       string `json:"role,omitempty"`

	// vote / stateResp: the epoch of the leadership whose log this
	// node's tail is a verified prefix of — candidate logs are ordered by
	// (TailEpoch, DurableLSN), never by LSN alone, so a long uncommitted
	// tail from an old epoch can never outrank newer-epoch committed
	// records.
	TailEpoch uint64 `json:"tailepoch,omitempty"`
	// joinResp: the leader's durable LSN at its promotion. A follower
	// counts its tail as TailEpoch=Epoch only once its own durable
	// position covers this — i.e. once its log is a full prefix of
	// everything the leader held when it was elected.
	EpochStart uint64 `json:"estart,omitempty"`

	// joinResp / hb: the auth-token mint verify-key set
	// (keymgmt.MintKeyring.ExportPublic) and the keyring generation that
	// produced it. Shipped in every joinResp and re-shipped in a heartbeat
	// when the generation moves, so leader-minted tokens verify on every
	// replica and rotations propagate promptly.
	Keys    []byte `json:"keys,omitempty"`
	KeysGen uint64 `json:"keysgen,omitempty"`
}

type wireRec struct {
	LSN     uint64 `json:"lsn"`
	Payload []byte `json:"p"`
}

func encodeMsg(m *msg) ([]byte, error) {
	b, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("replication: encode %s: %w", m.T, err)
	}
	return b, nil
}

func decodeMsg(b []byte) (*msg, error) {
	var m msg
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("replication: decode message: %w", err)
	}
	return &m, nil
}

// hashRange computes the chain hash of the records in (from, to] of w:
// SHA-256 over every (LSN, payload) pair in order. Leader and follower
// compute it over the overlapping span of their logs during the join
// handshake — equal hashes prove the histories agree byte-for-byte before
// any new WAL byte ships.
func hashRange(w *wal.WAL, from, to uint64) ([]byte, error) {
	h := sha256.New()
	if to <= from {
		return h.Sum(nil), nil
	}
	c, err := w.OpenCursor(from)
	if err != nil {
		return nil, err
	}
	var lsnBuf [8]byte
	next := from + 1
	for next <= to {
		rec, ok, err := c.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("replication: hash range (%d,%d]: log ends at %d", from, to, next-1)
		}
		binary.BigEndian.PutUint64(lsnBuf[:], rec.LSN)
		h.Write(lsnBuf[:])
		h.Write(rec.Payload)
		next = rec.LSN + 1
	}
	return h.Sum(nil), nil
}

// snapHash is the integrity hash shipped alongside a resync snapshot.
func snapHash(data []byte, lsn uint64) []byte {
	h := sha256.New()
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], lsn)
	h.Write(b[:])
	h.Write(data)
	return h.Sum(nil)
}
