package replication

import (
	"encoding/json"
	"fmt"

	"webdbsec/internal/wal"
)

// metaName is the election-state file inside Config.MetaStore. The name
// deliberately matches nothing the WAL recognises, so the store can share
// the WAL's own wal.FS root: wal.Open ignores unknown names.
const metaName = "replmeta"

// durableMeta is the election state a node must not forget across a
// restart. It is the replication analog of Raft's persisted
// (currentTerm, votedFor) pair plus the last log term:
//
//   - VotedEpoch: the highest epoch this node granted a vote in — itself
//     included. One grant per epoch is what makes an epoch claimable by
//     at most one leader; a node that forgot its grant could vote twice
//     in the same epoch after a crash and hand two candidates the same
//     quorum.
//   - TailEpoch: the epoch of the leadership this node's log tail is a
//     verified full prefix of (stamped at promotion, or on a follower
//     once its durable position covers the leader's epoch-start LSN).
//     Elections order candidate logs by (TailEpoch, DurableLSN); losing
//     the stamp would let a stale long tail outrank committed records.
//   - Epoch: the highest epoch observed. Strictly monotone; keeping it
//     durable spares a restarted node from re-learning it through a
//     rejected round, but VotedEpoch is what carries the safety.
//
// The file is replaced atomically via wal.FS.WriteTrunc (write temporary,
// fsync, rename), so a crash leaves either the old or the new state.
type durableMeta struct {
	Epoch      uint64 `json:"epoch"`
	VotedEpoch uint64 `json:"voted"`
	TailEpoch  uint64 `json:"tail"`
}

// loadMeta reads the persisted election state from fs, returning the zero
// state when no file exists yet (a brand-new node).
func loadMeta(fs wal.FS) (durableMeta, error) {
	var m durableMeta
	names, err := fs.List()
	if err != nil {
		return m, fmt.Errorf("replication: list meta store: %w", err)
	}
	found := false
	for _, name := range names {
		if name == metaName {
			found = true
			break
		}
	}
	if !found {
		return m, nil
	}
	raw, err := fs.ReadFile(metaName)
	if err != nil {
		return m, fmt.Errorf("replication: read %s: %w", metaName, err)
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		// A corrupt state file must not silently become a fresh one: a
		// node that forgets its vote can grant the same epoch twice.
		return m, fmt.Errorf("replication: %s corrupt: %w", metaName, err)
	}
	return m, nil
}

// saveMetaLocked persists the node's current (epoch, votedEpoch,
// tailEpoch) triple. It MUST succeed before the node acts on the state it
// records — before a vote reply leaves the node, before a promotion
// completes, before a catch-up ack claims the new tail epoch. With no
// MetaStore configured the state is memory-only (Config documents the
// reduced guarantee).
//
// seclint:locked caller holds n.mu
func (n *Node) saveMetaLocked() error {
	if n.cfg.MetaStore == nil {
		return nil
	}
	raw, err := json.Marshal(durableMeta{
		Epoch:      n.epoch,
		VotedEpoch: n.votedEpoch,
		TailEpoch:  n.tailEpoch,
	})
	if err != nil {
		return fmt.Errorf("replication: encode %s: %w", metaName, err)
	}
	if err := n.cfg.MetaStore.WriteTrunc(metaName, raw); err != nil {
		return fmt.Errorf("replication: persist %s: %w", metaName, err)
	}
	return nil
}
