package replication_test

import (
	"context"
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"webdbsec/internal/credential"
	"webdbsec/internal/keymgmt"
	"webdbsec/internal/reldb"
	"webdbsec/internal/replication"
	"webdbsec/internal/resilience/faultinject"
	"webdbsec/internal/secchan"
	"webdbsec/internal/wal"
)

// Test harness: an in-process cluster over loopback TCP with an
// injectable, partitionable dialer, MemFS-backed WALs (so leaders can be
// crashed at byte offsets), reldb followers as appliers, and promote/
// demote hooks mirroring what cmd/securedb wires up.

const testSecret = "cluster-test-secret"

// nodeKey derives a node's ed25519 identity deterministically from the
// shared test secret, so every member can compute every peer's public key.
func nodeKey(id string) ed25519.PrivateKey {
	seed := sha256.Sum256([]byte(testSecret + "|" + id))
	return ed25519.NewKeyFromSeed(seed[:])
}

type member struct {
	id string
	fs *faultinject.MemFS

	// ring/keyset are the auth-token mint keys (cluster.mintKeys mode):
	// the ring signs when this member leads, the keyset receives whatever
	// set the current leader ships. Both survive restarts of the member.
	ring   *keymgmt.MintKeyring
	keyset *keymgmt.PublicKeySet

	mu       sync.Mutex
	w        *wal.WAL
	node     *replication.Node
	follower *reldb.Follower
	db       *reldb.Database // non-nil while leader
	running  bool
}

type cluster struct {
	t       *testing.T
	auth    *credential.Authority
	members map[string]*member
	addrs   map[string]string // id -> listen addr
	addrID  map[string]string // listen addr -> id

	// walletOverride substitutes a member's join wallet (e.g. an invalid
	// one) before start(); sendQueue overrides Config.SendQueue when > 0.
	walletOverride map[string]*credential.Wallet
	sendQueue      int
	// applierFor, when set, replaces the default reldb follower state
	// machine — used by tests replicating other appliers (the audit WAL,
	// the xmldoc store). Promote/demote hooks are skipped in this mode, so
	// leadership is role-only and member.db stays nil.
	applierFor func(m *member) (replication.Applier, uint64)
	// mintKeys gives every member an auth-token mint keyring and a
	// replicated PublicKeySet, wired through ExportAuthKeys/InstallAuthKeys.
	mintKeys bool

	mu      sync.Mutex
	blocked map[string]map[string]bool
	conns   []pairConn
}

type pairConn struct {
	a, b string
	conn net.Conn
}

// newCluster builds (but does not start) n members with pre-bound
// listeners so every config knows every peer address up front.
func newCluster(t *testing.T, ids ...string) *cluster {
	t.Helper()
	auth, err := credential.NewAuthority("cluster-ca")
	if err != nil {
		t.Fatalf("authority: %v", err)
	}
	c := &cluster{
		t:       t,
		auth:    auth,
		members: make(map[string]*member),
		addrs:   make(map[string]string),
		addrID:  make(map[string]string),
		blocked: make(map[string]map[string]bool),
	}
	for _, id := range ids {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		addr := l.Addr().String()
		l.Close() // re-bound by start(); we only need a stable port
		c.addrs[id] = addr
		c.addrID[addr] = id
		c.members[id] = &member{id: id, fs: faultinject.NewMemFS()}
	}
	t.Cleanup(c.stopAll)
	return c
}

func (c *cluster) stopAll() {
	for _, id := range c.sorted() {
		c.stop(id)
	}
}

func (c *cluster) sorted() []string {
	out := make([]string, 0, len(c.members))
	for id := range c.members {
		out = append(out, id)
	}
	for i := range out {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

// dialer returns the partition-aware transport dialer for one member.
func (c *cluster) dialer(from string) func(addr string, timeout time.Duration) (net.Conn, error) {
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		to := c.addrID[addr]
		c.mu.Lock()
		cut := c.blocked[from][to] || c.blocked[to][from]
		c.mu.Unlock()
		if cut {
			return nil, fmt.Errorf("partition: %s cannot reach %s", from, to)
		}
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		c.mu.Lock()
		c.conns = append(c.conns, pairConn{a: from, b: to, conn: conn})
		c.mu.Unlock()
		return conn, nil
	}
}

// partition cuts a↔b: future dials fail and existing connections die.
func (c *cluster) partition(a, b string) {
	c.mu.Lock()
	if c.blocked[a] == nil {
		c.blocked[a] = make(map[string]bool)
	}
	c.blocked[a][b] = true
	var kill []net.Conn
	keep := c.conns[:0]
	for _, pc := range c.conns {
		if (pc.a == a && pc.b == b) || (pc.a == b && pc.b == a) {
			kill = append(kill, pc.conn)
			continue
		}
		keep = append(keep, pc)
	}
	c.conns = keep
	c.mu.Unlock()
	for _, conn := range kill {
		conn.Close()
	}
}

// isolate partitions id away from every other member.
func (c *cluster) isolate(id string) {
	for _, other := range c.sorted() {
		if other != id {
			c.partition(id, other)
		}
	}
}

// heal removes every partition.
func (c *cluster) heal() {
	c.mu.Lock()
	c.blocked = make(map[string]map[string]bool)
	c.mu.Unlock()
}

// wallet issues a replica credential the join policy accepts.
func (c *cluster) wallet(id string) *credential.Wallet {
	w := credential.NewWallet(id)
	if err := w.Add(c.auth.Issue("replica", id, map[string]string{"tier": "trusted"})); err != nil {
		c.t.Fatalf("wallet: %v", err)
	}
	return w
}

func (c *cluster) joinVerifier() *credential.Verifier {
	v := credential.NewVerifier()
	v.TrustAuthority(c.auth)
	return v
}

var joinPolicy = credential.MustCompile(`replica.tier = 'trusted'`)

// start (re)opens a member from its MemFS — the restart-after-crash path —
// and brings its node online.
func (c *cluster) start(id string) *member {
	c.t.Helper()
	m := c.members[id]
	w, err := wal.Open(wal.Options{FS: m.fs, Policy: wal.SyncAlways})
	if err != nil {
		c.t.Fatalf("start %s: wal: %v", id, err)
	}
	m.mu.Lock()
	m.w = w
	m.mu.Unlock()
	var f *reldb.Follower
	var applier replication.Applier
	var appliedLSN uint64
	if c.applierFor != nil {
		applier, appliedLSN = c.applierFor(m)
	} else {
		f, err = reldb.OpenFollower(w)
		if err != nil {
			c.t.Fatalf("start %s: follower: %v", id, err)
		}
		applier, appliedLSN = f, f.AppliedLSN()
	}
	l, err := net.Listen("tcp", c.addrs[id])
	if err != nil {
		c.t.Fatalf("start %s: listen: %v", id, err)
	}
	peers := make(map[string]string)
	keys := make(map[string]ed25519.PublicKey)
	for pid, addr := range c.addrs {
		if pid == id {
			continue
		}
		peers[pid] = addr
		keys[pid] = nodeKey(pid).Public().(ed25519.PublicKey)
	}
	wallet := c.wallet(id)
	if ow, ok := c.walletOverride[id]; ok {
		wallet = ow
	}
	cfg := replication.Config{
		NodeID:            id,
		Listener:          l,
		Peers:             peers,
		Identity:          nodeKey(id),
		PeerKeys:          keys,
		Wallet:            wallet,
		Verifier:          c.joinVerifier(),
		JoinPolicy:        joinPolicy,
		SendQueue:         c.sendQueue,
		WAL:               w,
		MetaStore:         m.fs,
		Applier:           applier,
		AppliedLSN:        appliedLSN,
		HeartbeatInterval: 20 * time.Millisecond,
		ElectionTimeout:   150 * time.Millisecond,
		Dial:              c.dialer(id),
		Logf:              c.t.Logf,
	}
	if c.mintKeys {
		if m.ring == nil {
			r, err := keymgmt.NewMintKeyring(2)
			if err != nil {
				c.t.Fatalf("start %s: keyring: %v", id, err)
			}
			m.ring = r
		}
		if m.keyset == nil {
			m.keyset = keymgmt.NewPublicKeySet()
		}
		cfg.ExportAuthKeys = m.ring.ExportPublic
		cfg.InstallAuthKeys = m.keyset.Install
	}
	if c.applierFor == nil {
		cfg.OnLeader = func() {
			m.mu.Lock()
			defer m.mu.Unlock()
			db, err := m.follower.Promote()
			if err != nil {
				c.t.Errorf("%s: promote: %v", id, err)
				return
			}
			m.db = db
		}
		cfg.OnDemote = func() {
			m.mu.Lock()
			defer m.mu.Unlock()
			m.db = nil
			nf, err := reldb.OpenFollower(m.w)
			if err != nil {
				if m.fs.Crashed() {
					// A node whose disk died can't rebuild a follower; the
					// test restarts it from its surviving WAL instead.
					c.t.Logf("%s: reopen follower after injected crash: %v", id, err)
				} else {
					c.t.Errorf("%s: reopen follower: %v", id, err)
				}
				return
			}
			m.follower = nf
			m.node.SetApplier(nf, nf.AppliedLSN())
		}
	}
	node, err := replication.NewNode(cfg)
	if err != nil {
		c.t.Fatalf("start %s: node: %v", id, err)
	}
	m.mu.Lock()
	m.w, m.follower, m.node, m.db, m.running = w, f, node, nil, true
	m.mu.Unlock()
	if err := node.Start(); err != nil {
		c.t.Fatalf("start %s: %v", id, err)
	}
	return m
}

func (c *cluster) startAll(ids ...string) {
	for _, id := range ids {
		c.start(id)
	}
}

// stop shuts a member down cleanly (node halt + WAL close).
func (c *cluster) stop(id string) {
	m := c.members[id]
	m.mu.Lock()
	running := m.running
	node, w := m.node, m.w
	m.running = false
	m.mu.Unlock()
	if !running {
		return
	}
	node.Stop()
	_ = w.Close()
}

// crash kills a member without any graceful teardown and drops everything
// its MemFS had not fsynced — the power-cut model.
func (c *cluster) crash(id string) {
	m := c.members[id]
	m.mu.Lock()
	running := m.running
	node := m.node
	m.running = false
	m.mu.Unlock()
	if running {
		node.Stop()
	}
	m.fs.Crash()
	m.fs = m.fs.AfterCrash(true)
}

// waitLeader polls until exactly one running member is leader with a
// promoted database, and returns it.
func (c *cluster) waitLeader(within time.Duration) *member {
	c.t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		var leader *member
		count := 0
		for _, m := range c.members {
			m.mu.Lock()
			running, node, db := m.running, m.node, m.db
			m.mu.Unlock()
			if !running || node == nil {
				continue
			}
			if node.Role() == replication.LeaderRole && (db != nil || c.applierFor != nil) {
				leader = m
				count++
			}
		}
		if count == 1 {
			return leader
		}
		time.Sleep(10 * time.Millisecond)
	}
	c.t.Fatalf("no unique leader within %v", within)
	return nil
}

// commit executes sql on the leader and waits for the cluster durability
// verdict. A nil return is the client ack.
func (m *member) commit(sql string) error {
	m.mu.Lock()
	db, node, w := m.db, m.node, m.w
	m.mu.Unlock()
	if db == nil {
		return fmt.Errorf("%s: not leader", m.id)
	}
	if _, err := db.Exec(sql); err != nil {
		return err
	}
	if err := db.Log().Err(); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return node.WaitCommitted(ctx, w.LastLSN())
}

// rows reads table kv as a map through the member's current database
// (promoted leader db or follower materialization).
func (m *member) rows(t *testing.T) map[string]int64 {
	t.Helper()
	m.mu.Lock()
	db := m.db
	if db == nil {
		db = m.follower.DB()
	}
	m.mu.Unlock()
	if _, ok := db.Table("kv"); !ok {
		return nil
	}
	res, err := db.Exec("SELECT k, v FROM kv")
	if err != nil {
		t.Fatalf("%s: SELECT: %v", m.id, err)
	}
	out := make(map[string]int64, len(res.Rows))
	for _, r := range res.Rows {
		out[r[0].S] = r[1].I
	}
	return out
}

// reopenWAL opens a stopped member's WAL directly (for forging or
// inspecting its log between runs) and records it on the member.
func reopenWAL(t *testing.T, m *member) *wal.WAL {
	t.Helper()
	w, err := wal.Open(wal.Options{FS: m.fs, Policy: wal.SyncAlways})
	if err != nil {
		t.Fatalf("%s: reopen wal: %v", m.id, err)
	}
	return w
}

// stalledFollower is a hand-rolled replica client that completes the
// authenticated join handshake legitimately and then goes silent — the
// worst-behaved follower the eviction policy must handle.
type stalledFollower struct {
	conn net.Conn
	ch   *secchan.Channel
	done chan struct{}
}

func newStalledFollower(t *testing.T, c *cluster, id string, leader *member) *stalledFollower {
	t.Helper()
	conn, err := net.Dial("tcp", c.addrs[leader.id])
	if err != nil {
		t.Fatalf("stall dial: %v", err)
	}
	// A tiny receive buffer makes the kernel stop absorbing the stream
	// almost immediately once this client stops reading — otherwise
	// loopback socket buffers can soak up megabytes and the leader never
	// observes the follower as slow within the test's window.
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetReadBuffer(4096)
	}
	serverKey := nodeKey(leader.id).Public().(ed25519.PublicKey)
	ch, err := secchan.ClientConfig(conn, serverKey, secchan.Config{
		HandshakeTimeout: 2 * time.Second,
		WriteTimeout:     2 * time.Second,
		ReadTimeout:      10 * time.Second,
	})
	if err != nil {
		t.Fatalf("stall handshake: %v", err)
	}
	s := &stalledFollower{conn: conn, ch: ch}
	walletRaw, err := json.Marshal(c.wallet(id))
	if err != nil {
		t.Fatalf("stall wallet: %v", err)
	}
	join, err := json.Marshal(map[string]interface{}{
		"t":      "join",
		"node":   id,
		"epoch":  leader.node.Epoch(),
		"wallet": json.RawMessage(walletRaw),
	})
	if err != nil {
		t.Fatalf("stall join: %v", err)
	}
	if err := ch.Send(join); err != nil {
		t.Fatalf("stall send join: %v", err)
	}
	raw, err := ch.Receive()
	if err != nil {
		t.Fatalf("stall joinResp: %v", err)
	}
	var resp struct {
		T      string `json:"t"`
		Plan   string `json:"plan"`
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal(raw, &resp); err != nil || resp.T != "joinResp" {
		t.Fatalf("stall joinResp: %q err=%v", raw, err)
	}
	if resp.Plan == "reject" {
		t.Fatalf("stall join rejected: %s", resp.Reason)
	}
	ack, _ := json.Marshal(map[string]interface{}{"t": "joinAck", "node": id, "ok": true})
	if err := ch.Send(ack); err != nil {
		t.Fatalf("stall joinAck: %v", err)
	}
	// From here on: never read the stream, but keep sending stale acks so
	// the leader's liveness check stays happy — the bounded outbox is then
	// the only thing that can cut this link loose.
	s.done = make(chan struct{})
	go func() {
		keepalive, _ := json.Marshal(map[string]interface{}{"t": "ack", "node": id})
		tick := time.NewTicker(30 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-s.done:
				return
			case <-tick.C:
				if err := s.ch.Send(keepalive); err != nil {
					return
				}
			}
		}
	}()
	return s
}

func (s *stalledFollower) close() {
	close(s.done)
	s.ch.Close()
	s.conn.Close()
}

// waitConverged polls until every listed member's kv table equals want.
func (c *cluster) waitConverged(want map[string]int64, within time.Duration, ids ...string) {
	c.t.Helper()
	deadline := time.Now().Add(within)
	for {
		allEqual := true
		for _, id := range ids {
			got := c.members[id].rows(c.t)
			if len(got) != len(want) {
				allEqual = false
				break
			}
			for k, v := range want {
				if got[k] != v {
					allEqual = false
					break
				}
			}
		}
		if allEqual {
			return
		}
		if time.Now().After(deadline) {
			for _, id := range ids {
				c.t.Logf("%s: rows=%v stats=%+v", id, c.members[id].rows(c.t), c.members[id].node.Snapshot())
			}
			c.t.Fatalf("members %v did not converge to %v within %v", ids, want, within)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
