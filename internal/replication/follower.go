package replication

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"webdbsec/internal/secchan"
)

// runFollower dials the leader, performs the authenticated join handshake
// and consumes the replica stream until the link dies (leader silent for
// the election timeout, eviction, connection error) — then the node
// returns to Candidate and re-elects. The node's own WAL position is the
// rejoin anchor: a follower that crashed mid-catch-up resumes exactly at
// its last durable record.
func (n *Node) runFollower(leader string) {
	err := n.followOnce(leader)
	n.mu.Lock()
	if n.role == FollowerRole && n.leaderID == leader {
		n.stepDownLocked("leader link lost")
	}
	n.mu.Unlock()
	if err != nil {
		n.logf("follow %s: %v", leader, err)
	}
}

func (n *Node) followOnce(leader string) error {
	cfg := secchan.Config{
		HandshakeTimeout: n.cfg.dialTimeout(),
		// Heartbeats arrive every HeartbeatInterval; a Receive that trips
		// the election timeout means the leader is dead or partitioned
		// away, and the follower must re-elect.
		ReadTimeout:  n.cfg.electionTimeout(),
		WriteTimeout: n.cfg.electionTimeout(),
	}
	ch, err := n.dial(leader, cfg)
	if err != nil {
		return err
	}
	defer ch.Close()

	w := n.cfg.WAL
	_, snapLSN, _ := w.Snapshot()
	join := &msg{
		T:          "join",
		Node:       n.cfg.NodeID,
		Epoch:      n.Epoch(),
		LastLSN:    w.DurableLSN(),
		AppliedLSN: n.appliedLSN(),
		SnapLSN:    snapLSN,
	}
	if n.cfg.Wallet != nil {
		raw, err := json.Marshal(n.cfg.Wallet)
		if err != nil {
			return fmt.Errorf("replication: encode wallet: %w", err)
		}
		join.Wallet = raw
	}
	if err := n.send(ch, join); err != nil {
		return err
	}
	raw, err := ch.Receive()
	if err != nil {
		return err
	}
	resp, err := decodeMsg(raw)
	if err != nil {
		return err
	}
	if resp.T != "joinResp" {
		return fmt.Errorf("replication: unexpected %q during join", resp.T)
	}
	n.observeEpoch(resp.Epoch)
	n.installAuthKeys(resp.Keys, resp.KeysGen, resp.Epoch)
	switch resp.Plan {
	case "reject":
		return fmt.Errorf("replication: join rejected by %s: %s", leader, resp.Reason)
	case "stream", "truncate":
		ok, err := n.verifyJoinHash(resp)
		if err != nil {
			return err
		}
		if err := n.send(ch, &msg{T: "joinAck", Node: n.cfg.NodeID, OK: ok, LSN: resp.Common}); err != nil {
			return err
		}
		if !ok {
			// Histories diverge (or our applied state is past the leader's
			// truncation point): the leader ships a snapshot next.
			if err := n.receiveSnapshot(ch); err != nil {
				return err
			}
		} else if resp.Plan == "truncate" {
			// Our tail extends past the leader's log: the extra records
			// were never committed (commit requires the leader to hold
			// them), so cutting them cannot lose acknowledged data.
			if err := w.TruncateTo(resp.Common); err != nil {
				return fmt.Errorf("replication: truncate to %d: %w", resp.Common, err)
			}
		}
	case "resync":
		if err := n.send(ch, &msg{T: "joinAck", Node: n.cfg.NodeID, OK: false}); err != nil {
			return err
		}
		if err := n.receiveSnapshot(ch); err != nil {
			return err
		}
	default:
		return fmt.Errorf("replication: unknown join plan %q", resp.Plan)
	}
	return n.consume(ch, leader, resp.Epoch, resp.EpochStart)
}

// appliedLSN reads the applier position.
func (n *Node) appliedLSN() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.applied
}

// observeEpoch adopts a higher epoch seen in leader traffic, durably.
func (n *Node) observeEpoch(e uint64) {
	n.mu.Lock()
	if e > n.epoch {
		n.epoch = e
		if err := n.saveMetaLocked(); err != nil {
			n.logf("observe epoch: %v", err)
		}
	}
	n.mu.Unlock()
}

// advanceTailEpoch stamps this node's log tail with the leader's epoch
// once — and only once — durable, the position the follower is about to
// ack, covers epochStart, the leader's durable LSN at its promotion.
// From that point on the log is a verified full prefix of everything
// leader `epoch` was elected with, so it can never be missing a record
// committed at any earlier epoch; that is exactly the property elections
// rely on when they order candidates by (tail epoch, durable LSN). The
// stamp MUST be durable before any ack at or past epochStart leaves the
// node: the ack may complete a commit quorum, and a voter that then
// forgot its stamp could elect a stale tail over the record it helped
// commit. The caller passes the same durable value it acks — re-reading
// DurableLSN here would race group commit and let an unstamped ack past.
func (n *Node) advanceTailEpoch(epoch, epochStart, durable uint64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.tailEpoch >= epoch || durable < epochStart {
		return nil
	}
	prev := n.tailEpoch
	n.tailEpoch = epoch
	if err := n.saveMetaLocked(); err != nil {
		n.tailEpoch = prev
		return fmt.Errorf("replication: persist tail epoch %d: %w", epoch, err)
	}
	return nil
}

// installAuthKeys hands a shipped mint verify-key set to the deployment
// hook, ordered by (leader epoch, keyring generation): a set from an
// older leadership, or an older generation of the same one, is dropped —
// heartbeats from a stale leader must never roll the key set back.
func (n *Node) installAuthKeys(data []byte, gen, epoch uint64) {
	if n.cfg.InstallAuthKeys == nil || len(data) == 0 {
		return
	}
	n.mu.Lock()
	stale := epoch < n.authKeysEpoch || (epoch == n.authKeysEpoch && gen <= n.authKeysGen)
	if !stale {
		n.authKeysEpoch, n.authKeysGen = epoch, gen
	}
	n.mu.Unlock()
	if stale {
		return
	}
	if err := n.cfg.InstallAuthKeys(data); err != nil {
		n.logf("install auth key set gen %d: %v", gen, err)
	}
}

// verifyJoinHash recomputes the chain hash over the overlapping span and
// compares it to the leader's. A match proves the shared prefix is
// byte-identical; a mismatch (divergence) or an applied position past the
// truncation point forces a full resync instead.
func (n *Node) verifyJoinHash(resp *msg) (bool, error) {
	if n.appliedLSN() > resp.Common {
		// We materialized state past the leader's log end; truncation
		// cannot un-apply it, only a snapshot can.
		return false, nil
	}
	local, err := hashRange(n.cfg.WAL, resp.From, resp.Common)
	if err != nil {
		return false, nil // unreadable span: treat as divergence, resync
	}
	return bytes.Equal(local, resp.Hash), nil
}

// receiveSnapshot installs a leader snapshot: hash-verified, then written
// into the local WAL as its new origin, then handed to the applier.
func (n *Node) receiveSnapshot(ch *secchan.Channel) error {
	raw, err := ch.Receive()
	if err != nil {
		return err
	}
	m, err := decodeMsg(raw)
	if err != nil {
		return err
	}
	if m.T != "snap" {
		return fmt.Errorf("replication: expected snapshot, got %q", m.T)
	}
	if !bytes.Equal(snapHash(m.SnapData, m.LSN), m.Hash) {
		return fmt.Errorf("replication: snapshot hash mismatch at lsn %d", m.LSN)
	}
	if err := n.cfg.WAL.InstallSnapshot(m.SnapData, m.LSN); err != nil {
		return fmt.Errorf("replication: install snapshot: %w", err)
	}
	n.mu.Lock()
	n.applyCur = nil
	n.applied = m.LSN
	if m.LSN > n.commit {
		n.commit = m.LSN
		n.broadcastLocked()
	}
	n.mu.Unlock()
	if n.cfg.Applier != nil {
		if err := n.cfg.Applier.Restore(m.LSN, m.SnapData); err != nil {
			return fmt.Errorf("replication: restore snapshot: %w", err)
		}
	}
	return n.send(ch, &msg{T: "ack", Node: n.cfg.NodeID, LSN: m.LSN})
}

// consume is the follower's stream loop: append shipped records to the
// local WAL (the Append return is the durability verdict), stamp the
// tail epoch once the durable position covers the leader's epoch start,
// ack the position, and apply everything the commit watermark covers.
// The stamp strictly precedes the ack — see advanceTailEpoch.
func (n *Node) consume(ch *secchan.Channel, leader string, epoch, epochStart uint64) error {
	for {
		n.mu.Lock()
		live := n.role == FollowerRole && n.leaderID == leader && !n.stopped
		n.mu.Unlock()
		if !live {
			return nil
		}
		raw, err := ch.Receive()
		if err != nil {
			if err == io.EOF {
				return fmt.Errorf("replication: leader closed the link")
			}
			return err
		}
		m, err := decodeMsg(raw)
		if err != nil {
			return err
		}
		if m.Epoch < n.Epoch() {
			return fmt.Errorf("replication: stale leader epoch %d < %d", m.Epoch, n.Epoch())
		}
		n.observeEpoch(m.Epoch)
		n.installAuthKeys(m.Keys, m.KeysGen, m.Epoch)
		switch m.T {
		case "recs":
			for _, rec := range m.Recs {
				lsn, err := n.cfg.WAL.Append(rec.Payload)
				if err != nil {
					return fmt.Errorf("replication: append shipped lsn %d: %w", rec.LSN, err)
				}
				if lsn != rec.LSN {
					return fmt.Errorf("replication: shipped lsn %d landed at %d", rec.LSN, lsn)
				}
			}
			durable := n.cfg.WAL.DurableLSN()
			if err := n.advanceTailEpoch(epoch, epochStart, durable); err != nil {
				return err
			}
			if err := n.setCommit(m.Commit); err != nil {
				return err
			}
			if err := n.send(ch, &msg{T: "ack", Node: n.cfg.NodeID, LSN: durable}); err != nil {
				return err
			}
		case "hb":
			durable := n.cfg.WAL.DurableLSN()
			if err := n.advanceTailEpoch(epoch, epochStart, durable); err != nil {
				return err
			}
			if err := n.setCommit(m.Commit); err != nil {
				return err
			}
			if err := n.send(ch, &msg{T: "ack", Node: n.cfg.NodeID, LSN: durable}); err != nil {
				return err
			}
		default:
			return fmt.Errorf("replication: unexpected %q on replica stream", m.T)
		}
	}
}
