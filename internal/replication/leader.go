package replication

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"webdbsec/internal/credential"
	"webdbsec/internal/secchan"
)

// link is one leader→follower replica connection: a pump reads the WAL
// through a cursor and fills a bounded outbox, a writer drains the outbox
// onto the channel, and the accepting goroutine reads acks. The outbox is
// the back-pressure boundary — a follower that cannot drain it in time is
// evicted rather than allowed to wedge the leader or grow its memory.
type link struct {
	node   string
	ch     *secchan.Channel
	outbox chan []byte
	done   chan struct{}

	mu    sync.Mutex
	heard time.Time // seclint:guardedby mu

	closeOnce sync.Once
}

func (l *link) close() {
	l.closeOnce.Do(func() {
		close(l.done)
		l.ch.Close()
	})
}

func (l *link) touch() {
	l.mu.Lock()
	l.heard = time.Now()
	l.mu.Unlock()
}

func (l *link) lastHeard() time.Time {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.heard
}

// acceptLoop serves inbound connections: election polls and follower
// joins.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.listener.Accept()
		if err != nil {
			return
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.serveConn(conn)
		}()
	}
}

// serveConn handshakes an inbound connection and dispatches on its first
// message.
func (n *Node) serveConn(conn net.Conn) {
	cfg := secchan.Config{
		HandshakeTimeout: n.cfg.dialTimeout(),
		// A live replica link is kept warm by follower acks at heartbeat
		// pace; generous slack on top of the election timeout means the
		// follower's side always times out first and re-elects. The write
		// timeout is equally generous on purpose: the bounded outbox (see
		// enqueue) is the slow-follower policy, and it must fire before the
		// transport gives up so evictions are observable as evictions.
		ReadTimeout:  4 * n.cfg.electionTimeout(),
		WriteTimeout: 4 * n.cfg.electionTimeout(),
	}
	ch, err := secchan.ServerConfig(conn, n.cfg.Identity, cfg)
	if err != nil {
		conn.Close()
		return
	}
	defer ch.Close()
	raw, err := ch.Receive()
	if err != nil {
		return
	}
	m, err := decodeMsg(raw)
	if err != nil {
		return
	}
	switch m.T {
	case "state":
		n.serveState(ch, m)
	case "vote":
		n.serveVote(ch, m)
	case "join":
		n.serveJoin(ch, m)
	}
}

// becomeLeaderLocked promotes this node after a won vote round. The
// commit watermark does NOT jump to the leader's durable position: the
// inherited tail may contain records no quorum ever held, and declaring
// them committed before quorum replication is the previous-term-commit
// hazard (a successor leader elected without them would regress
// acknowledged state). Instead the promotion records epochStart = the
// durable tail, and advanceCommitLocked refuses to move the watermark
// until a quorum of the new epoch acks at least that position — the
// moral equivalent of Raft committing prior-term entries only through a
// quorum-replicated current-term entry. The local tail is still applied
// (Promote() below needs the materialized state), but readers go through
// the commit gate, not the applier position.
//
// seclint:locked caller holds n.mu (released/reacquired around the tail apply and promote hook)
func (n *Node) becomeLeaderLocked() {
	// Drain the commit pipeline first so the durable watermark covers the
	// whole log; the tail application below must reach LastLSN for the
	// promote hook's Promote() to succeed.
	if err := n.cfg.WAL.Sync(); err != nil {
		n.logf("promote: wal sync: %v", err)
	}
	durable := n.cfg.WAL.DurableLSN()
	wonEpoch := n.epoch
	n.epochStart = durable
	// seclint:locked the unlock/relock below is in applyToLocked and the hook; the lock is held here
	n.tailEpoch = wonEpoch
	if err := n.saveMetaLocked(); err != nil {
		// A leader whose tail-epoch stamp is not durable could lose a
		// future election to a stale tail; abandon the promotion (the
		// node stays Candidate and the cluster retries).
		n.logf("promote: cannot persist tail epoch, abandoning leadership: %v", err)
		return
	}
	// Apply the local tail while still wearing the follower applier —
	// after the role flips, applyCommittedLocked stops feeding the applier
	// (the promoted database produces the records; re-applying them would
	// double them).
	if err := n.applyToLocked(durable); err != nil {
		n.logf("promote: apply tail: %v", err)
	}
	if n.epoch != wonEpoch || n.stopped {
		// The tail apply releases the lock around applier calls; a newer
		// election may have moved the node on in that window.
		n.logf("promote: epoch advanced to %d during promotion of %d, abandoning", n.epoch, wonEpoch)
		return
	}
	n.role = LeaderRole
	n.leaderID = n.cfg.NodeID
	n.acked = make(map[string]uint64)
	n.leaderAt = time.Now()
	n.broadcastLocked()
	n.logf("became leader at epoch %d, commit %d, epoch start %d", n.epoch, n.commit, n.epochStart)
	if n.cfg.OnLeader != nil {
		// The hook runs without the lock: it may call back into the node.
		n.mu.Unlock()
		n.cfg.OnLeader()
		n.mu.Lock()
	}
}

// runLeader holds leadership until the node is fenced, observes a higher
// epoch, or stops. The loop's only job is the fencing check: a leader
// that cannot hear a quorum of the cluster within the election timeout
// steps down and fails its waiting committers — it must not acknowledge
// writes a majority partition may already be electing away from.
func (n *Node) runLeader() {
	ticker := time.NewTicker(n.cfg.heartbeat())
	defer ticker.Stop()
	for {
		select {
		case <-n.stopCtx.Done():
			return
		case <-ticker.C:
		}
		// The WAL's group commit is committer-driven: records enqueued
		// without a durability waiter (e.g. DDL appends) sit in the queue
		// until someone drives a flush. The leader is that someone — every
		// heartbeat it drains the pipeline so the durable watermark (and
		// with it the replica stream and the commit index) cannot stall
		// behind an un-awaited append.
		if err := n.cfg.WAL.Sync(); err != nil {
			n.logf("leader wal sync: %v", err)
		}
		n.mu.Lock()
		if n.role != LeaderRole || n.stopped {
			n.mu.Unlock()
			return
		}
		// Leader-side durability can advance between acks (group commit
		// flushes); fold it into the watermark continuously.
		n.advanceCommitLocked()
		reachable := 1 // self
		cutoff := time.Now().Add(-n.cfg.electionTimeout())
		// seclint:locked the unlock above is in the returning branch; the lock is still held here
		for _, l := range n.links {
			if l.lastHeard().After(cutoff) {
				reachable++
			}
		}
		// A vote-elected leader starts with zero links: its voters are
		// still candidates until their next poll finds it. Promotion
		// counts as hearing from the electing quorum, so fencing begins
		// one election timeout after it.
		// seclint:locked the unlock above is in the returning branch; the lock is still held here
		if reachable < n.quorum && n.leaderAt.Before(cutoff) {
			// seclint:locked the unlock above is in the returning branch; the lock is still held here
			n.failovers++
			n.stepDownLocked(fmt.Sprintf("quorum lost (%d/%d reachable)", reachable, n.quorum))
			n.mu.Unlock()
			return
		}
		n.mu.Unlock()
		if err := n.applyCommitted(); err != nil {
			n.logf("leader apply: %v", err)
		}
	}
}

// serveJoin runs the leader side of the authenticated catch-up handshake,
// then streams to the follower until the link dies.
func (n *Node) serveJoin(ch *secchan.Channel, m *msg) {
	n.mu.Lock()
	if m.Epoch > n.epoch {
		// The joiner has seen a newer election than our leadership.
		n.epoch = m.Epoch
		if n.role == LeaderRole {
			n.failovers++
			n.stepDownLocked("higher epoch in join request")
		}
		if err := n.saveMetaLocked(); err != nil {
			n.logf("join: %v", err)
		}
	}
	role, epoch, leader, epochStart := n.role, n.epoch, n.leaderID, n.epochStart
	n.mu.Unlock()
	if role != LeaderRole {
		n.reject(ch, "not leader", leader, epoch)
		return
	}
	if !n.checkJoinWallet(m.Wallet) {
		n.logf("join %s: credential check failed", m.Node)
		n.reject(ch, "credential check failed", leader, epoch)
		return
	}

	// Negotiate the catch-up plan from the two log positions.
	w := n.cfg.WAL
	_, leaderSnapLSN, _ := w.Snapshot()
	leaderLast := w.DurableLSN()
	from := leaderSnapLSN
	if m.SnapLSN > from {
		from = m.SnapLSN
	}
	common := m.LastLSN
	if leaderLast < common {
		common = leaderLast
	}
	resp := &msg{T: "joinResp", Node: n.cfg.NodeID, Epoch: epoch, Commit: n.CommitLSN(), EpochStart: epochStart}
	if n.cfg.ExportAuthKeys != nil {
		// Ship the mint verify-key set with the join plan so the follower
		// can verify leader-minted auth tokens before a single WAL byte
		// arrives.
		resp.Keys, resp.KeysGen = n.cfg.ExportAuthKeys()
	}
	if m.LastLSN < leaderSnapLSN || common < from {
		// No overlapping span to cross-check: the follower's history is
		// compacted away (or it is empty while we checkpointed) — resync.
		resp.Plan = "resync"
	} else {
		hash, err := hashRange(w, from, common)
		if err != nil {
			n.logf("join %s: hash (%d,%d]: %v", m.Node, from, common, err)
			n.reject(ch, "hash computation failed", leader, epoch)
			return
		}
		resp.From, resp.Common, resp.Hash = from, common, hash
		if m.LastLSN > common {
			resp.Plan = "truncate"
		} else {
			resp.Plan = "stream"
		}
	}
	if err := n.send(ch, resp); err != nil {
		return
	}
	raw, err := ch.Receive()
	if err != nil {
		return
	}
	ack, err := decodeMsg(raw)
	if err != nil || ack.T != "joinAck" {
		return
	}
	start := resp.Common
	if resp.Plan == "resync" || !ack.OK {
		// Divergence beyond the hash check (or compaction): ship a full
		// snapshot, integrity-hashed, then stream from its LSN.
		lsn, err := n.sendSnapshot(ch, epoch)
		if err != nil {
			n.logf("join %s: snapshot: %v", m.Node, err)
			return
		}
		start = lsn
	}
	n.logf("join %s: plan %s, streaming from %d", m.Node, resp.Plan, start)
	n.stream(ch, m.Node, start, epoch)
}

// checkJoinWallet verifies the follower's wallet against the join policy.
// The trust-brokerage rule: a replica is a counterparty that must earn
// trust before it receives a single byte of data.
func (n *Node) checkJoinWallet(raw json.RawMessage) bool {
	if n.cfg.Verifier == nil && n.cfg.JoinPolicy == nil {
		return true
	}
	if n.cfg.Verifier == nil || n.cfg.JoinPolicy == nil || len(raw) == 0 {
		return false
	}
	var w credential.Wallet
	if err := json.Unmarshal(raw, &w); err != nil {
		return false
	}
	return n.cfg.JoinPolicy.Eval(n.cfg.Verifier.Valid(&w))
}

func (n *Node) reject(ch *secchan.Channel, reason, leader string, epoch uint64) {
	_ = n.send(ch, &msg{T: "joinResp", Plan: "reject", Reason: reason, Leader: leader, Epoch: epoch, Node: n.cfg.NodeID})
}

func (n *Node) send(ch *secchan.Channel, m *msg) error {
	raw, err := encodeMsg(m)
	if err != nil {
		return err
	}
	return ch.Send(raw)
}

// sendSnapshot ships the current checkpoint snapshot (or an empty one at
// the log's snapshot boundary) and waits for the follower's ack. Returns
// the LSN streaming resumes from.
func (n *Node) sendSnapshot(ch *secchan.Channel, epoch uint64) (uint64, error) {
	data, lsn, _ := n.cfg.WAL.Snapshot()
	m := &msg{T: "snap", Node: n.cfg.NodeID, Epoch: epoch, LSN: lsn, SnapData: data, Hash: snapHash(data, lsn)}
	if err := n.send(ch, m); err != nil {
		return 0, err
	}
	raw, err := ch.Receive()
	if err != nil {
		return 0, err
	}
	ack, err := decodeMsg(raw)
	if err != nil {
		return 0, err
	}
	if ack.T != "ack" || ack.LSN != lsn {
		return 0, fmt.Errorf("replication: snapshot ack %q at %d, want ack at %d", ack.T, ack.LSN, lsn)
	}
	return lsn, nil
}

// stream is the live shipping loop: a cursor pump fills the bounded
// outbox, a writer goroutine drains it, and this goroutine reads acks.
// It returns when the link dies or the node loses leadership.
func (n *Node) stream(ch *secchan.Channel, node string, start uint64, epoch uint64) {
	l := &link{
		node:   node,
		ch:     ch,
		outbox: make(chan []byte, n.cfg.sendQueue()),
		done:   make(chan struct{}),
	}
	l.touch()

	n.mu.Lock()
	if n.role != LeaderRole || n.epoch != epoch || n.stopped {
		n.mu.Unlock()
		return
	}
	// seclint:locked the unlock above is in the returning branch; the lock is still held here
	if old, ok := n.links[node]; ok {
		old.close() // a rejoin replaces the stale link
	}
	// seclint:locked the unlock above is in the returning branch; the lock is still held here
	n.links[node] = l
	// The handshake position is NOT seeded as an ack: only acks from the
	// live stream count toward commit, because the follower durably stamps
	// its tail epoch before sending those (advanceTailEpoch) — a
	// handshake-seeded position would let an unstamped log complete a
	// commit quorum that a later election could then order below a stale
	// tail. The first heartbeat ack arrives within a heartbeat interval.
	// seclint:locked the unlock above is in the returning branch; the lock is still held here
	n.acked[node] = 0
	n.mu.Unlock()
	defer func() {
		l.close()
		n.mu.Lock()
		if n.links[node] == l {
			delete(n.links, node)
			delete(n.acked, node)
		}
		n.mu.Unlock()
	}()

	n.wg.Add(2)
	go func() { // writer: outbox → channel
		defer n.wg.Done()
		for {
			select {
			case <-l.done:
				return
			case raw := <-l.outbox:
				if err := ch.Send(raw); err != nil {
					// A send that hits the write timeout means the follower
					// stopped draining the transport for several election
					// timeouts — the same slow-follower condition the bounded
					// outbox guards against, surfacing one buffer further
					// down (the kernel socket instead of the outbox). Count
					// it as an eviction so the policy is observable no
					// matter which buffer fills first.
					var ne net.Error
					if errors.As(err, &ne) && ne.Timeout() {
						n.mu.Lock()
						n.evictions++
						n.mu.Unlock()
						n.logf("evicting slow follower %s: transport write timeout", l.node)
					}
					l.close()
					return
				}
			}
		}
	}()
	go n.pump(l, start, epoch) // pump: WAL cursor → outbox

	// Ack reader (this goroutine).
	for {
		raw, err := ch.Receive()
		if err != nil {
			return
		}
		m, err := decodeMsg(raw)
		if err != nil || m.T != "ack" {
			return
		}
		l.touch()
		n.mu.Lock()
		if n.links[node] != l || n.role != LeaderRole {
			n.mu.Unlock()
			return
		}
		// seclint:locked the unlock above is in the returning branch; the lock is still held here
		if m.LSN > n.acked[node] {
			// seclint:locked the unlock above is in the returning branch; the lock is still held here
			n.acked[node] = m.LSN
			n.advanceCommitLocked()
		}
		n.mu.Unlock()
		if err := n.applyCommitted(); err != nil {
			n.logf("leader apply: %v", err)
		}
	}
}

// pump reads the leader WAL from start and enqueues record batches and
// heartbeats. An outbox that stays full for a heartbeat interval evicts
// the follower: bounded queues, never unbounded buffering.
func (n *Node) pump(l *link, start uint64, epoch uint64) {
	defer n.wg.Done()
	cur, err := n.cfg.WAL.OpenCursor(start)
	if err != nil {
		n.logf("pump %s: %v", l.node, err)
		l.close()
		return
	}
	watch := n.cfg.WAL.Watch()
	defer n.cfg.WAL.Unwatch(watch)
	ticker := time.NewTicker(n.cfg.heartbeat())
	defer ticker.Stop()
	lastCommit := uint64(0)
	// Mint-key shipping: heartbeats re-ship the verify-key set whenever
	// the keyring generation moves past what this link has sent. Starting
	// at zero means the first heartbeat always carries the set — the
	// joinResp already did, but a redundant install is idempotent and
	// covers a rotation racing the handshake.
	sentKeysGen := uint64(0)
	authKeys := func(m *msg) {
		if n.cfg.ExportAuthKeys == nil {
			return
		}
		if data, gen := n.cfg.ExportAuthKeys(); gen != sentKeysGen {
			m.Keys, m.KeysGen = data, gen
			sentKeysGen = gen
		}
	}
	for {
		// Drain the cursor into batches.
		for {
			var recs []wireRec
			var bytes int
			for len(recs) < n.cfg.batchRecords() && bytes < secchan.MaxRecord/2 {
				rec, ok, err := cur.Next()
				if err != nil {
					n.logf("pump %s: cursor: %v", l.node, err)
					l.close()
					return
				}
				if !ok {
					break
				}
				recs = append(recs, wireRec{LSN: rec.LSN, Payload: rec.Payload})
				bytes += len(rec.Payload)
			}
			if len(recs) == 0 {
				break
			}
			lastCommit = n.CommitLSN()
			raw, err := encodeMsg(&msg{T: "recs", Node: n.cfg.NodeID, Epoch: epoch, Recs: recs, Commit: lastCommit})
			if err != nil {
				l.close()
				return
			}
			if !n.enqueue(l, raw) {
				return
			}
		}
		// Idle: wake on new WAL bytes, commit movement, or heartbeat.
		n.mu.Lock()
		commitCh := n.commitCh
		commit := n.commit
		leading := n.role == LeaderRole && n.epoch == epoch
		n.mu.Unlock()
		if !leading {
			l.close()
			return
		}
		if commit != lastCommit {
			lastCommit = commit
			hb := &msg{T: "hb", Node: n.cfg.NodeID, Epoch: epoch, Commit: commit}
			authKeys(hb)
			raw, err := encodeMsg(hb)
			if err == nil && !n.enqueue(l, raw) {
				return
			}
			continue
		}
		select {
		case <-l.done:
			return
		case <-n.stopCtx.Done():
			return
		case <-watch:
		case <-commitCh:
		case <-ticker.C:
			hb := &msg{T: "hb", Node: n.cfg.NodeID, Epoch: epoch, Commit: commit}
			authKeys(hb)
			raw, err := encodeMsg(hb)
			if err == nil && !n.enqueue(l, raw) {
				return
			}
		}
	}
}

// enqueue offers raw to the link's bounded outbox; a follower whose queue
// stays full for a heartbeat interval is evicted (slow-follower policy).
func (n *Node) enqueue(l *link, raw []byte) bool {
	select {
	case l.outbox <- raw:
		return true
	default:
	}
	select {
	case l.outbox <- raw:
		return true
	case <-l.done:
		return false
	case <-time.After(n.cfg.heartbeat()):
		n.mu.Lock()
		n.evictions++
		n.mu.Unlock()
		n.logf("evicting slow follower %s", l.node)
		l.close()
		return false
	}
}
