package replication_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"webdbsec/internal/credential"
	"webdbsec/internal/replication"
)

// TestSingleNodeLeads: a cluster of one is its own quorum — it elects
// itself, promotes, and commits without any peers.
func TestSingleNodeLeads(t *testing.T) {
	c := newCluster(t, "n1")
	c.startAll("n1")
	leader := c.waitLeader(3 * time.Second)
	if leader.id != "n1" {
		t.Fatalf("leader = %s, want n1", leader.id)
	}
	if err := leader.commit("CREATE TABLE kv (k TEXT, v INT)"); err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := leader.commit("INSERT INTO kv VALUES ('a', 1)"); err != nil {
		t.Fatalf("insert: %v", err)
	}
	got := leader.rows(t)
	if got["a"] != 1 {
		t.Fatalf("rows = %v", got)
	}
}

// TestThreeNodeReplication: commits on the leader become visible, through
// the follower replay path, on every replica.
func TestThreeNodeReplication(t *testing.T) {
	c := newCluster(t, "n1", "n2", "n3")
	c.startAll("n1", "n2", "n3")
	leader := c.waitLeader(3 * time.Second)

	if err := leader.commit("CREATE TABLE kv (k TEXT, v INT)"); err != nil {
		t.Fatalf("create: %v", err)
	}
	for i, k := range []string{"a", "b", "c"} {
		if err := leader.commit("INSERT INTO kv VALUES ('" + k + "', " + itoa(i+1) + ")"); err != nil {
			t.Fatalf("insert %s: %v", k, err)
		}
	}
	if err := leader.commit("UPDATE kv SET v = 10 WHERE k = 'a'"); err != nil {
		t.Fatalf("update: %v", err)
	}
	want := map[string]int64{"a": 10, "b": 2, "c": 3}
	c.waitConverged(want, 3*time.Second, "n1", "n2", "n3")
}

// TestLateJoinerCatchesUp: a node started after the cluster has committed
// history joins via the authenticated handshake and replays the backlog
// from its own (empty) WAL position.
func TestLateJoinerCatchesUp(t *testing.T) {
	c := newCluster(t, "n1", "n2", "n3")
	c.startAll("n1", "n2")
	leader := c.waitLeader(3 * time.Second)
	if err := leader.commit("CREATE TABLE kv (k TEXT, v INT)"); err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := leader.commit("INSERT INTO kv VALUES ('early', 1)"); err != nil {
		t.Fatalf("insert: %v", err)
	}

	c.start("n3")
	c.waitConverged(map[string]int64{"early": 1}, 3*time.Second, "n3")

	if err := leader.commit("INSERT INTO kv VALUES ('late', 2)"); err != nil {
		t.Fatalf("insert: %v", err)
	}
	c.waitConverged(map[string]int64{"early": 1, "late": 2}, 3*time.Second, "n1", "n2", "n3")
}

// TestJoinRejectedWithoutCredential: the leader refuses to ship a single
// WAL byte to a node whose wallet fails the join policy. The imposter
// holds a credential from an untrusted authority; the two legitimate
// nodes still form a quorum and make progress without it.
func TestJoinRejectedWithoutCredential(t *testing.T) {
	c := newCluster(t, "n1", "n2", "n3")

	rogue, err := credential.NewAuthority("rogue-ca")
	if err != nil {
		t.Fatalf("authority: %v", err)
	}
	badWallet := credential.NewWallet("n1")
	if err := badWallet.Add(rogue.Issue("replica", "n1", map[string]string{"tier": "trusted"})); err != nil {
		t.Fatalf("wallet: %v", err)
	}
	c.walletOverride = map[string]*credential.Wallet{"n1": badWallet}

	c.startAll("n1", "n2", "n3")
	leader := c.waitLeader(3 * time.Second)
	if leader.id == "n1" {
		// With all logs equal, candidacy ties break to the highest node ID,
		// so the imposter (lowest ID, empty log) cannot win the vote here.
		t.Fatalf("untrusted node won the election")
	}
	if err := leader.commit("CREATE TABLE kv (k TEXT, v INT)"); err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := leader.commit("INSERT INTO kv VALUES ('x', 7)"); err != nil {
		t.Fatalf("insert: %v", err)
	}
	want := map[string]int64{"x": 7}
	c.waitConverged(want, 3*time.Second, "n2", "n3")

	// n1's WAL must have received nothing: its join was rejected before
	// the stream started, and rejection repeats on every retry.
	time.Sleep(300 * time.Millisecond)
	n1 := c.members["n1"]
	n1.mu.Lock()
	lsn := n1.w.LastLSN()
	n1.mu.Unlock()
	if lsn != 0 {
		t.Fatalf("rejected node received %d WAL records, want 0", lsn)
	}
}

// TestFailoverOnLeaderStop: stopping the leader triggers re-election among
// the survivors, the new leader serves writes, and the old leader rejoins
// as a follower and converges.
func TestFailoverOnLeaderStop(t *testing.T) {
	c := newCluster(t, "n1", "n2", "n3")
	c.startAll("n1", "n2", "n3")
	leader := c.waitLeader(3 * time.Second)

	if err := leader.commit("CREATE TABLE kv (k TEXT, v INT)"); err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := leader.commit("INSERT INTO kv VALUES ('pre', 1)"); err != nil {
		t.Fatalf("insert: %v", err)
	}
	c.waitConverged(map[string]int64{"pre": 1}, 3*time.Second, "n1", "n2", "n3")

	old := leader.id
	c.stop(old)

	leader2 := c.waitLeader(5 * time.Second)
	if leader2.id == old {
		t.Fatalf("stopped node %s re-elected as leader", old)
	}
	if err := leader2.commit("INSERT INTO kv VALUES ('post', 2)"); err != nil {
		t.Fatalf("insert after failover: %v", err)
	}

	c.start(old)
	c.waitConverged(map[string]int64{"pre": 1, "post": 2}, 5*time.Second, "n1", "n2", "n3")

	// The acknowledged pre-failover commit must have survived.
	if got := leader2.rows(t); got["pre"] != 1 {
		t.Fatalf("acknowledged commit lost across failover: %v", got)
	}
}

// TestPartitionedLeaderFences: a leader cut off from every peer loses its
// quorum and steps down instead of acknowledging writes; the majority side
// elects a replacement. After healing, the old leader rejoins and
// converges on the new history.
func TestPartitionedLeaderFences(t *testing.T) {
	c := newCluster(t, "n1", "n2", "n3")
	c.startAll("n1", "n2", "n3")
	leader := c.waitLeader(3 * time.Second)
	if err := leader.commit("CREATE TABLE kv (k TEXT, v INT)"); err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := leader.commit("INSERT INTO kv VALUES ('pre', 1)"); err != nil {
		t.Fatalf("insert: %v", err)
	}
	c.waitConverged(map[string]int64{"pre": 1}, 3*time.Second, "n1", "n2", "n3")

	old := leader.id
	c.isolate(old)

	// The isolated leader must fence itself: no later write can be
	// acknowledged from the minority side. The writable database is handed
	// back by the OnDemote hook, which runs asynchronously (WaitGroup-
	// tracked) after the role flips — poll for both within the deadline.
	deadline := time.Now().Add(3 * time.Second)
	for {
		m := c.members[old]
		m.mu.Lock()
		db := m.db
		m.mu.Unlock()
		if m.node.Role() != replication.LeaderRole && db == nil {
			break
		}
		if time.Now().After(deadline) {
			if m.node.Role() == replication.LeaderRole {
				t.Fatalf("isolated leader %s never fenced itself", old)
			}
			t.Fatalf("fenced leader still holds a writable database")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Majority side elects a replacement and keeps committing.
	leader2 := c.waitLeader(5 * time.Second)
	if leader2.id == old {
		t.Fatalf("isolated node won the majority election")
	}
	if err := leader2.commit("INSERT INTO kv VALUES ('post', 2)"); err != nil {
		t.Fatalf("insert on majority side: %v", err)
	}

	c.heal()
	c.waitConverged(map[string]int64{"pre": 1, "post": 2}, 5*time.Second, "n1", "n2", "n3")
}

// TestWaitCommittedFailsWhenFenced: a write in flight when the leader
// loses quorum is not acknowledged — WaitCommitted reports ErrNotLeader
// instead of returning success for a record the cluster may discard.
func TestWaitCommittedFailsWhenFenced(t *testing.T) {
	c := newCluster(t, "n1", "n2", "n3")
	c.startAll("n1", "n2", "n3")
	leader := c.waitLeader(3 * time.Second)
	if err := leader.commit("CREATE TABLE kv (k TEXT, v INT)"); err != nil {
		t.Fatalf("create: %v", err)
	}

	c.isolate(leader.id)

	leader.mu.Lock()
	db, node, w := leader.db, leader.node, leader.w
	leader.mu.Unlock()
	if db == nil {
		t.Skip("leader already demoted before the write could start")
	}
	if _, err := db.Exec("INSERT INTO kv VALUES ('lost', 1)"); err != nil {
		// Demotion can poison the promoted handle mid-Exec; that is an
		// acceptable way to refuse the write.
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := node.WaitCommitted(ctx, w.LastLSN())
	if err == nil {
		t.Fatalf("WaitCommitted acknowledged a write on a fenced minority leader")
	}
	if !errors.Is(err, replication.ErrNotLeader) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitCommitted: %v, want ErrNotLeader", err)
	}
}

// TestFollowerCrashMidCatchUpRejoins: a follower whose disk dies while
// absorbing the backlog crashes, loses its unsynced tail, restarts from
// its own WAL position, and still converges.
func TestFollowerCrashMidCatchUpRejoins(t *testing.T) {
	c := newCluster(t, "n1", "n2", "n3")
	c.startAll("n1", "n2")
	leader := c.waitLeader(3 * time.Second)
	if err := leader.commit("CREATE TABLE kv (k TEXT, v INT)"); err != nil {
		t.Fatalf("create: %v", err)
	}
	for i := 0; i < 20; i++ {
		if err := leader.commit("INSERT INTO kv VALUES ('k" + itoa(i) + "', " + itoa(i) + ")"); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}

	// n3 joins with a write budget that dies partway through the backlog.
	n3 := c.members["n3"]
	n3.fs.LimitWriteBytes(2048)
	c.start("n3")

	// Wait for the injected fault to fire (the WAL poisons itself and the
	// node's consume loop errors out), then power-cycle the member.
	deadline := time.Now().Add(5 * time.Second)
	for !n3.fs.Crashed() {
		if time.Now().After(deadline) {
			t.Fatalf("write limit never tripped; catch-up finished under the budget")
		}
		time.Sleep(10 * time.Millisecond)
	}
	c.crash("n3")

	// Restart from what survived on disk; the join handshake anchors at
	// the follower's own durable position and resumes from there.
	c.start("n3")
	want := map[string]int64{}
	for i := 0; i < 20; i++ {
		want["k"+itoa(i)] = int64(i)
	}
	c.waitConverged(want, 5*time.Second, "n1", "n2", "n3")
}

// TestDivergentFollowerTruncates: a follower that wrote records the
// cluster never committed (it was leader of a fenced minority that kept a
// local tail) has that tail cut by the join handshake before resuming.
func TestDivergentFollowerTruncates(t *testing.T) {
	c := newCluster(t, "n1", "n2", "n3")
	c.startAll("n1", "n2", "n3")
	leader := c.waitLeader(3 * time.Second)
	if err := leader.commit("CREATE TABLE kv (k TEXT, v INT)"); err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := leader.commit("INSERT INTO kv VALUES ('shared', 1)"); err != nil {
		t.Fatalf("insert: %v", err)
	}
	c.waitConverged(map[string]int64{"shared": 1}, 3*time.Second, "n1", "n2", "n3")

	// Stop a follower and forge an uncommitted divergent tail directly in
	// its WAL — the moral equivalent of a minority leader's orphan writes.
	var victim string
	for _, id := range c.sorted() {
		if id != leader.id {
			victim = id
			break
		}
	}
	c.stop(victim)
	m := c.members[victim]
	w := reopenWAL(t, m)
	// A well-formed reldb record (an OpBegin for a transaction that never
	// commits) so the victim's own recovery replays past it cleanly.
	if _, err := w.Append([]byte(`{"Txn":999,"Op":2}`)); err != nil {
		t.Fatalf("forge orphan: %v", err)
	}
	forged := w.LastLSN()
	if err := w.Close(); err != nil {
		t.Fatalf("close forged wal: %v", err)
	}

	// Meanwhile the real cluster moves on.
	leader2 := c.waitLeader(5 * time.Second)
	if err := leader2.commit("INSERT INTO kv VALUES ('ahead', 2)"); err != nil {
		t.Fatalf("insert: %v", err)
	}

	c.start(victim)
	c.waitConverged(map[string]int64{"shared": 1, "ahead": 2}, 5*time.Second, "n1", "n2", "n3")

	// The forged record must be gone from the victim's log: the record at
	// that LSN now carries the leader's payload, not the orphan.
	m.mu.Lock()
	lastNow := m.w.LastLSN()
	m.mu.Unlock()
	if lastNow < forged {
		t.Fatalf("victim log at %d, expected to have re-advanced past forged %d", lastNow, forged)
	}
}

// TestStaleTailCandidateLosesElection: a node holding the LONGEST log —
// but a log whose tail is a stranded, never-committed leftover from an
// old epoch — must lose the election to a node with a shorter log whose
// tail was stamped by a newer leadership. Ordering candidates by durable
// LSN alone would elect the stale tail and destroy acknowledged commits;
// the vote round orders by (tail epoch, durable LSN), and voters refuse
// candidates behind themselves.
func TestStaleTailCandidateLosesElection(t *testing.T) {
	c := newCluster(t, "n1", "n2", "n3")
	c.startAll("n1", "n2", "n3")
	leader := c.waitLeader(3 * time.Second)
	if err := leader.commit("CREATE TABLE kv (k TEXT, v INT)"); err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := leader.commit("INSERT INTO kv VALUES ('shared', 1)"); err != nil {
		t.Fatalf("insert: %v", err)
	}
	c.waitConverged(map[string]int64{"shared": 1}, 3*time.Second, "n1", "n2", "n3")

	// Take a follower offline and forge a long uncommitted tail into its
	// log — a minority leader that kept accepting local writes while
	// partitioned away. Its durable LSN ends up far ahead of everyone.
	var victim string
	for _, id := range c.sorted() {
		if id != leader.id {
			victim = id
			break
		}
	}
	c.stop(victim)
	vm := c.members[victim]
	vw := reopenWAL(t, vm)
	for i := 0; i < 30; i++ {
		if _, err := vw.Append([]byte(fmt.Sprintf(`{"Txn":%d,"Op":2}`, 9000+i))); err != nil {
			t.Fatalf("forge orphan %d: %v", i, err)
		}
	}
	staleLen := vw.LastLSN()
	if err := vw.Close(); err != nil {
		t.Fatalf("close forged wal: %v", err)
	}

	// Restart the old leader so the two live nodes elect a NEW epoch and
	// commit acknowledged rows under it — their (shorter) logs now carry a
	// newer tail-epoch stamp than the victim's forged monster.
	oldLeader := leader.id
	c.stop(oldLeader)
	c.start(oldLeader)
	leader2 := c.waitLeader(5 * time.Second)
	if err := leader2.commit("INSERT INTO kv VALUES ('post', 2)"); err != nil {
		t.Fatalf("insert at new epoch: %v", err)
	}
	var survivor string
	for _, id := range c.sorted() {
		if id != victim && id != leader2.id {
			survivor = id
		}
	}
	if c.members[survivor].w.LastLSN() >= staleLen {
		t.Fatalf("survivor log %d not shorter than forged log %d; test premise broken",
			c.members[survivor].w.LastLSN(), staleLen)
	}

	// Kill the new leader and bring the forged node back: the election is
	// now between a long stale-epoch tail and a short newer-epoch log.
	c.stop(leader2.id)
	c.start(victim)
	leader3 := c.waitLeader(5 * time.Second)
	if leader3.id == victim {
		t.Fatalf("stale-tail node %s won the election over a newer-epoch log", victim)
	}
	if leader3.id != survivor {
		t.Fatalf("leader is %s, want survivor %s", leader3.id, survivor)
	}

	// The acknowledged newer-epoch commit survived, the forged tail did
	// not, and the cluster converges once everyone is back.
	c.start(leader2.id)
	want := map[string]int64{"shared": 1, "post": 2}
	c.waitConverged(want, 5*time.Second, "n1", "n2", "n3")
	if got := leader3.rows(t); got["post"] != 2 {
		t.Fatalf("acknowledged commit lost to a stale tail: %v", got)
	}
}

// TestEvictsSlowFollower: a joiner that accepts the stream but never acks
// backs up the leader's bounded outbox and gets evicted instead of
// stalling replication for everyone else.
func TestEvictsSlowFollower(t *testing.T) {
	c := newCluster(t, "n1")
	c.sendQueue = 1
	c.startAll("n1")
	leader := c.waitLeader(3 * time.Second)
	if err := leader.commit("CREATE TABLE kv (k TEXT, v INT)"); err != nil {
		t.Fatalf("create: %v", err)
	}

	// Hand-rolled client: authenticate, join legitimately, then go silent.
	stall := newStalledFollower(t, c, "lazy", leader)
	defer stall.close()

	// Keep committing bulky rows; the stalled link stops draining once the
	// socket buffers fill, its bounded outbox backs up, and the eviction
	// policy cuts it loose. Batches of plain Execs between durability
	// waits keep the data rate well above what the dead link absorbs.
	leader.mu.Lock()
	db, node, w := leader.db, leader.node, leader.w
	leader.mu.Unlock()
	big := make([]byte, 32*1024)
	for i := range big {
		big[i] = 'x'
	}
	payload := string(big)
	deadline := time.Now().Add(10 * time.Second)
	for node.Snapshot().Evictions == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("slow follower never evicted: %+v", node.Snapshot())
		}
		for i := 0; i < 8; i++ {
			if _, err := db.Exec("INSERT INTO kv VALUES ('" + payload + "', 1)"); err != nil {
				t.Fatalf("insert: %v", err)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		err := node.WaitCommitted(ctx, w.LastLSN())
		cancel()
		if err != nil {
			t.Fatalf("wait: %v", err)
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var b [24]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		p--
		b[p] = '-'
	}
	return string(b[p:])
}
